//! The workspace-wide typed error family.
//!
//! Every `fit` in the workspace — iFair, the baselines, the downstream
//! models, the pipeline — returns the single [`FitError`] enum, and every
//! `Config::validate` reports a [`ConfigError`] naming the offending field.
//! Bare `String` errors no longer appear in any public signature.

use ifair_data::{DataError, Dataset};
use ifair_linalg::LinalgError;
use std::fmt;

/// A hyper-parameter configuration problem: which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Name of the offending configuration field (or field group).
    pub field: &'static str,
    /// Human-readable description of the constraint that failed.
    pub message: String,
}

impl ConfigError {
    /// Builds a configuration error for `field`.
    pub fn new(field: &'static str, message: impl Into<String>) -> ConfigError {
        ConfigError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config field `{}`: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// The shared validation helper: all `Config::validate` methods express
/// their constraints through it, so every violation carries the field name
/// and reads uniformly.
///
/// ```
/// use ifair_api::{ensure, ConfigError};
/// fn validate(k: usize) -> Result<(), ConfigError> {
///     ensure(k >= 1, "k", "must be at least 1")
/// }
/// assert!(validate(0).is_err());
/// assert!(validate(3).is_ok());
/// ```
pub fn ensure(
    condition: bool,
    field: &'static str,
    message: impl Into<String>,
) -> Result<(), ConfigError> {
    if condition {
        Ok(())
    } else {
        Err(ConfigError::new(field, message))
    }
}

/// Everything that can go wrong while fitting, transforming or persisting a
/// model. Replaces the former `IFairError` and the baselines' `String`
/// errors with one enum shared by the whole estimator layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The hyper-parameter configuration failed validation.
    Config(ConfigError),
    /// The input data is unusable (shape mismatch, missing labels, bad group
    /// labels, non-finite values, ...).
    Data(DataError),
    /// A numerical subroutine (SVD, Cholesky, ...) failed.
    Linalg(LinalgError),
    /// (De)serialization failed.
    Serialization(String),
    /// A persisted artifact declares a schema version this build does not
    /// understand.
    SchemaVersion {
        /// Version found in the artifact.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// A data-parallel worker process failed (died, closed its pipe, or
    /// reported an error frame).
    Worker(String),
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Config(e) => write!(f, "{e}"),
            FitError::Data(e) => write!(f, "invalid input data: {e}"),
            FitError::Linalg(e) => write!(f, "numerical failure: {e}"),
            FitError::Serialization(msg) => write!(f, "(de)serialization failed: {msg}"),
            FitError::SchemaVersion { found, supported } => write!(
                f,
                "unsupported schema version {found} (this build supports up to {supported}); \
                 refusing to load a model persisted by an incompatible version"
            ),
            FitError::Worker(msg) => write!(f, "data-parallel worker failure: {msg}"),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FitError::Config(e) => Some(e),
            FitError::Data(e) => Some(e),
            FitError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for FitError {
    fn from(e: ConfigError) -> Self {
        FitError::Config(e)
    }
}

impl From<DataError> for FitError {
    fn from(e: DataError) -> Self {
        FitError::Data(e)
    }
}

impl From<LinalgError> for FitError {
    fn from(e: LinalgError) -> Self {
        FitError::Linalg(e)
    }
}

/// Shorthand for the common "bad shape" data error.
pub fn shape_error(message: impl Into<String>) -> FitError {
    FitError::Data(DataError::Shape(message.into()))
}

/// Validates that a dataset's feature width matches what a fitted stage
/// was trained on; `what` names the stage for the error message (e.g.
/// `"scaler"`, `"classifier"`, `"iFair model"`).
pub fn check_width(ds: &Dataset, fitted: usize, what: &str) -> Result<(), FitError> {
    if ds.n_features() != fitted {
        return Err(shape_error(format!(
            "dataset has {} features but the {what} was fitted on {fitted}",
            ds.n_features()
        )));
    }
    Ok(())
}

/// Validates that every protected-group label is 0 or 1.
///
/// Group-conditional methods (LFR's per-group distance weights, the parity
/// and FA\*IR post-processors) would otherwise silently lump any other
/// value in with the unprotected group; every group-consuming surface calls
/// this up front instead.
pub fn check_group_labels(group: &[u8]) -> Result<(), FitError> {
    match group.iter().position(|&g| g > 1) {
        Some(i) => Err(schema_error(format!(
            "group labels must be 0/1, found {} at record {i}",
            group[i]
        ))),
        None => Ok(()),
    }
}

/// Shorthand for the common "bad schema / bad labels" data error.
pub fn schema_error(message: impl Into<String>) -> FitError {
    FitError::Data(DataError::Schema(message.into()))
}

/// Everything that can go wrong while certifying a fitted representation
/// (the interval-bound certification pass of `ifair_core::certify`).
///
/// Kept separate from [`FitError`] because the failure surface is
/// different: a certify request can be malformed (bad ε) or aimed at an
/// artifact with no representation space — neither is a fitting problem,
/// and serving layers map the variants to distinct HTTP statuses.
#[derive(Debug, Clone, PartialEq)]
pub enum CertifyError {
    /// The requested perturbation radius ε (or certification threshold δ)
    /// is unusable: negative, non-finite, or otherwise malformed.
    Epsilon(String),
    /// The artifact has no representation space to certify — e.g. its
    /// terminal stage is a bare predictor, or the representation stage is
    /// a method the certifier does not support.
    Unsupported(String),
    /// The input data or model state is unusable (width mismatch,
    /// non-finite rows, serialization failure, ...).
    Model(FitError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::Epsilon(msg) => write!(f, "invalid certification radius: {msg}"),
            CertifyError::Unsupported(msg) => write!(f, "certification unsupported: {msg}"),
            CertifyError::Model(e) => write!(f, "certification failed: {e}"),
        }
    }
}

impl std::error::Error for CertifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CertifyError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for CertifyError {
    fn from(e: FitError) -> Self {
        CertifyError::Model(e)
    }
}

/// Validates a perturbation radius ε: finite and non-negative.
pub fn check_epsilon(eps: f64) -> Result<(), CertifyError> {
    if !eps.is_finite() || eps < 0.0 {
        return Err(CertifyError::Epsilon(format!(
            "eps must be a finite non-negative number, got {eps}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_reports_field_and_message() {
        let err = ensure(false, "k", "must be at least 1").unwrap_err();
        assert_eq!(err.field, "k");
        assert!(err.to_string().contains("`k`"));
        assert!(err.to_string().contains("at least 1"));
        assert!(ensure(true, "k", "never seen").is_ok());
    }

    #[test]
    fn conversions_wrap_sources() {
        let fe: FitError = ConfigError::new("mu", "negative").into();
        assert!(matches!(fe, FitError::Config(_)));
        let fe: FitError = DataError::MissingLabels.into();
        assert!(matches!(fe, FitError::Data(_)));
        assert!(fe.to_string().contains("outcome"));
    }

    #[test]
    fn schema_version_message_names_both_versions() {
        let e = FitError::SchemaVersion {
            found: 9,
            supported: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('1'));
    }
}
