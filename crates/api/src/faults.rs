//! Deterministic fault injection for robustness tests.
//!
//! A seeded `FaultPlan` (present under the `fault-injection` feature)
//! names *sites* (string labels compiled into
//! production code paths: `"serve.batcher"`, `"api.artifact.write"`, ...)
//! and schedules faults at specific call numbers of each site. The chaos
//! test suite installs a plan, hammers the system, and asserts it degrades
//! instead of corrupting — with the exact same fault sequence on every run
//! of the same seed.
//!
//! The hooks ([`check_panic`], [`check_io`], [`check_delay`],
//! [`check_torn`]) are compiled into the hot paths unconditionally but are
//! empty inline functions unless the `fault-injection` feature is enabled;
//! release builds without the feature carry no branch, no lock, and no
//! global state. With the feature on, each hook consults a process-global
//! plan under a mutex — slow, but this build only exists to be tortured.
//!
//! Everything here is `std`-only and deterministic: the plan's convenience
//! `FaultPlan::draw` stream is SplitMix64 over the seed, and call
//! counters make "the 3rd batcher dispatch panics" reproducible exactly.

#[cfg(feature = "fault-injection")]
pub use active::{clear, fault_count, install, FaultAction, FaultPlan};

/// Panics at `site` if the installed plan scheduled a panic for this call.
/// No-op without the `fault-injection` feature or an installed plan.
#[inline]
pub fn check_panic(site: &str) {
    #[cfg(feature = "fault-injection")]
    active::check_panic(site);
    #[cfg(not(feature = "fault-injection"))]
    let _ = site;
}

/// Returns an injected `io::Error` at `site` if the installed plan
/// scheduled one for this call; `Ok(())` otherwise (and always without the
/// `fault-injection` feature).
#[inline]
pub fn check_io(site: &str) -> std::io::Result<()> {
    #[cfg(feature = "fault-injection")]
    return active::check_io(site);
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        Ok(())
    }
}

/// Sleeps for the injected duration at `site` if the installed plan
/// scheduled a delay for this call (a slow-peer simulation). No-op without
/// the `fault-injection` feature.
#[inline]
pub fn check_delay(site: &str) {
    #[cfg(feature = "fault-injection")]
    active::check_delay(site);
    #[cfg(not(feature = "fault-injection"))]
    let _ = site;
}

/// Returns `true` at `site` if the installed plan scheduled a torn write
/// for this call — the caller should truncate its write mid-body and drop
/// the connection. Always `false` without the `fault-injection` feature.
#[inline]
pub fn check_torn(site: &str) -> bool {
    #[cfg(feature = "fault-injection")]
    return active::check_torn(site);
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        false
    }
}

#[cfg(feature = "fault-injection")]
mod active {
    use std::collections::HashMap;
    use std::io;
    use std::sync::Mutex;
    use std::time::Duration;

    /// What an armed fault does when its call number comes up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// Panic at the site (kills the thread unless trapped).
        Panic,
        /// Return `io::ErrorKind::Other` from an I/O site.
        IoError,
        /// Sleep this many milliseconds (slow peer / slow disk).
        DelayMs(u64),
        /// Truncate the write mid-body and drop the connection.
        TornWrite,
    }

    /// One scheduled fault: fire `action` at `site` on the listed 1-based
    /// call numbers.
    #[derive(Debug, Clone)]
    struct FaultRule {
        site: String,
        action: FaultAction,
        calls: Vec<u64>,
    }

    /// A deterministic fault schedule, built by tests and installed
    /// process-globally with [`install`].
    #[derive(Debug, Clone, Default)]
    pub struct FaultPlan {
        seed: u64,
        stream: u64,
        rules: Vec<FaultRule>,
    }

    impl FaultPlan {
        /// An empty plan whose [`FaultPlan::draw`] stream is seeded by
        /// `seed` — same seed, same schedule, forever.
        pub fn new(seed: u64) -> FaultPlan {
            FaultPlan {
                seed,
                stream: seed,
                rules: Vec::new(),
            }
        }

        /// The seed this plan was built from.
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Draws the next value in `lo..=hi` from the plan's SplitMix64
        /// stream — how tests derive seed-dependent call numbers without
        /// inventing their own RNG.
        pub fn draw(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo <= hi, "draw range is empty");
            self.stream = self.stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.stream;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            lo + z % (hi - lo + 1)
        }

        /// Schedules a panic at `site` on the given 1-based call numbers.
        pub fn panic_on(self, site: &str, calls: &[u64]) -> FaultPlan {
            self.rule(site, FaultAction::Panic, calls)
        }

        /// Schedules an injected I/O error at `site`.
        pub fn io_error_on(self, site: &str, calls: &[u64]) -> FaultPlan {
            self.rule(site, FaultAction::IoError, calls)
        }

        /// Schedules a `ms`-millisecond stall at `site`.
        pub fn delay_on(self, site: &str, calls: &[u64], ms: u64) -> FaultPlan {
            self.rule(site, FaultAction::DelayMs(ms), calls)
        }

        /// Schedules a torn (truncated) write at `site`.
        pub fn torn_write_on(self, site: &str, calls: &[u64]) -> FaultPlan {
            self.rule(site, FaultAction::TornWrite, calls)
        }

        fn rule(mut self, site: &str, action: FaultAction, calls: &[u64]) -> FaultPlan {
            assert!(
                calls.iter().all(|&c| c >= 1),
                "fault call numbers are 1-based"
            );
            self.rules.push(FaultRule {
                site: site.to_string(),
                action,
                calls: calls.to_vec(),
            });
            self
        }
    }

    #[derive(Debug, Default)]
    struct Installed {
        plan: FaultPlan,
        /// Per-site hook visits (1-based at match time).
        visits: HashMap<String, u64>,
        /// Per-site faults actually fired.
        fired: HashMap<String, u64>,
    }

    static ACTIVE: Mutex<Option<Installed>> = Mutex::new(None);

    /// Installs `plan` process-globally, resetting all counters. Replaces
    /// any previous plan.
    pub fn install(plan: FaultPlan) {
        let mut slot = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(Installed {
            plan,
            visits: HashMap::new(),
            fired: HashMap::new(),
        });
    }

    /// Removes the installed plan; every hook becomes a no-op again.
    pub fn clear() {
        let mut slot = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        *slot = None;
    }

    /// Number of faults that actually fired at `site` under the current
    /// plan (0 when none installed) — lets tests assert a schedule was
    /// really exercised rather than silently skipped.
    pub fn fault_count(site: &str) -> u64 {
        let slot = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        slot.as_ref()
            .and_then(|s| s.fired.get(site).copied())
            .unwrap_or(0)
    }

    /// Counts a hook visit at `site` and returns the action scheduled for
    /// this call number, if any. The lock is released before the caller
    /// acts, so panics and sleeps never happen under the global mutex.
    fn trigger(site: &str, matches: fn(FaultAction) -> bool) -> Option<FaultAction> {
        let mut slot = ACTIVE.lock().unwrap_or_else(|p| p.into_inner());
        let installed = slot.as_mut()?;
        let visit = installed.visits.entry(site.to_string()).or_insert(0);
        *visit += 1;
        let call = *visit;
        let action = installed
            .plan
            .rules
            .iter()
            .find(|r| r.site == site && r.calls.contains(&call) && matches(r.action))
            .map(|r| r.action)?;
        *installed.fired.entry(site.to_string()).or_insert(0) += 1;
        Some(action)
    }

    pub fn check_panic(site: &str) {
        if let Some(FaultAction::Panic) = trigger(site, |a| a == FaultAction::Panic) {
            panic!("injected fault: panic at `{site}`");
        }
    }

    pub fn check_io(site: &str) -> io::Result<()> {
        if let Some(FaultAction::IoError) = trigger(site, |a| a == FaultAction::IoError) {
            return Err(io::Error::other(format!(
                "injected fault: i/o error at `{site}`"
            )));
        }
        Ok(())
    }

    pub fn check_delay(site: &str) {
        if let Some(FaultAction::DelayMs(ms)) =
            trigger(site, |a| matches!(a, FaultAction::DelayMs(_)))
        {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    pub fn check_torn(site: &str) -> bool {
        matches!(
            trigger(site, |a| a == FaultAction::TornWrite),
            Some(FaultAction::TornWrite)
        )
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    /// The global plan is shared across the test binary's threads, so every
    /// test here serializes on one lock and installs its own plan.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn scheduled_calls_fire_and_others_pass() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        install(FaultPlan::new(1).io_error_on("t.io", &[2]));
        assert!(check_io("t.io").is_ok(), "call 1 passes");
        assert!(check_io("t.io").is_err(), "call 2 fires");
        assert!(check_io("t.io").is_ok(), "call 3 passes");
        assert_eq!(fault_count("t.io"), 1);
        clear();
        assert!(check_io("t.io").is_ok());
    }

    #[test]
    fn panic_hook_panics_on_schedule() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        install(FaultPlan::new(2).panic_on("t.panic", &[1]));
        let result = std::panic::catch_unwind(|| check_panic("t.panic"));
        clear();
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "got {msg}");
    }

    #[test]
    fn torn_write_hook_reports_only_scheduled_calls() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        install(FaultPlan::new(3).torn_write_on("t.torn", &[1, 3]));
        assert!(check_torn("t.torn"));
        assert!(!check_torn("t.torn"));
        assert!(check_torn("t.torn"));
        assert_eq!(fault_count("t.torn"), 2);
        clear();
    }

    #[test]
    fn draw_is_deterministic_per_seed() {
        let mut a = FaultPlan::new(7);
        let mut b = FaultPlan::new(7);
        let mut c = FaultPlan::new(8);
        let da: Vec<u64> = (0..16).map(|_| a.draw(1, 10)).collect();
        let db: Vec<u64> = (0..16).map(|_| b.draw(1, 10)).collect();
        let dc: Vec<u64> = (0..16).map(|_| c.draw(1, 10)).collect();
        assert_eq!(da, db);
        assert_ne!(da, dc);
        assert!(da.iter().all(|&v| (1..=10).contains(&v)));
    }

    #[test]
    fn sites_count_independently() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        install(
            FaultPlan::new(4)
                .io_error_on("t.a", &[1])
                .io_error_on("t.b", &[2]),
        );
        assert!(check_io("t.a").is_err(), "site a fires on its own call 1");
        assert!(check_io("t.b").is_ok(), "site b's counter is separate");
        assert!(check_io("t.b").is_err());
        clear();
    }
}
