//! Length-prefixed binary frames over byte streams (pipes).
//!
//! The multi-process trainer (`ifair-core::dp`) talks to its worker
//! processes over stdin/stdout pipes. This module is the wire layer: a
//! *frame* is
//!
//! ```text
//! [u32 LE payload length][u8 tag][payload bytes]
//! ```
//!
//! and payloads are built/parsed with [`PayloadWriter`] /
//! [`PayloadReader`] — fixed-width little-endian integers and raw `f64`
//! bit patterns, so floating-point values cross the pipe exactly
//! (bit-identical, including `-0.0` and the NaN payloads the trainer
//! never produces but the wire must not corrupt).
//!
//! The layer is transport-only: it knows nothing about what the tags
//! mean. A corrupt or absurd length prefix fails fast with
//! [`std::io::ErrorKind::InvalidData`] instead of allocating.

use std::io::{self, Read, Write};

/// Largest accepted payload (1 GiB): far above any real training frame,
/// small enough to reject a garbage length prefix before allocating.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Writes one frame and flushes the stream (frames are request/response
/// units; a buffered, unflushed request would deadlock both ends).
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame payload of {} bytes exceeds the frame cap",
                    payload.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream at a
/// frame boundary (the peer closed its pipe); EOF *inside* a frame is an
/// `UnexpectedEof` error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let k = r.read(&mut len_buf[got..])?;
        if k == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame length prefix",
            ));
        }
        got += k;
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame declares a {len}-byte payload, over the frame cap"),
        ));
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((tag[0], payload)))
}

/// Incrementally builds a frame payload out of little-endian scalars and
/// raw `f64` arrays.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty payload.
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) -> &mut Self {
        self.put_u64(v as u64)
    }

    /// Appends one `f64` as its raw bit pattern.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed `f64` slice as raw bit patterns.
    pub fn put_f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.put_usize(vs.len());
        self.buf.reserve(vs.len() * 8);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Appends length-prefixed raw bytes (e.g. a JSON blob).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
        self
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential reader over a frame payload built by [`PayloadWriter`].
/// Every getter is bounds-checked and fails with `InvalidData` instead of
/// panicking on a short or corrupt payload.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn short(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("frame payload too short reading {what}"),
    )
}

impl<'a> PayloadReader<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> PayloadReader<'a> {
        PayloadReader { buf, pos: 0 }
    }

    fn take(&mut self, len: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(len).ok_or_else(|| short(what))?;
        if end > self.buf.len() {
            return Err(short(what));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn get_usize(&mut self) -> io::Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| short("usize"))
    }

    /// Reads one `f64` bit pattern.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        let b = self.take(8, "f64")?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed `f64` slice into a fresh vector.
    pub fn get_f64s(&mut self) -> io::Result<Vec<f64>> {
        let len = self.get_usize()?;
        let bytes = self.take(
            len.checked_mul(8).ok_or_else(|| short("f64 array"))?,
            "f64 array",
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads a length-prefixed `f64` slice into `out`, which must match
    /// the encoded length exactly.
    pub fn get_f64s_into(&mut self, out: &mut [f64]) -> io::Result<()> {
        let len = self.get_usize()?;
        if len != out.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame carries {len} f64 values, expected {}", out.len()),
            ));
        }
        let bytes = self.take(len * 8, "f64 array")?;
        for (v, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *v = f64::from_le_bytes(c.try_into().expect("8 bytes"));
        }
        Ok(())
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> io::Result<&'a [u8]> {
        let len = self.get_usize()?;
        self.take(len, "bytes")
    }

    /// Errors unless the payload was consumed exactly — catches protocol
    /// drift between coordinator and worker builds.
    pub fn finish(self) -> io::Result<()> {
        if self.pos != self.buf.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{} unread bytes at the end of a frame payload",
                    self.buf.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, 7, b"hello").unwrap();
        write_frame(&mut pipe, 9, b"").unwrap();
        let mut r = Cursor::new(pipe);
        assert_eq!(read_frame(&mut r).unwrap(), Some((7, b"hello".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((9, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn torn_frames_and_absurd_lengths_are_errors() {
        // EOF inside the length prefix.
        let mut r = Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut r).is_err());
        // EOF inside the payload.
        let mut pipe = Vec::new();
        write_frame(&mut pipe, 1, b"abcdef").unwrap();
        pipe.truncate(pipe.len() - 2);
        assert!(read_frame(&mut Cursor::new(pipe)).is_err());
        // A length prefix over the cap fails before allocating.
        let mut huge = u32::MAX.to_le_bytes().to_vec();
        huge.push(0);
        assert!(read_frame(&mut Cursor::new(huge)).is_err());
    }

    #[test]
    fn payload_scalars_and_arrays_roundtrip_bitwise() {
        let values = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY];
        let mut w = PayloadWriter::new();
        w.put_u64(u64::MAX).put_usize(42).put_f64(-0.0);
        w.put_f64s(&values).put_bytes(b"{\"k\":1}");
        let bytes = w.into_bytes();

        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        let back = r.get_f64s().unwrap();
        let bits: Vec<u64> = back.iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect, "NaN payloads and -0.0 cross intact");
        assert_eq!(r.get_bytes().unwrap(), b"{\"k\":1}");
        r.finish().unwrap();
    }

    #[test]
    fn short_payloads_fail_with_typed_errors_not_panics() {
        let mut w = PayloadWriter::new();
        w.put_f64s(&[1.0, 2.0]);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut r = PayloadReader::new(&bytes);
        assert!(r.get_f64s().is_err());

        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert!(r.get_u64().is_err());

        // get_f64s_into checks the encoded length against the buffer.
        let mut w = PayloadWriter::new();
        w.put_f64s(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        let mut out = vec![0.0; 2];
        assert!(r.get_f64s_into(&mut out).is_err());

        // Unconsumed trailing bytes are protocol drift.
        let mut w = PayloadWriter::new();
        w.put_u64(1).put_u64(2);
        let bytes = w.into_bytes();
        let mut r = PayloadReader::new(&bytes);
        r.get_u64().unwrap();
        assert!(r.finish().is_err());
    }
}
