//! # The iFair estimator contract
//!
//! One small trait family — [`Estimator`] / [`Transform`] / [`Predict`] —
//! plus one typed error family — [`FitError`] / [`ConfigError`] — shared by
//! every method in the workspace: the iFair model, the LFR / SVD / FA\*IR /
//! parity baselines, the downstream logistic and ridge models, and the
//! `ifair-data` scalers (adapted here in [`scalers`]).
//!
//! The contract is *dataset-centric*: everything fits on a single
//! [`ifair_data::Dataset`] view bundling features, the per-column protected
//! mask, per-record group membership and optional labels. Methods read the
//! subset they need, so a pipeline can swap iFair for LFR for SVD without
//! changing a line of harness code — the paper's experimental design
//! (Tables 2–5) expressed as a type.
//!
//! ```
//! use ifair_api::{Estimator, Transform};
//! use ifair_api::scalers::StandardScalerConfig;
//! use ifair_data::Dataset;
//! use ifair_linalg::Matrix;
//!
//! let ds = Dataset::new(
//!     Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 30.0]]).unwrap(),
//!     vec!["a".into(), "b".into()],
//!     vec![false, false],
//!     None,
//!     vec![0, 1],
//! ).unwrap();
//! let scaler = StandardScalerConfig::default().fit(&ds).unwrap();
//! // The inherent scaler API takes a `&Matrix`; the trait sees the dataset.
//! let scaled = Transform::transform(&scaler, &ds).unwrap();
//! assert_eq!(scaled.shape(), (2, 2));
//! ```
//!
//! Persistence goes through [`persist`]: every serialized artifact carries a
//! schema version and a kind tag, so loading a model written by an
//! incompatible build fails loudly instead of decoding garbage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod faults;
pub mod ipc;
pub mod persist;
pub mod scalers;
pub mod traits;

pub use error::{
    check_epsilon, check_group_labels, check_width, ensure, schema_error, shape_error,
    CertifyError, ConfigError, FitError,
};
pub use persist::{
    from_versioned_json, peek_artifact, to_versioned_json, write_atomic, ArtifactInfo,
    SCHEMA_VERSION,
};
pub use traits::{Estimator, Predict, Transform};
