//! Schema-versioned JSON persistence.
//!
//! Every serialized model in the workspace is wrapped in a small envelope
//!
//! ```json
//! {"schema_version": 1, "kind": "ifair-model", "payload": { ... }}
//! ```
//!
//! so loading an artifact written by an incompatible build fails with a
//! clear [`FitError::SchemaVersion`] (or a kind mismatch) instead of
//! deserializing garbage into a live model.

use crate::error::FitError;
use serde::{Deserialize, Serialize, Value};

/// The schema version this build writes and the highest it can read.
pub const SCHEMA_VERSION: u32 = 1;

/// Serializes `payload` into the versioned envelope under the given `kind`
/// tag (e.g. `"ifair-model"`, `"pipeline"`).
pub fn to_versioned_json<T: Serialize + ?Sized>(
    kind: &str,
    payload: &T,
) -> Result<String, FitError> {
    let envelope = Value::Object(vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_value()),
        ("kind".to_string(), Value::String(kind.to_string())),
        ("payload".to_string(), payload.to_value()),
    ]);
    serde_json::to_string(&envelope).map_err(|e| FitError::Serialization(e.to_string()))
}

/// Parses a versioned envelope, checking the schema version and `kind` tag
/// before touching the payload.
pub fn from_versioned_json<T: Deserialize>(kind: &str, json: &str) -> Result<T, FitError> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| FitError::Serialization(e.to_string()))?;
    let version = value
        .field("schema_version")
        .and_then(u32::from_value)
        .map_err(|_| {
            FitError::Serialization(
                "missing or invalid `schema_version` field — not a versioned artifact".into(),
            )
        })?;
    if version != SCHEMA_VERSION {
        return Err(FitError::SchemaVersion {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let found_kind = value
        .field("kind")
        .and_then(String::from_value)
        .map_err(|e| FitError::Serialization(e.to_string()))?;
    if found_kind != kind {
        return Err(FitError::Serialization(format!(
            "artifact kind mismatch: expected `{kind}`, found `{found_kind}`"
        )));
    }
    let payload = value
        .field("payload")
        .map_err(|e| FitError::Serialization(e.to_string()))?;
    T::from_value(payload).map_err(|e| FitError::Serialization(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_payload() {
        let payload = vec![1.5f64, -2.25, 0.0];
        let json = to_versioned_json("test-vec", &payload).unwrap();
        assert!(json.contains("\"schema_version\""));
        let back: Vec<f64> = from_versioned_json("test-vec", &json).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn bumped_version_is_rejected_with_clear_error() {
        let json = to_versioned_json("test-vec", &vec![1.0f64]).unwrap();
        let bumped = json.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        assert_ne!(json, bumped, "version field must be present to bump");
        let err = from_versioned_json::<Vec<f64>>("test-vec", &bumped).unwrap_err();
        assert!(matches!(
            err,
            FitError::SchemaVersion {
                found: 999,
                supported: SCHEMA_VERSION
            }
        ));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn unversioned_payload_is_rejected() {
        let err = from_versioned_json::<Vec<f64>>("test-vec", "[1.0, 2.0]").unwrap_err();
        assert!(matches!(err, FitError::Serialization(_)));
        assert!(err.to_string().contains("schema_version"));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let json = to_versioned_json("kind-a", &1.0f64).unwrap();
        let err = from_versioned_json::<f64>("kind-b", &json).unwrap_err();
        assert!(err.to_string().contains("kind-a") && err.to_string().contains("kind-b"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_versioned_json::<f64>("k", "{not json").is_err());
        assert!(from_versioned_json::<f64>("k", "").is_err());
    }
}
