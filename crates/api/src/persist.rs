//! Schema-versioned JSON persistence.
//!
//! Every serialized model in the workspace is wrapped in a small envelope
//!
//! ```json
//! {"schema_version": 1, "kind": "ifair-model", "payload": { ... }}
//! ```
//!
//! so loading an artifact written by an incompatible build fails with a
//! clear [`FitError::SchemaVersion`] (or a kind mismatch) instead of
//! deserializing garbage into a live model.

use crate::error::FitError;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;

/// The schema version this build writes and the highest it can read.
pub const SCHEMA_VERSION: u32 = 1;

/// Writes `contents` to `path` atomically: temp file in the target's
/// directory, fsync, rename (directory-fsynced on Unix). A reader —
/// including a crashed writer's next boot — observes either the old
/// complete file or the new complete file, never a torn mix. This is the
/// write path every artifact and training checkpoint goes through; the
/// implementation lives in [`ifair_data::persist`] so dataset shards share
/// it, while this wrapper keeps the artifact-level fault-injection site.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    crate::faults::check_io("api.artifact.write")?;
    ifair_data::persist::write_atomic(path, contents)
}

/// The envelope metadata of a versioned artifact, read without touching the
/// payload — what a model registry needs to dispatch an artifact file to the
/// right deserializer (`"pipeline"` vs `"ifair-model"`) before committing to
/// a full decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// The `schema_version` the artifact was written with.
    pub schema_version: u32,
    /// The artifact's `kind` tag (e.g. `"ifair-model"`, `"pipeline"`).
    pub kind: String,
}

/// Parses only the envelope of a versioned artifact: its schema version and
/// kind tag. The version is checked against [`SCHEMA_VERSION`] (unknown
/// versions fail with [`FitError::SchemaVersion`]); the payload is validated
/// later, by the kind-specific loader.
pub fn peek_artifact(json: &str) -> Result<ArtifactInfo, FitError> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| FitError::Serialization(e.to_string()))?;
    let version = value
        .field("schema_version")
        .and_then(u32::from_value)
        .map_err(|_| {
            FitError::Serialization(
                "missing or invalid `schema_version` field — not a versioned artifact".into(),
            )
        })?;
    if version != SCHEMA_VERSION {
        return Err(FitError::SchemaVersion {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let kind = value
        .field("kind")
        .and_then(String::from_value)
        .map_err(|e| FitError::Serialization(e.to_string()))?;
    Ok(ArtifactInfo {
        schema_version: version,
        kind,
    })
}

/// Serializes `payload` into the versioned envelope under the given `kind`
/// tag (e.g. `"ifair-model"`, `"pipeline"`).
pub fn to_versioned_json<T: Serialize + ?Sized>(
    kind: &str,
    payload: &T,
) -> Result<String, FitError> {
    let envelope = Value::Object(vec![
        ("schema_version".to_string(), SCHEMA_VERSION.to_value()),
        ("kind".to_string(), Value::String(kind.to_string())),
        ("payload".to_string(), payload.to_value()),
    ]);
    serde_json::to_string(&envelope).map_err(|e| FitError::Serialization(e.to_string()))
}

/// Parses a versioned envelope, checking the schema version and `kind` tag
/// before touching the payload.
pub fn from_versioned_json<T: Deserialize>(kind: &str, json: &str) -> Result<T, FitError> {
    let value: Value =
        serde_json::from_str(json).map_err(|e| FitError::Serialization(e.to_string()))?;
    let version = value
        .field("schema_version")
        .and_then(u32::from_value)
        .map_err(|_| {
            FitError::Serialization(
                "missing or invalid `schema_version` field — not a versioned artifact".into(),
            )
        })?;
    if version != SCHEMA_VERSION {
        return Err(FitError::SchemaVersion {
            found: version,
            supported: SCHEMA_VERSION,
        });
    }
    let found_kind = value
        .field("kind")
        .and_then(String::from_value)
        .map_err(|e| FitError::Serialization(e.to_string()))?;
    if found_kind != kind {
        return Err(FitError::Serialization(format!(
            "artifact kind mismatch: expected `{kind}`, found `{found_kind}`"
        )));
    }
    let payload = value
        .field("payload")
        .map_err(|e| FitError::Serialization(e.to_string()))?;
    T::from_value(payload).map_err(|e| FitError::Serialization(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ifair-api-atomic-{}.json", std::process::id()));
        write_atomic(&path, b"first version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first version");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind next to the target.
        let stem = path.file_name().unwrap().to_str().unwrap().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(&stem))
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_fails_cleanly_on_bad_directory() {
        let path = Path::new("/definitely/not/a/dir/artifact.json");
        assert!(write_atomic(path, b"x").is_err());
    }

    #[test]
    fn roundtrip_preserves_payload() {
        let payload = vec![1.5f64, -2.25, 0.0];
        let json = to_versioned_json("test-vec", &payload).unwrap();
        assert!(json.contains("\"schema_version\""));
        let back: Vec<f64> = from_versioned_json("test-vec", &json).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn bumped_version_is_rejected_with_clear_error() {
        let json = to_versioned_json("test-vec", &vec![1.0f64]).unwrap();
        let bumped = json.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        assert_ne!(json, bumped, "version field must be present to bump");
        let err = from_versioned_json::<Vec<f64>>("test-vec", &bumped).unwrap_err();
        assert!(matches!(
            err,
            FitError::SchemaVersion {
                found: 999,
                supported: SCHEMA_VERSION
            }
        ));
        assert!(err.to_string().contains("999"));
    }

    #[test]
    fn unversioned_payload_is_rejected() {
        let err = from_versioned_json::<Vec<f64>>("test-vec", "[1.0, 2.0]").unwrap_err();
        assert!(matches!(err, FitError::Serialization(_)));
        assert!(err.to_string().contains("schema_version"));
    }

    #[test]
    fn kind_mismatch_is_rejected() {
        let json = to_versioned_json("kind-a", &1.0f64).unwrap();
        let err = from_versioned_json::<f64>("kind-b", &json).unwrap_err();
        assert!(err.to_string().contains("kind-a") && err.to_string().contains("kind-b"));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_versioned_json::<f64>("k", "{not json").is_err());
        assert!(from_versioned_json::<f64>("k", "").is_err());
    }

    #[test]
    fn peek_reads_envelope_without_decoding_payload() {
        let json = to_versioned_json("some-kind", &vec![1.0f64, 2.0]).unwrap();
        let info = peek_artifact(&json).unwrap();
        assert_eq!(info.kind, "some-kind");
        assert_eq!(info.schema_version, SCHEMA_VERSION);
        // The payload is not validated at peek time: a structurally absurd
        // payload still yields its envelope.
        let garbage = r#"{"schema_version":1,"kind":"x","payload":{"not":"a model"}}"#;
        assert_eq!(peek_artifact(garbage).unwrap().kind, "x");
    }

    #[test]
    fn peek_rejects_bad_envelopes() {
        assert!(matches!(
            peek_artifact(r#"{"schema_version":99,"kind":"x","payload":1}"#),
            Err(FitError::SchemaVersion { found: 99, .. })
        ));
        assert!(peek_artifact("[1,2,3]").is_err());
        assert!(peek_artifact(r#"{"kind":"x"}"#).is_err());
        assert!(peek_artifact("{not json").is_err());
    }
}
