//! Estimator-contract adapters for the `ifair-data` feature scalers.
//!
//! The scalers themselves live in `ifair_data::scale`; this module gives
//! them unfitted config types implementing [`Estimator`] and wires the
//! fitted scalers into [`Transform`], so `scale → represent → model`
//! pipelines treat all three stages uniformly.

use crate::error::{check_width, shape_error, FitError};
use crate::traits::{Estimator, Transform};
use ifair_data::{Dataset, MinMaxScaler, StandardScaler};
use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Unfitted standard (unit-variance) scaler — §V-B's "all feature vectors
/// are normalized to have unit variance".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StandardScalerConfig {
    /// When false, data keeps its mean and only variance is normalized.
    pub center: bool,
}

impl Default for StandardScalerConfig {
    fn default() -> Self {
        StandardScalerConfig { center: true }
    }
}

impl Estimator for StandardScalerConfig {
    type Fitted = StandardScaler;

    fn fit(&self, ds: &Dataset) -> Result<StandardScaler, FitError> {
        if ds.n_records() == 0 || ds.n_features() == 0 {
            return Err(shape_error("cannot fit a scaler on an empty dataset"));
        }
        Ok(if self.center {
            StandardScaler::fit(&ds.x)
        } else {
            StandardScaler::fit_no_center(&ds.x)
        })
    }
}

impl Transform for StandardScaler {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        check_width(ds, self.n_features(), "scaler")?;
        Ok(StandardScaler::transform(self, &ds.x))
    }
}

/// Unfitted min-max scaler mapping features into `[0, 1]` (what the LFR
/// reference implementation uses).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinMaxScalerConfig;

impl Estimator for MinMaxScalerConfig {
    type Fitted = MinMaxScaler;

    fn fit(&self, ds: &Dataset) -> Result<MinMaxScaler, FitError> {
        if ds.n_records() == 0 || ds.n_features() == 0 {
            return Err(shape_error("cannot fit a scaler on an empty dataset"));
        }
        Ok(MinMaxScaler::fit(&ds.x))
    }
}

impl Transform for MinMaxScaler {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        check_width(ds, self.n_features(), "scaler")?;
        Ok(MinMaxScaler::transform(self, &ds.x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap(),
            vec!["a".into(), "b".into()],
            vec![false, false],
            None,
            vec![0, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn standard_scaler_fits_and_transforms_via_traits() {
        let ds = toy();
        let scaler = StandardScalerConfig::default().fit(&ds).unwrap();
        let t = Transform::transform(&scaler, &ds).unwrap();
        let means = t.col_means();
        assert!(means[0].abs() < 1e-12 && means[1].abs() < 1e-12);
        // Matches the inherent path bit-for-bit.
        assert_eq!(t, StandardScaler::fit(&ds.x).transform(&ds.x));
    }

    #[test]
    fn minmax_scaler_maps_to_unit_interval_via_traits() {
        let ds = toy();
        let scaler = MinMaxScalerConfig.fit(&ds).unwrap();
        let t = Transform::transform(&scaler, &ds).unwrap();
        assert!(t.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        let ds = toy();
        let scaler = StandardScalerConfig::default().fit(&ds).unwrap();
        let narrow = Dataset::new(
            Matrix::zeros(2, 1),
            vec!["a".into()],
            vec![false],
            None,
            vec![0, 0],
        )
        .unwrap();
        assert!(Transform::transform(&scaler, &narrow).is_err());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let empty = Dataset::new(
            Matrix::zeros(0, 2),
            vec!["a".into(), "b".into()],
            vec![false, false],
            None,
            vec![],
        )
        .unwrap();
        assert!(StandardScalerConfig::default().fit(&empty).is_err());
        assert!(MinMaxScalerConfig.fit(&empty).is_err());
    }
}
