//! The sklearn-style estimator contract shared by every method.
//!
//! The paper's experiments are all pipelines — scale, learn a representation
//! (iFair / LFR / SVD / identity), train a downstream model, score — so the
//! whole workspace speaks three small traits over one [`Dataset`] view:
//!
//! * [`Estimator`]: an **unfitted** configuration that can `fit` on a
//!   dataset, producing its `Fitted` model. Implemented by the config types
//!   (`IFairConfig`, `LfrConfig`, `SvdConfig`, ...), so a grid search is a
//!   loop over configs and `fit(&ds)` calls.
//! * [`Transform`]: a fitted stage mapping records to a new feature matrix
//!   (scalers, representations).
//! * [`Predict`]: a fitted stage emitting one decision score per record
//!   (classifiers, rankers, post-processors).
//!
//! All three are dataset-centric: features, the per-column protected mask,
//! per-record group membership and optional labels travel together, so
//! methods that need different subsets (iFair reads the protected mask, LFR
//! reads labels + groups, logistic regression reads labels) share one
//! signature and can be swapped under one harness.

use crate::error::FitError;
use ifair_data::Dataset;
use ifair_linalg::Matrix;

/// An unfitted estimator: configuration + the ability to learn from data.
pub trait Estimator {
    /// The trained model produced by [`Estimator::fit`].
    type Fitted;

    /// Fits the estimator on `ds`, validating configuration and data shapes
    /// up front.
    fn fit(&self, ds: &Dataset) -> Result<Self::Fitted, FitError>;
}

/// A fitted stage that maps records to a (possibly different-width) feature
/// matrix.
pub trait Transform {
    /// Transforms the records of `ds`, returning one output row per record.
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError>;

    /// Transforms `ds` and re-wraps the result as a dataset carrying the
    /// same labels/groups — the glue that chains pipeline stages.
    fn transform_dataset(&self, ds: &Dataset) -> Result<Dataset, FitError> {
        let x = self.transform(ds)?;
        ds.with_features(x).map_err(FitError::from)
    }
}

/// A fitted stage that emits one decision score per record.
pub trait Predict {
    /// Continuous decision scores: positive-class probabilities for
    /// classifiers, predicted deserved scores for regressors/rankers.
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError>;

    /// Final decisions: hard 0/1 labels for classifiers; regressors return
    /// their scores unchanged.
    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair_data::DataError;

    /// A stage that doubles every feature — exercises the default
    /// `transform_dataset` wiring.
    struct Doubler;

    impl Transform for Doubler {
        fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
            let mut x = ds.x.clone();
            for v in x.as_mut_slice() {
                *v *= 2.0;
            }
            Ok(x)
        }
    }

    /// A stage that drops all rows — must surface a typed shape error from
    /// `transform_dataset`.
    struct RowEater;

    impl Transform for RowEater {
        fn transform(&self, _ds: &Dataset) -> Result<Matrix, FitError> {
            Ok(Matrix::zeros(0, 1))
        }
    }

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap(),
            vec!["a".into(), "b".into()],
            vec![false, true],
            Some(vec![0.0, 1.0]),
            vec![0, 1],
        )
        .unwrap()
    }

    #[test]
    fn transform_dataset_keeps_metadata() {
        let ds = toy();
        let out = Doubler.transform_dataset(&ds).unwrap();
        assert_eq!(out.x.get(1, 1), 8.0);
        assert_eq!(out.group, ds.group);
        assert_eq!(out.labels(), ds.labels());
        // Same width: names and protected flags survive.
        assert_eq!(out.protected, ds.protected);
    }

    #[test]
    fn transform_dataset_propagates_shape_errors() {
        let err = RowEater.transform_dataset(&toy()).unwrap_err();
        assert!(matches!(err, FitError::Data(DataError::Shape(_))));
    }
}
