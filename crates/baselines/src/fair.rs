//! FA\*IR — "A Fair Top-k Ranking Algorithm" (Zehlike et al., CIKM 2017).
//!
//! The ranking baseline of the iFair paper's §V-E, and the post-processor of
//! its §V-F "enforcing parity" experiment (Fig. 5). FA\*IR takes candidates
//! ranked by score and a target minimum proportion `p` of protected
//! candidates, and produces the highest-utility re-ranking whose every
//! prefix passes a binomial *ranked group fairness* test at significance
//! `α`: prefix `k` needs at least
//!
//! ```text
//! m(k) = min { t : BinomCDF(t; k, p) > α }
//! ```
//!
//! protected candidates. Because `k` hypotheses are tested at once, the
//! original paper adjusts the per-test significance `α_c < α` so the
//! *overall* type-I error stays `α`; [`adjusted_alpha`] reproduces that
//! model adjustment with the exact dynamic program over fair Bernoulli
//! processes ([`fail_probability`]).
//!
//! The iFair paper's extension (§V-E) is also implemented: since consistency
//! (yNN) is measured on *scores*, not ranks, [`rerank`] emits "fair scores"
//! where constraint-promoted candidates receive linearly interpolated
//! scores between their new neighbours.

use ifair_api::{check_group_labels, ensure, ConfigError, Estimator, FitError, Predict};
use ifair_data::Dataset;
use serde::{Deserialize, Serialize};

/// Parameters of the FA\*IR test and re-ranking.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairConfig {
    /// Target minimum proportion of protected candidates (the paper's `p`).
    pub p: f64,
    /// Overall significance level of the ranked group fairness test.
    pub alpha: f64,
    /// When true, the per-prefix significance is corrected with
    /// [`adjusted_alpha`] so the family-wise type-I error is `alpha`;
    /// when false, `alpha` is used at every prefix unadjusted.
    pub adjust_alpha: bool,
}

impl Default for FairConfig {
    fn default() -> Self {
        FairConfig {
            p: 0.5,
            alpha: 0.1,
            adjust_alpha: true,
        }
    }
}

impl FairConfig {
    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(
            (0.0..=1.0).contains(&self.p),
            "p",
            format!("must be in [0,1], got {}", self.p),
        )?;
        ensure(
            0.0 < self.alpha && self.alpha < 1.0,
            "alpha",
            format!("must be in (0,1), got {}", self.alpha),
        )
    }
}

impl Estimator for FairConfig {
    type Fitted = FairScorer;

    /// FA\*IR learns nothing from data — "fitting" validates the parameters
    /// and captures them in a [`FairScorer`] post-processor.
    fn fit(&self, _ds: &Dataset) -> Result<FairScorer, FitError> {
        self.validate()?;
        Ok(FairScorer {
            config: self.clone(),
        })
    }
}

/// FA\*IR as a score post-processor: re-ranks the dataset's records (scores
/// read from `ds.y`, groups from `ds.group`) over the full candidate pool
/// and emits the §V-E interpolated *fair scores*, aligned with the records.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairScorer {
    /// The validated FA\*IR parameters.
    pub config: FairConfig,
}

impl Predict for FairScorer {
    /// Fair scores per record (constraint-promoted candidates receive
    /// interpolated scores; see [`rerank`]).
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        let scores = ds.try_labels()?;
        check_group_labels(&ds.group)?;
        let fair = rerank(scores, &ds.group, scores.len(), &self.config);
        let mut by_record = vec![0.0; scores.len()];
        for (pos, &cand) in fair.order.iter().enumerate() {
            by_record[cand] = fair.fair_scores[pos];
        }
        Ok(by_record)
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Predict::predict_proba(self, ds)
    }
}

/// Result of [`rerank`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairRanking {
    /// Candidate indices in fair ranked order (best first).
    pub order: Vec<usize>,
    /// Fair score per output *position* (aligned with `order`): original
    /// scores for merit picks, linearly interpolated scores for candidates
    /// promoted by the fairness constraint.
    pub fair_scores: Vec<f64>,
    /// Positions that were filled by constraint rather than merit.
    pub promoted: Vec<bool>,
    /// Whether the protected pool ran dry before the constraint was met at
    /// some prefix (the constraint is then satisfied as far as possible).
    pub feasible: bool,
}

/// Cumulative distribution function of `Binomial(n, p)` at `t`
/// (`P[X <= t]`), computed by stable iterative accumulation of the pmf.
pub fn binomial_cdf(t: usize, n: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if t >= n {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0; // t < n here
    }
    // pmf(0) computed in log space to survive large n.
    let ratio = p / (1.0 - p);
    let mut log_pmf = n as f64 * (1.0 - p).ln();
    let mut cdf = log_pmf.exp();
    for i in 0..t {
        log_pmf += ((n - i) as f64 / (i + 1) as f64).ln() + ratio.ln();
        cdf += log_pmf.exp();
    }
    cdf.min(1.0)
}

/// The minimum-protected table `m(1..=k)` of the FA\*IR test: entry `i-1`
/// is the minimum number of protected candidates any fair ranking must have
/// in its top `i` (the smallest `t` with `BinomCDF(t; i, p) > alpha`).
pub fn minimum_protected_table(k: usize, p: f64, alpha: f64) -> Vec<usize> {
    (1..=k)
        .map(|prefix| {
            let mut t = 0;
            while binomial_cdf(t, prefix, p) <= alpha {
                t += 1;
            }
            t
        })
        .collect()
}

/// Probability that a ranking generated by a *fair* Bernoulli(`p`) process
/// fails at least one prefix constraint of `mtable` — the family-wise
/// type-I error of the multiple-hypothesis test (computed exactly with a
/// dynamic program over (position, protected-count) states).
pub fn fail_probability(mtable: &[usize], p: f64) -> f64 {
    let k = mtable.len();
    // f[j] = P[j protected so far and no prefix failed].
    let mut f = vec![0.0; k + 1];
    f[0] = 1.0;
    for (pos, &required) in mtable.iter().enumerate() {
        let mut next = vec![0.0; k + 1];
        for (j, &prob) in f.iter().enumerate().take(pos + 1) {
            if prob == 0.0 {
                continue;
            }
            next[j + 1] += prob * p;
            next[j] += prob * (1.0 - p);
        }
        for (j, slot) in next.iter_mut().enumerate() {
            if j < required {
                *slot = 0.0;
            }
        }
        f = next;
    }
    // Clamp: the state probabilities can sum to 1 + O(ε) in floating point.
    (1.0 - f.iter().sum::<f64>()).clamp(0.0, 1.0)
}

/// The corrected per-test significance `α_c` such that testing every prefix
/// of a length-`k` ranking at `α_c` yields an overall type-I error of
/// `alpha` (binary search over the exact [`fail_probability`]).
pub fn adjusted_alpha(k: usize, p: f64, alpha: f64) -> f64 {
    if k == 0 {
        return alpha;
    }
    let overall = |ac: f64| fail_probability(&minimum_protected_table(k, p, ac), p);
    // fail_probability is monotone non-decreasing in α_c (larger α_c =>
    // stricter mtable => more ways to fail).
    let (mut lo, mut hi) = (0.0_f64, alpha);
    if overall(hi) <= alpha {
        return hi;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if overall(mid) <= alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Checks the ranked group fairness condition: does `is_protected` (in
/// ranked order, best first) satisfy every prefix constraint of `mtable`?
pub fn satisfies(is_protected: &[bool], mtable: &[usize]) -> bool {
    let mut count = 0;
    for (i, &prot) in is_protected.iter().enumerate() {
        if prot {
            count += 1;
        }
        if let Some(&req) = mtable.get(i) {
            if count < req {
                return false;
            }
        }
    }
    true
}

/// FA\*IR re-ranking (Algorithm 2 of Zehlike et al.) with the iFair paper's
/// fair-score interpolation extension.
///
/// `scores[i]` is candidate `i`'s deserved score, `protected[i]` its group
/// (1 = protected); the best `k` candidates are returned in fair order. When
/// the prefix constraint forces a protected candidate above a better
/// non-protected one, the position is marked `promoted` and its fair score
/// is linearly interpolated between the nearest non-promoted neighbours.
pub fn rerank(scores: &[f64], protected: &[u8], k: usize, config: &FairConfig) -> FairRanking {
    assert_eq!(
        scores.len(),
        protected.len(),
        "scores and protected flags must align"
    );
    config.validate().expect("invalid FairConfig");
    let k = k.min(scores.len());
    let alpha_c = if config.adjust_alpha {
        adjusted_alpha(k, config.p, config.alpha)
    } else {
        config.alpha
    };
    let mtable = minimum_protected_table(k, config.p, alpha_c);

    // Priority queues as index vectors sorted by descending score; ties
    // broken by index for determinism.
    let by_score_desc = |a: &usize, b: &usize| {
        scores[*b]
            .partial_cmp(&scores[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    };
    let mut p1: Vec<usize> = (0..scores.len()).filter(|&i| protected[i] == 1).collect();
    let mut p0: Vec<usize> = (0..scores.len()).filter(|&i| protected[i] != 1).collect();
    p1.sort_by(by_score_desc);
    p0.sort_by(by_score_desc);
    let (mut i1, mut i0) = (0usize, 0usize);

    let mut order = Vec::with_capacity(k);
    let mut promoted = vec![false; k];
    let mut feasible = true;
    let mut protected_so_far = 0usize;
    for pos in 0..k {
        let need_protected = protected_so_far < mtable[pos];
        let head1 = p1.get(i1).copied();
        let head0 = p0.get(i0).copied();
        let pick_protected = if need_protected {
            if head1.is_none() {
                feasible = false;
                false
            } else {
                true
            }
        } else {
            match (head1, head0) {
                (Some(a), Some(b)) => by_score_desc(&a, &b).is_lt(),
                (Some(_), None) => true,
                _ => false,
            }
        };
        if pick_protected {
            let cand = head1.expect("protected pool non-empty when picked");
            // A forced pick that out-scores the best alternative is merit.
            promoted[pos] = need_protected && head0.is_some_and(|alt| scores[alt] > scores[cand]);
            order.push(cand);
            i1 += 1;
            protected_so_far += 1;
        } else if let Some(cand) = head0 {
            order.push(cand);
            i0 += 1;
        } else if let Some(cand) = head1 {
            order.push(cand);
            i1 += 1;
            protected_so_far += 1;
        } else {
            break; // both pools exhausted (k was clamped, unreachable)
        }
    }
    promoted.truncate(order.len());

    // Fair scores: merit positions keep their candidate's score, promoted
    // positions are interpolated between surrounding merit scores.
    let mut fair_scores: Vec<f64> = order.iter().map(|&i| scores[i]).collect();
    interpolate_promoted(&mut fair_scores, &promoted);

    FairRanking {
        order,
        fair_scores,
        promoted,
        feasible,
    }
}

/// Replaces `scores[pos]` at promoted positions with values linearly
/// interpolated between the nearest non-promoted neighbours (clamped to the
/// nearest anchor at the ends), preserving descending order within each gap.
fn interpolate_promoted(scores: &mut [f64], promoted: &[bool]) {
    let n = scores.len();
    let mut pos = 0;
    while pos < n {
        if !promoted[pos] {
            pos += 1;
            continue;
        }
        let run_start = pos;
        let mut run_end = pos;
        while run_end + 1 < n && promoted[run_end + 1] {
            run_end += 1;
        }
        let left = run_start.checked_sub(1).map(|i| scores[i]);
        let right = (run_end + 1 < n).then(|| scores[run_end + 1]);
        let (lo, hi) = match (left, right) {
            (Some(l), Some(r)) => (l, r),
            (Some(l), None) => (l, l),
            (None, Some(r)) => (r, r),
            (None, None) => {
                pos = run_end + 1;
                continue; // every position promoted: keep original scores
            }
        };
        let steps = (run_end - run_start + 2) as f64;
        for (offset, slot) in (run_start..=run_end).enumerate() {
            let frac = (offset + 1) as f64 / steps;
            scores[slot] = lo + (hi - lo) * frac;
        }
        pos = run_end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_scorer_validates_group_labels_and_interpolates() {
        let scores = vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4];
        let group = vec![0u8, 0, 0, 1, 1, 1];
        let ds = ifair_data::Dataset::new(
            ifair_linalg::Matrix::zeros(6, 1),
            vec!["score-source".into()],
            vec![false],
            Some(scores.clone()),
            group.clone(),
        )
        .unwrap();
        let scorer = FairConfig {
            p: 0.8,
            adjust_alpha: false,
            ..Default::default()
        }
        .fit(&ds)
        .unwrap();
        let fair = Predict::predict_proba(&scorer, &ds).unwrap();
        assert_eq!(fair.len(), 6);
        assert!(fair.iter().all(|v| v.is_finite()));

        // Out-of-range labels are typed errors, not "unprotected".
        let mut bad = ds.clone();
        bad.group[2] = 3;
        let err = Predict::predict_proba(&scorer, &bad).unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
        // Invalid parameters are caught at fit.
        assert!(FairConfig {
            p: 1.5,
            ..Default::default()
        }
        .fit(&ds)
        .is_err());
    }

    #[test]
    fn binomial_cdf_matches_hand_computed_values() {
        // Bin(2, 0.5): P[X<=0]=0.25, P[X<=1]=0.75, P[X<=2]=1.
        assert!((binomial_cdf(0, 2, 0.5) - 0.25).abs() < 1e-12);
        assert!((binomial_cdf(1, 2, 0.5) - 0.75).abs() < 1e-12);
        assert!((binomial_cdf(2, 2, 0.5) - 1.0).abs() < 1e-12);
        // Bin(4, 0.3): P[X<=1] = 0.7^4 + 4*0.3*0.7^3 = 0.6517.
        assert!((binomial_cdf(1, 4, 0.3) - 0.6517).abs() < 1e-10);
    }

    #[test]
    fn binomial_cdf_edge_probabilities() {
        assert_eq!(binomial_cdf(0, 10, 0.0), 1.0);
        assert_eq!(binomial_cdf(5, 10, 1.0), 0.0);
        assert_eq!(binomial_cdf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_cdf(12, 10, 0.5), 1.0);
    }

    #[test]
    fn binomial_cdf_survives_large_n() {
        let v = binomial_cdf(500, 1000, 0.5);
        assert!(v.is_finite() && (0.5..0.52).contains(&v));
    }

    #[test]
    fn mtable_matches_fair_paper_example() {
        // Table 2 of Zehlike et al. (p = 0.5, α = 0.1, unadjusted): the
        // minimum counts for k = 1..10 are 0,0,0,1,1,1,2,2,3,3.
        let mtable = minimum_protected_table(10, 0.5, 0.1);
        assert_eq!(mtable, vec![0, 0, 0, 1, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn mtable_is_monotone_in_prefix_and_p() {
        let t = minimum_protected_table(40, 0.4, 0.1);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        let lo = minimum_protected_table(20, 0.3, 0.1);
        let hi = minimum_protected_table(20, 0.7, 0.1);
        assert!(lo.iter().zip(&hi).all(|(a, b)| a <= b));
    }

    #[test]
    fn fail_probability_zero_for_trivial_table() {
        assert_eq!(fail_probability(&[0, 0, 0], 0.5), 0.0);
    }

    #[test]
    fn fail_probability_hand_computed() {
        // mtable = [1]: fail iff first draw is unprotected: 1 - p.
        assert!((fail_probability(&[1], 0.3) - 0.7).abs() < 1e-12);
        // mtable = [0, 1]: fail iff first two draws both unprotected.
        assert!((fail_probability(&[0, 1], 0.3) - 0.49).abs() < 1e-12);
    }

    #[test]
    fn adjusted_alpha_bounds_family_wise_error() {
        for (k, p, alpha) in [(10, 0.5, 0.1), (40, 0.3, 0.1), (20, 0.7, 0.05)] {
            let ac = adjusted_alpha(k, p, alpha);
            assert!(ac <= alpha);
            let overall = fail_probability(&minimum_protected_table(k, p, ac), p);
            assert!(
                overall <= alpha + 1e-9,
                "k={k} p={p}: overall {overall} > alpha {alpha}"
            );
        }
    }

    #[test]
    fn satisfies_detects_violations() {
        let mtable = vec![0, 1, 1];
        assert!(satisfies(&[false, true, false], &mtable));
        assert!(!satisfies(&[false, false, true], &mtable));
    }

    fn toy_candidates() -> (Vec<f64>, Vec<u8>) {
        // Scores descending by index; odd indices protected.
        let scores: Vec<f64> = (0..20).map(|i| 1.0 - i as f64 / 20.0).collect();
        let protected: Vec<u8> = (0..20).map(|i| (i % 2 == 1) as u8).collect();
        (scores, protected)
    }

    #[test]
    fn rerank_output_satisfies_its_own_mtable() {
        let (scores, protected) = toy_candidates();
        for p in [0.3, 0.5, 0.7, 0.9] {
            let config = FairConfig {
                p,
                ..Default::default()
            };
            let result = rerank(&scores, &protected, 10, &config);
            assert_eq!(result.order.len(), 10);
            let ac = adjusted_alpha(10, p, config.alpha);
            let mtable = minimum_protected_table(10, p, ac);
            let flags: Vec<bool> = result.order.iter().map(|&i| protected[i] == 1).collect();
            assert!(result.feasible);
            assert!(satisfies(&flags, &mtable), "p={p} violates its mtable");
        }
    }

    #[test]
    fn rerank_without_pressure_is_score_order() {
        let (scores, protected) = toy_candidates();
        // p tiny => mtable all zeros => pure merit ranking.
        let config = FairConfig {
            p: 0.05,
            ..Default::default()
        };
        let result = rerank(&scores, &protected, 10, &config);
        assert_eq!(result.order, (0..10).collect::<Vec<_>>());
        assert!(result.promoted.iter().all(|&b| !b));
        assert_eq!(result.fair_scores, scores[..10].to_vec());
    }

    #[test]
    fn rerank_promotes_protected_under_pressure() {
        // All protected candidates at the bottom.
        let scores: Vec<f64> = (0..20).map(|i| 1.0 - i as f64 / 20.0).collect();
        let protected: Vec<u8> = (0..20).map(|i| (i >= 10) as u8).collect();
        let config = FairConfig {
            p: 0.9,
            adjust_alpha: false,
            alpha: 0.1,
        };
        let result = rerank(&scores, &protected, 10, &config);
        let n_protected = result.order.iter().filter(|&&i| protected[i] == 1).count();
        assert!(n_protected >= 5, "only {n_protected} protected in top 10");
        assert!(result.promoted.iter().any(|&b| b));
        // Fair scores must be non-increasing after interpolation.
        assert!(
            result.fair_scores.windows(2).all(|w| w[0] >= w[1] - 1e-12),
            "fair scores not monotone: {:?}",
            result.fair_scores
        );
    }

    #[test]
    fn rerank_reports_infeasible_when_pool_dries_up() {
        let scores = vec![0.9, 0.8, 0.7, 0.6];
        let protected = vec![1u8, 0, 0, 0];
        let config = FairConfig {
            p: 0.9,
            adjust_alpha: false,
            ..Default::default()
        };
        let result = rerank(&scores, &protected, 4, &config);
        assert!(!result.feasible);
        assert_eq!(result.order.len(), 4);
    }

    #[test]
    fn rerank_clamps_k_to_candidate_count() {
        let (scores, protected) = toy_candidates();
        let result = rerank(&scores, &protected, 100, &FairConfig::default());
        assert_eq!(result.order.len(), 20);
    }

    #[test]
    fn interpolation_fills_interior_runs() {
        let mut scores = vec![1.0, 0.0, 0.0, 0.4];
        let promoted = vec![false, true, true, false];
        interpolate_promoted(&mut scores, &promoted);
        assert!((scores[1] - 0.8).abs() < 1e-12);
        assert!((scores[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn interpolation_clamps_at_ends() {
        let mut scores = vec![0.0, 0.9, 0.5];
        let promoted = vec![true, false, false];
        interpolate_promoted(&mut scores, &promoted);
        assert!((scores[0] - 0.9).abs() < 1e-12);
        let mut scores = vec![0.9, 0.5, 0.0];
        let promoted = vec![false, false, true];
        interpolate_promoted(&mut scores, &promoted);
        assert!((scores[2] - 0.5).abs() < 1e-12);
    }
}
