//! LFR — "Learning Fair Representations" (Zemel et al., ICML 2013).
//!
//! The strongest prior baseline the iFair paper compares against
//! (its reference `[28]`). Like iFair, LFR maps records to a probabilistic
//! mixture of `K` prototypes, but its loss couples **three** goals:
//!
//! ```text
//! L = A_z·L_z + A_x·L_x + A_y·L_y
//! L_z = Σ_k |M_k⁺ − M_k⁻|                    (statistical parity of the
//!                                             prototype responsibilities)
//! L_x = 1/M Σ_i ‖x_i − x̂_i‖²                 (reconstruction)
//! L_y = 1/M Σ_i BCE(y_i, ŷ_i)                (binary-classifier accuracy)
//! ```
//!
//! with `ŷ_i = Σ_k u_ik w_k` predicted from per-prototype label weights
//! `w ∈ [0,1]^K`. Following Zemel et al.'s released implementation, each
//! group learns its own distance weight vector (`α⁺`, `α⁻`) and the
//! record-to-prototype distance is the weighted **squared** Euclidean
//! distance. The paper's critique — which our experiments reproduce — is that
//! (a) the representation is tied to one classification task and one
//! pre-specified protected group, and (b) the three-way objective sacrifices
//! utility; iFair drops `L_z` and the label term.
//!
//! Training uses the same box-constrained L-BFGS substrate as iFair, but with
//! analytic gradients (the original used `scipy.optimize` finite
//! differences).

use ifair_api::{
    check_group_labels, ensure, schema_error, shape_error, ConfigError, Estimator, FitError,
    Predict, Transform,
};
use ifair_data::Dataset;
use ifair_linalg::Matrix;
use ifair_optim::{Lbfgs, LbfgsConfig, Objective, Termination};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Numerical floor keeping `log(ŷ)` finite.
const PROB_EPS: f64 = 1e-9;

/// Hyper-parameters of [`Lfr`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LfrConfig {
    /// Number of prototypes `K`.
    pub k: usize,
    /// Weight `A_x` of the reconstruction loss.
    pub a_x: f64,
    /// Weight `A_y` of the classification loss.
    pub a_y: f64,
    /// Weight `A_z` of the statistical-parity loss.
    pub a_z: f64,
    /// Maximum L-BFGS iterations per restart.
    pub max_iters: usize,
    /// Number of random restarts (best final loss wins).
    pub n_restarts: usize,
    /// Gradient tolerance of the optimizer.
    pub grad_tol: f64,
    /// RNG seed (restart `r` uses `seed + r`).
    pub seed: u64,
}

impl Default for LfrConfig {
    fn default() -> Self {
        LfrConfig {
            k: 10,
            a_x: 0.01,
            a_y: 1.0,
            a_z: 50.0,
            max_iters: 150,
            n_restarts: 3,
            grad_tol: 1e-5,
            seed: 42,
        }
    }
}

impl LfrConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(self.k >= 1, "k", "must be at least 1")?;
        ensure(
            self.a_x >= 0.0 && self.a_y >= 0.0 && self.a_z >= 0.0,
            "a_x/a_y/a_z",
            "loss weights must be non-negative",
        )?;
        ensure(
            self.a_x > 0.0 || self.a_y > 0.0 || self.a_z > 0.0,
            "a_x/a_y/a_z",
            "at least one loss weight must be positive",
        )?;
        ensure(self.n_restarts >= 1, "n_restarts", "must be at least 1")
    }
}

impl Estimator for LfrConfig {
    type Fitted = Lfr;

    /// Fits LFR on `ds.x` with `ds.y` as binary labels and `ds.group` as
    /// per-record protected-group membership.
    fn fit(&self, ds: &Dataset) -> Result<Lfr, FitError> {
        Lfr::fit(&ds.x, ds.try_labels()?, &ds.group, self)
    }
}

/// A trained LFR model.
///
/// Note the contrast with `ifair-core` prominently discussed in the paper: `transform` and `predict_proba` require the
/// protected-group membership of every record, because each group has its
/// own learned distance weights and the parity term baked the group into the
/// representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lfr {
    prototypes: Matrix,
    w: Vec<f64>,
    alpha_protected: Vec<f64>,
    alpha_unprotected: Vec<f64>,
    config: LfrConfig,
    final_loss: f64,
    converged: bool,
    termination: Termination,
}

impl Lfr {
    /// Fits LFR on `x` (`M x N`) with binary labels `y` and per-record
    /// protected-group membership `group` (1 = protected).
    pub fn fit(x: &Matrix, y: &[f64], group: &[u8], config: &LfrConfig) -> Result<Lfr, FitError> {
        config.validate()?;
        let (m, n) = x.shape();
        if m == 0 || n == 0 {
            return Err(shape_error("empty training matrix"));
        }
        if y.len() != m {
            return Err(shape_error(format!(
                "y has length {} but X has {m} rows",
                y.len()
            )));
        }
        if group.len() != m {
            return Err(shape_error(format!(
                "group has length {} but X has {m} rows",
                group.len()
            )));
        }
        if y.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err(schema_error("labels must be binary 0/1"));
        }
        check_group_labels(group)?;
        let n_protected = group.iter().filter(|&&g| g == 1).count();
        if config.a_z > 0.0 && (n_protected == 0 || n_protected == m) {
            return Err(schema_error("the parity loss needs both groups present"));
        }

        let objective = LfrObjective::new(x, y, group, config);
        let optimizer = Lbfgs::new(LbfgsConfig {
            max_iters: config.max_iters,
            grad_tol: config.grad_tol,
            bounds: Some(objective.bounds()),
            ..Default::default()
        });

        let mut best: Option<ifair_optim::OptimResult> = None;
        for r in 0..config.n_restarts {
            let theta0 = objective.initial_theta(config.seed.wrapping_add(r as u64));
            let result = optimizer.minimize(&objective, theta0);
            if best.as_ref().is_none_or(|b| result.value < b.value) {
                best = Some(result);
            }
        }
        let best = best.expect("n_restarts >= 1");

        let (alpha_unprotected, rest) = best.x.split_at(n);
        let (alpha_protected, rest) = rest.split_at(n);
        let (w, v_flat) = rest.split_at(config.k);
        Ok(Lfr {
            prototypes: Matrix::from_vec(config.k, n, v_flat.to_vec())
                .expect("layout is K*N by construction"),
            w: w.to_vec(),
            alpha_protected: alpha_protected.to_vec(),
            alpha_unprotected: alpha_unprotected.to_vec(),
            config: config.clone(),
            final_loss: best.value,
            converged: best.converged,
            termination: best.termination,
        })
    }

    /// The `? x K` responsibility matrix for `x`, using each record's
    /// group-specific distance weights. Group labels are validated up front:
    /// anything outside `{0, 1}` is a typed error, never silently treated as
    /// "unprotected".
    #[allow(clippy::needless_range_loop)] // i indexes both rows and groups
    pub fn responsibilities(&self, x: &Matrix, group: &[u8]) -> Result<Matrix, FitError> {
        if x.rows() != group.len() {
            return Err(shape_error(format!(
                "group has length {} but X has {} rows",
                group.len(),
                x.rows()
            )));
        }
        if x.cols() != self.prototypes.cols() {
            return Err(shape_error(format!(
                "records have {} features but the model was trained on {}",
                x.cols(),
                self.prototypes.cols()
            )));
        }
        check_group_labels(group)?;
        let k = self.config.k;
        let mut u = Matrix::zeros(x.rows(), k);
        for i in 0..x.rows() {
            let alpha = self.alpha_for(group[i]);
            let xi = x.row(i);
            let mut d = vec![0.0; k];
            for (kk, dk) in d.iter_mut().enumerate() {
                *dk = sq_dist(xi, self.prototypes.row(kk), alpha);
            }
            softmax_neg_into(&d, u.row_mut(i));
        }
        Ok(u)
    }

    /// The reconstructed representation `X̂ = U·V`.
    pub fn transform(&self, x: &Matrix, group: &[u8]) -> Result<Matrix, FitError> {
        Ok(self.responsibilities(x, group)?.matmul(&self.prototypes))
    }

    /// Predicted positive-class probabilities `ŷ = U·w`.
    pub fn predict_proba(&self, x: &Matrix, group: &[u8]) -> Result<Vec<f64>, FitError> {
        self.responsibilities(x, group)?
            .matvec(&self.w)
            .map_err(FitError::from)
    }

    /// Hard 0/1 predictions at threshold 0.5.
    pub fn predict(&self, x: &Matrix, group: &[u8]) -> Result<Vec<f64>, FitError> {
        Ok(self
            .predict_proba(x, group)?
            .into_iter()
            .map(|p| if p > 0.5 { 1.0 } else { 0.0 })
            .collect())
    }

    /// The learned `K x N` prototype matrix.
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Per-prototype label weights `w ∈ [0,1]^K`.
    pub fn label_weights(&self) -> &[f64] {
        &self.w
    }

    /// Final training loss of the winning restart.
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// Whether the winning restart met a convergence tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }

    fn alpha_for(&self, group: u8) -> &[f64] {
        if group == 1 {
            &self.alpha_protected
        } else {
            &self.alpha_unprotected
        }
    }
}

impl Transform for Lfr {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        Lfr::transform(self, &ds.x, &ds.group)
    }
}

impl Predict for Lfr {
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Lfr::predict_proba(self, &ds.x, &ds.group)
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Lfr::predict(self, &ds.x, &ds.group)
    }
}

/// The LFR loss over fixed training data. Parameter layout:
///
/// ```text
/// θ = [ α⁻ (N) | α⁺ (N) | w (K) | v_11..v_KN (K·N) ]
/// ```
pub struct LfrObjective<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    group: &'a [u8],
    m: usize,
    n: usize,
    k: usize,
    a_x: f64,
    a_y: f64,
    a_z: f64,
    n_protected: usize,
}

impl<'a> LfrObjective<'a> {
    /// Builds the objective; shapes are validated by [`Lfr::fit`].
    pub fn new(x: &'a Matrix, y: &'a [f64], group: &'a [u8], config: &LfrConfig) -> Self {
        let (m, n) = x.shape();
        LfrObjective {
            x,
            y,
            group,
            m,
            n,
            k: config.k,
            a_x: config.a_x,
            a_y: config.a_y,
            a_z: config.a_z,
            n_protected: group.iter().filter(|&&g| g == 1).count(),
        }
    }

    /// Box constraints: distance weights non-negative, `w ∈ [0,1]`,
    /// prototypes free.
    pub fn bounds(&self) -> Vec<(f64, f64)> {
        let mut b = Vec::with_capacity(self.dim());
        b.extend(std::iter::repeat_n((0.0, f64::INFINITY), 2 * self.n));
        b.extend(std::iter::repeat_n((0.0, 1.0), self.k));
        b.extend(std::iter::repeat_n(
            (f64::NEG_INFINITY, f64::INFINITY),
            self.k * self.n,
        ));
        b
    }

    /// Uniform `(0,1)` initialization, matching the paper's setup for all
    /// compared methods.
    pub fn initial_theta(&self, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.dim()).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    fn unpack<'t>(&self, theta: &'t [f64]) -> LfrParams<'t> {
        let (alpha_un, rest) = theta.split_at(self.n);
        let (alpha_pr, rest) = rest.split_at(self.n);
        let (w, v) = rest.split_at(self.k);
        LfrParams {
            alpha_un,
            alpha_pr,
            w,
            v,
        }
    }

    fn forward(&self, params: &LfrParams<'_>) -> LfrState {
        let (m, n, k) = (self.m, self.n, self.k);
        let mut u = vec![0.0; m * k];
        let mut xh = vec![0.0; m * n];
        let mut yh = vec![0.0; m];
        for i in 0..m {
            let xi = self.x.row(i);
            let alpha = if self.group[i] == 1 {
                params.alpha_pr
            } else {
                params.alpha_un
            };
            let mut d = vec![0.0; k];
            for (kk, dk) in d.iter_mut().enumerate() {
                *dk = sq_dist(xi, &params.v[kk * n..(kk + 1) * n], alpha);
            }
            let u_row = &mut u[i * k..(i + 1) * k];
            softmax_neg_into(&d, u_row);
            let xh_row = &mut xh[i * n..(i + 1) * n];
            for (kk, &uu) in u_row.iter().enumerate() {
                let vk = &params.v[kk * n..(kk + 1) * n];
                for (o, &vkn) in xh_row.iter_mut().zip(vk) {
                    *o += uu * vkn;
                }
                yh[i] += uu * params.w[kk];
            }
        }
        // Mean responsibilities per group (parity term).
        let mut m_pos = vec![0.0; k];
        let mut m_neg = vec![0.0; k];
        for i in 0..m {
            let dst = if self.group[i] == 1 {
                &mut m_pos
            } else {
                &mut m_neg
            };
            for (acc, &uu) in dst.iter_mut().zip(&u[i * k..(i + 1) * k]) {
                *acc += uu;
            }
        }
        let n_pos = self.n_protected.max(1) as f64;
        let n_neg = (self.m - self.n_protected).max(1) as f64;
        for v in &mut m_pos {
            *v /= n_pos;
        }
        for v in &mut m_neg {
            *v /= n_neg;
        }
        LfrState {
            u,
            xh,
            yh,
            m_pos,
            m_neg,
        }
    }

    fn loss(&self, state: &LfrState) -> f64 {
        let m = self.m as f64;
        let l_x: f64 = self
            .x
            .as_slice()
            .iter()
            .zip(&state.xh)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / m;
        let l_y: f64 = self
            .y
            .iter()
            .zip(&state.yh)
            .map(|(&y, &yh)| {
                let p = yh.clamp(PROB_EPS, 1.0 - PROB_EPS);
                -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
            })
            .sum::<f64>()
            / m;
        let l_z: f64 = state
            .m_pos
            .iter()
            .zip(&state.m_neg)
            .map(|(&a, &b)| (a - b).abs())
            .sum();
        self.a_x * l_x + self.a_y * l_y + self.a_z * l_z
    }
}

struct LfrParams<'t> {
    alpha_un: &'t [f64],
    alpha_pr: &'t [f64],
    w: &'t [f64],
    v: &'t [f64],
}

struct LfrState {
    u: Vec<f64>,
    xh: Vec<f64>,
    yh: Vec<f64>,
    m_pos: Vec<f64>,
    m_neg: Vec<f64>,
}

impl Objective for LfrObjective<'_> {
    fn dim(&self) -> usize {
        2 * self.n + self.k + self.k * self.n
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let params = self.unpack(theta);
        self.loss(&self.forward(&params))
    }

    fn gradient(&self, theta: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(theta, grad);
    }

    fn value_and_gradient(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let (m, n, k) = (self.m, self.n, self.k);
        let params = self.unpack(theta);
        let state = self.forward(&params);
        let loss = self.loss(&state);
        let m_f = m as f64;

        grad.fill(0.0);
        let (g_alpha_un, rest) = grad.split_at_mut(n);
        let (g_alpha_pr, rest) = rest.split_at_mut(n);
        let (g_w, g_v) = rest.split_at_mut(k);

        // Parity subgradient sign per prototype and group scaling.
        let sign: Vec<f64> = state
            .m_pos
            .iter()
            .zip(&state.m_neg)
            .map(|(&a, &b)| {
                if a > b {
                    1.0
                } else if a < b {
                    -1.0
                } else {
                    0.0
                }
            })
            .collect();
        let n_pos = self.n_protected.max(1) as f64;
        let n_neg = (m - self.n_protected).max(1) as f64;

        for i in 0..m {
            let xi = self.x.row(i);
            let protected = self.group[i] == 1;
            let alpha = if protected {
                params.alpha_pr
            } else {
                params.alpha_un
            };
            let g_alpha: &mut [f64] = if protected {
                &mut *g_alpha_pr
            } else {
                &mut *g_alpha_un
            };
            let u_row = &state.u[i * k..(i + 1) * k];

            // ∂L/∂x̂_i.
            let xh_row = &state.xh[i * n..(i + 1) * n];
            let gx: Vec<f64> = xi
                .iter()
                .zip(xh_row)
                .map(|(&orig, &rec)| 2.0 * self.a_x * (rec - orig) / m_f)
                .collect();

            // ∂L/∂ŷ_i (zero when the probability was clipped).
            let yh = state.yh[i];
            let gy = if yh > PROB_EPS && yh < 1.0 - PROB_EPS {
                self.a_y * (yh - self.y[i]) / (yh * (1.0 - yh)) / m_f
            } else {
                0.0
            };

            // c_k = ∂L/∂u_ik.
            let mut c = vec![0.0; k];
            let mut c_dot_u = 0.0;
            for (kk, ck) in c.iter_mut().enumerate() {
                let vk = &params.v[kk * n..(kk + 1) * n];
                let parity = if protected {
                    self.a_z * sign[kk] / n_pos
                } else {
                    -self.a_z * sign[kk] / n_neg
                };
                *ck = dot(&gx, vk) + gy * params.w[kk] + parity;
                c_dot_u += u_row[kk] * *ck;
            }

            for kk in 0..k {
                let uk = u_row[kk];
                // ∂L/∂w_k through ŷ.
                g_w[kk] += gy * uk;
                let vk = &params.v[kk * n..(kk + 1) * n];
                let gv_row = &mut g_v[kk * n..(kk + 1) * n];
                // Direct reconstruction path.
                for (gv, &gxi) in gv_row.iter_mut().zip(&gx) {
                    *gv += uk * gxi;
                }
                // Softmax + distance path (z = −d, d = Σ α_n Δ_n²).
                let gd = -(uk * (c[kk] - c_dot_u));
                if gd == 0.0 {
                    continue;
                }
                for idx in 0..n {
                    let delta = xi[idx] - vk[idx];
                    gv_row[idx] += gd * (-2.0 * alpha[idx].max(0.0) * delta);
                    if alpha[idx] >= 0.0 {
                        g_alpha[idx] += gd * delta * delta;
                    }
                }
            }
        }
        loss
    }
}

/// Weighted squared Euclidean distance (the LFR kernel).
#[inline]
fn sq_dist(x: &[f64], v: &[f64], alpha: &[f64]) -> f64 {
    x.iter()
        .zip(v)
        .zip(alpha)
        .map(|((&a, &b), &w)| {
            let d = a - b;
            w.max(0.0) * d * d
        })
        .sum()
}

/// Writes `softmax(-d)` into `out`, shifted for stability.
#[inline]
fn softmax_neg_into(d: &[f64], out: &mut [f64]) {
    let d_min = d.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut z = 0.0;
    for (o, &dk) in out.iter_mut().zip(d) {
        *o = (d_min - dk).exp();
        z += *o;
    }
    for o in out.iter_mut() {
        *o /= z;
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair_optim::numgrad::check_gradient;

    /// Data where the protected bit shifts the features and the label, so
    /// the parity term has something to repair.
    fn biased_data() -> (Matrix, Vec<f64>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(9);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut group = Vec::new();
        for i in 0..24 {
            let g = (i % 3 == 0) as u8; // 1/3 protected
            let skill: f64 = rng.gen_range(0.0..1.0);
            let shift = if g == 1 { -0.25 } else { 0.0 };
            rows.push(vec![
                skill + rng.gen_range(-0.05..0.05) + shift,
                1.0 - skill + rng.gen_range(-0.05..0.05),
                g as f64,
            ]);
            y.push(if skill + shift > 0.45 { 1.0 } else { 0.0 });
            group.push(g);
        }
        (Matrix::from_rows(rows).unwrap(), y, group)
    }

    fn quick_config() -> LfrConfig {
        LfrConfig {
            k: 4,
            max_iters: 80,
            n_restarts: 2,
            ..Default::default()
        }
    }

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let (x, y, group) = biased_data();
        for (a_x, a_y, a_z) in [
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (1.0, 0.5, 0.0),
            (0.01, 1.0, 2.0),
        ] {
            let config = LfrConfig {
                a_x,
                a_y,
                a_z,
                ..quick_config()
            };
            let obj = LfrObjective::new(&x, &y, &group, &config);
            let theta = obj.initial_theta(17);
            let report = check_gradient(&obj, &theta, 1e-6);
            assert!(
                report.passes(2e-5),
                "a_x={a_x} a_y={a_y} a_z={a_z}: {report:?}"
            );
        }
    }

    #[test]
    fn parity_subgradient_is_directionally_correct() {
        // With only the parity loss active, a step along -grad must not
        // increase the loss (sign subgradient at a differentiable point).
        let (x, y, group) = biased_data();
        let config = LfrConfig {
            a_x: 0.0,
            a_y: 0.0,
            a_z: 1.0,
            ..quick_config()
        };
        let obj = LfrObjective::new(&x, &y, &group, &config);
        let theta = obj.initial_theta(3);
        let mut grad = vec![0.0; obj.dim()];
        let before = obj.value_and_gradient(&theta, &mut grad);
        let stepped: Vec<f64> = theta
            .iter()
            .zip(&grad)
            .map(|(&t, &g)| t - 1e-4 * g)
            .collect();
        assert!(obj.value(&stepped) <= before + 1e-9);
    }

    #[test]
    fn fit_produces_valid_probabilities() {
        let (x, y, group) = biased_data();
        let model = Lfr::fit(&x, &y, &group, &quick_config()).unwrap();
        let proba = model.predict_proba(&x, &group).unwrap();
        assert_eq!(proba.len(), 24);
        assert!(proba.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let preds = model.predict(&x, &group).unwrap();
        assert!(preds.iter().all(|&p| p == 0.0 || p == 1.0));
    }

    #[test]
    fn transform_shape_and_finiteness() {
        let (x, y, group) = biased_data();
        let model = Lfr::fit(&x, &y, &group, &quick_config()).unwrap();
        let t = model.transform(&x, &group).unwrap();
        assert_eq!(t.shape(), x.shape());
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
        let u = model.responsibilities(&x, &group).unwrap();
        for i in 0..u.rows() {
            let s: f64 = u.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn high_parity_weight_reduces_parity_gap() {
        let (x, y, group) = biased_data();
        let no_parity = Lfr::fit(
            &x,
            &y,
            &group,
            &LfrConfig {
                a_z: 0.0,
                ..quick_config()
            },
        )
        .unwrap();
        let strong_parity = Lfr::fit(
            &x,
            &y,
            &group,
            &LfrConfig {
                a_z: 100.0,
                ..quick_config()
            },
        )
        .unwrap();
        let gap = |model: &Lfr| {
            let yh = model.predict_proba(&x, &group).unwrap();
            let mean = |g: u8| {
                let vals: Vec<f64> = yh
                    .iter()
                    .zip(&group)
                    .filter(|(_, &gg)| gg == g)
                    .map(|(&v, _)| v)
                    .collect();
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            (mean(1) - mean(0)).abs()
        };
        assert!(
            gap(&strong_parity) <= gap(&no_parity) + 1e-6,
            "parity gap should not grow with a_z: {} vs {}",
            gap(&strong_parity),
            gap(&no_parity)
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let (x, y, group) = biased_data();
        assert!(Lfr::fit(&x, &y[..5], &group, &quick_config()).is_err());
        assert!(Lfr::fit(&x, &y, &group[..5], &quick_config()).is_err());
        let bad_labels = vec![0.5; 24];
        assert!(Lfr::fit(&x, &bad_labels, &group, &quick_config()).is_err());
        let single_group = vec![0u8; 24];
        assert!(Lfr::fit(&x, &y, &single_group, &quick_config()).is_err());
        assert!(matches!(
            Lfr::fit(
                &x,
                &y,
                &group,
                &LfrConfig {
                    k: 0,
                    ..quick_config()
                }
            ),
            Err(FitError::Config(_))
        ));
    }

    #[test]
    fn out_of_range_group_labels_are_typed_errors() {
        let (x, y, mut group) = biased_data();
        // Fitting with a group label outside {0, 1} must fail up front...
        group[3] = 2;
        let err = Lfr::fit(&x, &y, &group, &quick_config()).unwrap_err();
        assert!(matches!(err, FitError::Data(_)));
        assert!(err.to_string().contains("record 3"), "{err}");

        // ...and so must transform/predict on a model fitted with valid
        // groups (previously label 2 was silently treated as unprotected).
        let (_, _, good_group) = biased_data();
        let model = Lfr::fit(&x, &y, &good_group, &quick_config()).unwrap();
        assert!(model.transform(&x, &group).is_err());
        assert!(model.predict_proba(&x, &group).is_err());
        assert!(model.predict(&x, &group).is_err());
        assert!(model.responsibilities(&x, &group).is_err());
    }

    #[test]
    fn trait_impls_match_inherent_methods() {
        let (x, y, group) = biased_data();
        let ds = Dataset::new(
            x.clone(),
            (0..x.cols()).map(|j| format!("f{j}")).collect(),
            vec![false, false, true],
            Some(y.clone()),
            group.clone(),
        )
        .unwrap();
        let model = LfrConfig::fit(&quick_config(), &ds).unwrap();
        let direct = Lfr::fit(&x, &y, &group, &quick_config()).unwrap();
        assert_eq!(model.prototypes(), direct.prototypes());
        assert_eq!(
            Transform::transform(&model, &ds).unwrap(),
            direct.transform(&x, &group).unwrap()
        );
        assert_eq!(
            Predict::predict_proba(&model, &ds).unwrap(),
            direct.predict_proba(&x, &group).unwrap()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y, group) = biased_data();
        let a = Lfr::fit(&x, &y, &group, &quick_config()).unwrap();
        let b = Lfr::fit(&x, &y, &group, &quick_config()).unwrap();
        assert_eq!(a.prototypes(), b.prototypes());
        assert_eq!(a.label_weights(), b.label_weights());
    }
}
