//! # Baselines for the iFair reproduction
//!
//! Every method the paper's evaluation compares against:
//!
//! * [`lfr`] — LFR, "Learning Fair Representations" (Zemel et al., ICML
//!   2013): prototype-based representations optimizing reconstruction +
//!   classifier accuracy + statistical parity. The state of the art the
//!   paper's classification experiments (Fig. 3, Table III) beat.
//! * [`fair`] — FA\*IR, "A Fair Top-k Ranking Algorithm" (Zehlike et al.,
//!   CIKM 2017): the ranking baseline (Table V) and the post-processing
//!   parity enforcer of Fig. 5, extended with the paper's §V-E fair-score
//!   interpolation.
//! * [`svd_repr`] — truncated-SVD representations on full and masked data
//!   (the SVD / SVD-masked rows of every results table).
//! * [`parity`] — post-hoc statistical-parity thresholds for classifiers,
//!   the §V-F counterpart of applying FA\*IR to rankings.
//!
//! The remaining baselines, *Full Data* and *Masked Data*, need no code
//! here: they are the identity representation on the dataset's feature
//! matrix and on the matrix with protected columns dropped
//! (`Dataset::masked_x` in `ifair-data`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fair;
pub mod lfr;
pub mod parity;
pub mod svd_repr;

pub use fair::{
    adjusted_alpha, binomial_cdf, fail_probability, minimum_protected_table, rerank, satisfies,
    FairConfig, FairRanking, FairScorer,
};
pub use ifair_api::{Estimator, FitError, Predict, Transform};
pub use lfr::{Lfr, LfrConfig, LfrObjective};
pub use parity::{ParityConfig, ParityThresholds};
pub use svd_repr::{SvdConfig, SvdRepresentation};
