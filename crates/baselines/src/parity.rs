//! Post-hoc statistical-parity enforcement for classifiers (§V-F).
//!
//! The paper argues that hard group-fairness constraints, when legally
//! required, should be enforced *after* learning an individually fair
//! representation: "it is fairly straightforward to enhance iFair by
//! post-processing steps to enforce statistical parity ... this requires
//! access to the values of protected attributes". FA\*IR ([`crate::fair`])
//! plays that role for rankings; this module is the classifier counterpart:
//! per-group decision thresholds chosen so both groups' positive rates hit
//! a common target.

use ifair_api::{
    check_group_labels, ensure, schema_error, shape_error, ConfigError, Estimator, FitError,
    Predict,
};
use ifair_data::Dataset;
use serde::{Deserialize, Serialize};

/// Unfitted parity calibrator. As an [`Estimator`] it reads the upstream
/// classifier's scores from the dataset's outcome slot (`ds.y`) and group
/// membership from `ds.group` — post-processors consume predictions, not
/// features.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ParityConfig {
    /// Positive rate to calibrate both groups to; `None` preserves the
    /// overall positive rate at threshold 0.5.
    pub target_rate: Option<f64>,
}

impl ParityConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(r) = self.target_rate {
            ensure(
                (0.0..=1.0).contains(&r),
                "target_rate",
                format!("must be in [0,1], got {r}"),
            )?;
        }
        Ok(())
    }
}

impl Estimator for ParityConfig {
    type Fitted = ParityThresholds;

    fn fit(&self, ds: &Dataset) -> Result<ParityThresholds, FitError> {
        self.validate()?;
        ParityThresholds::fit(ds.try_labels()?, &ds.group, self.target_rate)
    }
}

/// Per-group decision thresholds computed by [`ParityThresholds::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParityThresholds {
    /// Score threshold applied to protected records (group = 1).
    pub protected: f64,
    /// Score threshold applied to unprotected records (group = 0).
    pub unprotected: f64,
    /// The positive rate both groups are calibrated to.
    pub target_rate: f64,
}

impl ParityThresholds {
    /// Chooses per-group thresholds such that each group's positive rate
    /// equals `target_rate` (when `None`, the overall positive rate of
    /// `scores` at threshold 0.5 is used, so the total acceptance volume is
    /// approximately preserved).
    ///
    /// Scores are classifier probabilities or any monotone decision score.
    /// Returns an error when either group is empty.
    pub fn fit(
        scores: &[f64],
        group: &[u8],
        target_rate: Option<f64>,
    ) -> Result<ParityThresholds, FitError> {
        if scores.len() != group.len() {
            return Err(shape_error(format!(
                "scores ({}) and group ({}) lengths differ",
                scores.len(),
                group.len()
            )));
        }
        if scores.is_empty() {
            return Err(shape_error("cannot calibrate on empty data"));
        }
        check_group_labels(group)?;
        let rate = match target_rate {
            Some(r) => {
                ParityConfig {
                    target_rate: Some(r),
                }
                .validate()?;
                r
            }
            None => scores.iter().filter(|&&s| s > 0.5).count() as f64 / scores.len() as f64,
        };
        let of_group = |g: u8| -> Vec<f64> {
            scores
                .iter()
                .zip(group)
                .filter(|(_, &gg)| gg == g)
                .map(|(&s, _)| s)
                .collect()
        };
        let prot = of_group(1);
        let unprot = of_group(0);
        if prot.is_empty() || unprot.is_empty() {
            return Err(schema_error(
                "both groups must be present to calibrate parity",
            ));
        }
        Ok(ParityThresholds {
            protected: rate_threshold(&prot, rate),
            unprotected: rate_threshold(&unprot, rate),
            target_rate: rate,
        })
    }

    /// Applies the thresholds, returning hard 0/1 decisions.
    pub fn apply(&self, scores: &[f64], group: &[u8]) -> Vec<f64> {
        assert_eq!(scores.len(), group.len(), "length mismatch");
        scores
            .iter()
            .zip(group)
            .map(|(&s, &g)| {
                let t = if g == 1 {
                    self.protected
                } else {
                    self.unprotected
                };
                if s > t {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

impl Predict for ParityThresholds {
    /// Post-processors pass scores through unchanged; [`Predict::predict`]
    /// applies the calibrated per-group thresholds.
    fn predict_proba(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        Ok(ds.try_labels()?.to_vec())
    }

    fn predict(&self, ds: &Dataset) -> Result<Vec<f64>, FitError> {
        let scores = ds.try_labels()?;
        if scores.len() != ds.group.len() {
            return Err(shape_error("scores and group lengths differ"));
        }
        check_group_labels(&ds.group)?;
        Ok(self.apply(scores, &ds.group))
    }
}

/// The threshold above which a `rate` fraction of `scores` falls.
fn rate_threshold(scores: &[f64], rate: f64) -> f64 {
    let n_accept = (scores.len() as f64 * rate).round() as usize;
    if n_accept == 0 {
        return f64::INFINITY; // accept nobody
    }
    if n_accept >= scores.len() {
        return f64::NEG_INFINITY; // accept everybody
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    // Threshold strictly between the last accepted and first rejected score.
    let lo = sorted[n_accept];
    let hi = sorted[n_accept - 1];
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Biased scores: protected group systematically scored lower.
    fn biased() -> (Vec<f64>, Vec<u8>) {
        let mut scores = Vec::new();
        let mut group = Vec::new();
        for i in 0..50 {
            let base = i as f64 / 50.0;
            group.push(u8::from(i % 2 == 0));
            scores.push(if i % 2 == 0 { base * 0.6 } else { base });
        }
        (scores, group)
    }

    fn positive_rate(preds: &[f64], group: &[u8], g: u8) -> f64 {
        let members: Vec<f64> = preds
            .iter()
            .zip(group)
            .filter(|(_, &gg)| gg == g)
            .map(|(&p, _)| p)
            .collect();
        members.iter().sum::<f64>() / members.len() as f64
    }

    #[test]
    fn equalizes_group_positive_rates() {
        let (scores, group) = biased();
        let naive: Vec<f64> = scores
            .iter()
            .map(|&s| if s > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let gap_naive = (positive_rate(&naive, &group, 1) - positive_rate(&naive, &group, 0)).abs();

        let t = ParityThresholds::fit(&scores, &group, None).unwrap();
        let fair = t.apply(&scores, &group);
        let gap_fair = (positive_rate(&fair, &group, 1) - positive_rate(&fair, &group, 0)).abs();
        assert!(
            gap_fair < gap_naive,
            "calibration did not shrink the gap: {gap_fair} vs {gap_naive}"
        );
        assert!(gap_fair < 0.05, "residual gap {gap_fair}");
    }

    #[test]
    fn respects_explicit_target_rate() {
        let (scores, group) = biased();
        let t = ParityThresholds::fit(&scores, &group, Some(0.2)).unwrap();
        let preds = t.apply(&scores, &group);
        for g in [0u8, 1] {
            let rate = positive_rate(&preds, &group, g);
            assert!((rate - 0.2).abs() <= 0.05, "group {g} rate {rate}");
        }
    }

    #[test]
    fn extreme_rates_accept_none_or_all() {
        let (scores, group) = biased();
        let none = ParityThresholds::fit(&scores, &group, Some(0.0)).unwrap();
        assert!(none.apply(&scores, &group).iter().all(|&p| p == 0.0));
        let all = ParityThresholds::fit(&scores, &group, Some(1.0)).unwrap();
        assert!(all.apply(&scores, &group).iter().all(|&p| p == 1.0));
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(ParityThresholds::fit(&[], &[], None).is_err());
        assert!(ParityThresholds::fit(&[0.5], &[1], None).is_err()); // one group
        assert!(ParityThresholds::fit(&[0.5, 0.4], &[1], None).is_err()); // lengths
        assert!(ParityThresholds::fit(&[0.5, 0.4], &[1, 0], Some(1.5)).is_err());
    }

    #[test]
    fn out_of_range_group_labels_are_typed_errors() {
        // Label 2 would otherwise be silently calibrated/thresholded as
        // "unprotected" — both fit and the trait predict reject it.
        let (scores, mut group) = biased();
        group[4] = 2;
        let err = ParityThresholds::fit(&scores, &group, None).unwrap_err();
        assert!(err.to_string().contains("record 4"), "{err}");

        let (_, good_group) = biased();
        let t = ParityThresholds::fit(&scores, &good_group, None).unwrap();
        let ds = ifair_data::Dataset::new(
            ifair_linalg::Matrix::zeros(scores.len(), 1),
            vec!["score-source".into()],
            vec![false],
            Some(scores),
            group,
        )
        .unwrap();
        assert!(Predict::predict(&t, &ds).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (scores, group) = biased();
        let t = ParityThresholds::fit(&scores, &group, None).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: ParityThresholds = serde_json::from_str(&json).unwrap();
        assert_eq!(back.apply(&scores, &group), t.apply(&scores, &group));
    }
}
