//! SVD / SVD-masked baseline representations (§V-B of the paper).
//!
//! The paper's simplest learned-representation baselines reduce the data to
//! its leading `k` right singular vectors: the *SVD* variant fits on the
//! full feature matrix, the *SVD-masked* variant on the matrix with
//! protected columns dropped. Both lose the protected attribute only to the
//! extent it is uncorrelated with the leading components — which is exactly
//! why they underperform iFair on individual fairness (Fig. 3 / Table V).

use ifair_api::{ensure, shape_error, ConfigError, Estimator, FitError, Transform};
use ifair_data::Dataset;
use ifair_linalg::{Matrix, Svd};
use serde::{Deserialize, Serialize};

/// Configuration of the truncated-SVD representation — the unfitted
/// estimator of the SVD / SVD-masked baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvdConfig {
    /// Truncation rank `k` (clamped to the numerical rank at fit time).
    pub k: usize,
    /// When true, fit (and transform) on the dataset's masked features —
    /// the *SVD-masked* rows of the paper's tables.
    pub masked: bool,
}

impl SvdConfig {
    /// Rank-`k` representation on the full feature matrix.
    pub fn new(k: usize) -> SvdConfig {
        SvdConfig { k, masked: false }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(self.k >= 1, "k", "SVD representation needs k >= 1")
    }
}

impl Estimator for SvdConfig {
    type Fitted = SvdRepresentation;

    fn fit(&self, ds: &Dataset) -> Result<SvdRepresentation, FitError> {
        self.validate()?;
        let mut repr = if self.masked {
            SvdRepresentation::fit(&ds.masked_x(), self.k)?
        } else {
            SvdRepresentation::fit(&ds.x, self.k)?
        };
        repr.masked = self.masked;
        Ok(repr)
    }
}

/// A fitted truncated-SVD representation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvdRepresentation {
    /// `N x k` matrix of leading right singular vectors.
    components: Matrix,
    /// Leading singular values (length `k`).
    singular_values: Vec<f64>,
    /// Whether fitting consumed the masked feature view (replayed by the
    /// trait-level transform so train/test see the same columns).
    masked: bool,
}

impl SvdRepresentation {
    /// Fits a rank-`k` representation on `x` (`M x N`); `k` is clamped to
    /// the numerical rank.
    pub fn fit(x: &Matrix, k: usize) -> Result<SvdRepresentation, FitError> {
        SvdConfig::new(k).validate()?;
        let svd = Svd::decompose(x)?;
        let (_, s, v) = svd.truncate(k);
        Ok(SvdRepresentation {
            components: v,
            singular_values: s,
            masked: false,
        })
    }

    /// Projects records onto the leading components: `X · V_k` (`? x k`).
    ///
    /// # Panics
    /// Panics if `x.cols()` differs from the fitted width.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.components.rows(),
            "record width differs from the fitted data"
        );
        x.matmul(&self.components)
    }

    /// Maps records into the rank-`k` subspace but back in the input space:
    /// `X · V_k · V_kᵀ` (`? x N`). Useful when downstream code expects the
    /// original feature width.
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.transform(x).matmul(&self.components.transpose())
    }

    /// The `N x k` component matrix `V_k`.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// The leading singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Rank of the representation (`k` after clamping).
    pub fn rank(&self) -> usize {
        self.components.cols()
    }
}

impl Transform for SvdRepresentation {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        let masked_x;
        let x = if self.masked {
            masked_x = ds.masked_x();
            &masked_x
        } else {
            &ds.x
        };
        if x.cols() != self.components.rows() {
            return Err(shape_error(format!(
                "dataset has {} features but the SVD was fitted on {}",
                x.cols(),
                self.components.rows()
            )));
        }
        Ok(x.matmul(&self.components))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_matrix() -> Matrix {
        // Rank-2 matrix: rows are combinations of two basis patterns.
        let a = [1.0, 0.0, 1.0, 0.0, 1.0];
        let b = [0.0, 2.0, 0.0, 2.0, 0.0];
        let rows = (0..12)
            .map(|i| {
                let (ca, cb) = ((i % 3) as f64, (i % 4) as f64);
                a.iter().zip(&b).map(|(&x, &y)| ca * x + cb * y).collect()
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn transform_has_requested_rank() {
        let x = low_rank_matrix();
        let repr = SvdRepresentation::fit(&x, 2).unwrap();
        assert_eq!(repr.rank(), 2);
        assert_eq!(repr.transform(&x).shape(), (12, 2));
        assert_eq!(repr.reconstruct(&x).shape(), (12, 5));
    }

    #[test]
    fn rank2_matrix_reconstructs_exactly_at_k2() {
        let x = low_rank_matrix();
        let repr = SvdRepresentation::fit(&x, 2).unwrap();
        let err = x.sub(&repr.reconstruct(&x)).unwrap().max_abs();
        assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn reconstruction_error_monotone_in_rank() {
        let x = Matrix::from_fn(10, 6, |i, j| ((i * 7 + j * 3) % 11) as f64 / 11.0);
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let repr = SvdRepresentation::fit(&x, k).unwrap();
            let diff = x.sub(&repr.reconstruct(&x)).unwrap();
            let err = diff.frobenius_norm();
            assert!(err <= prev + 1e-9, "k={k}: {err} > {prev}");
            prev = err;
        }
    }

    #[test]
    fn k_clamped_to_rank() {
        let x = low_rank_matrix();
        let repr = SvdRepresentation::fit(&x, 100).unwrap();
        assert!(repr.rank() <= 5);
        assert!(SvdRepresentation::fit(&x, 0).is_err());
    }

    #[test]
    fn transform_accepts_unseen_records() {
        let x = low_rank_matrix();
        let repr = SvdRepresentation::fit(&x, 2).unwrap();
        let unseen = Matrix::from_rows(vec![vec![1.0, 2.0, 1.0, 2.0, 1.0]]).unwrap();
        let t = repr.transform(&unseen);
        assert_eq!(t.shape(), (1, 2));
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "record width")]
    fn transform_panics_on_width_mismatch() {
        let repr = SvdRepresentation::fit(&low_rank_matrix(), 2).unwrap();
        repr.transform(&Matrix::zeros(1, 3));
    }
}
