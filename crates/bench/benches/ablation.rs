//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! fairness-pair policy (exact vs anchored vs subsampled), the optimizer
//! (L-BFGS vs Adam vs plain GD on the identical objective), the Minkowski
//! exponent, and the fairness-distance variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifair_core::{FairnessDistance, FairnessPairs, IFair, IFairConfig, IFairObjective};
use ifair_linalg::Matrix;
use ifair_optim::{Adam, AdamConfig, GradientDescent, Lbfgs, LbfgsConfig, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn data(m: usize, n: usize) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    (x, protected)
}

fn base_config() -> IFairConfig {
    IFairConfig {
        k: 6,
        max_iters: 15,
        n_restarts: 1,
        seed: 3,
        ..Default::default()
    }
}

/// Exact O(M²) pairs vs the anchored and subsampled approximations the
/// paper alludes to ("we avoid the quadratic number of comparisons").
fn bench_fairness_pairs(c: &mut Criterion) {
    let (x, protected) = data(150, 10);
    let mut group = c.benchmark_group("ablation/fairness_pairs_m150");
    group.sample_size(10);
    for (label, pairs) in [
        ("exact", FairnessPairs::Exact),
        ("anchored20", FairnessPairs::Anchored { n_anchors: 20 }),
        ("subsampled1000", FairnessPairs::Subsampled { n_pairs: 1000 }),
    ] {
        let config = IFairConfig {
            fairness_pairs: pairs,
            ..base_config()
        };
        group.bench_function(label, |b| {
            b.iter(|| IFair::fit(black_box(&x), &protected, &config).unwrap());
        });
    }
    group.finish();
}

/// The same objective minimized by the paper's L-BFGS vs first-order
/// alternatives, at a fixed 30-iteration budget.
fn bench_optimizers(c: &mut Criterion) {
    let (x, protected) = data(80, 10);
    let config = IFairConfig {
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        ..base_config()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let mut rng = StdRng::seed_from_u64(4);
    let theta0: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();

    let mut group = c.benchmark_group("ablation/optimizer_30iters");
    group.sample_size(10);
    group.bench_function("lbfgs", |b| {
        let opt = Lbfgs::new(LbfgsConfig {
            max_iters: 30,
            grad_tol: 0.0,
            f_tol: 0.0,
            ..Default::default()
        });
        b.iter(|| opt.minimize(&obj, black_box(theta0.clone())));
    });
    group.bench_function("adam", |b| {
        let opt = Adam::new(AdamConfig {
            max_iters: 30,
            grad_tol: 0.0,
            ..Default::default()
        });
        b.iter(|| opt.minimize(&obj, black_box(theta0.clone())));
    });
    group.bench_function("gradient_descent", |b| {
        let opt = GradientDescent {
            max_iters: 30,
            grad_tol: 0.0,
        };
        b.iter(|| opt.minimize(&obj, black_box(theta0.clone())));
    });
    group.finish();
}

/// Objective evaluation cost across Minkowski exponents (p = 2 has a fast
/// path; p ≠ 2 pays `powf`).
fn bench_minkowski_p(c: &mut Criterion) {
    let (x, protected) = data(100, 12);
    let mut group = c.benchmark_group("ablation/minkowski_p");
    for p in [1.0, 2.0, 3.0] {
        let config = IFairConfig {
            p,
            fairness_pairs: FairnessPairs::Exact,
            ..base_config()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let mut rng = StdRng::seed_from_u64(5);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut grad = vec![0.0; obj.dim()];
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| obj.value_and_gradient(black_box(&theta), &mut grad));
        });
    }
    group.finish();
}

/// Unweighted Euclidean vs learned weighted metric inside the fairness loss.
fn bench_fairness_distance(c: &mut Criterion) {
    let (x, protected) = data(100, 12);
    let mut group = c.benchmark_group("ablation/fairness_distance");
    for (label, fd) in [
        ("unweighted", FairnessDistance::Unweighted),
        ("weighted", FairnessDistance::Weighted),
    ] {
        let config = IFairConfig {
            fairness_distance: fd,
            fairness_pairs: FairnessPairs::Exact,
            ..base_config()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let mut rng = StdRng::seed_from_u64(6);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut grad = vec![0.0; obj.dim()];
        group.bench_function(label, |b| {
            b.iter(|| obj.value_and_gradient(black_box(&theta), &mut grad));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fairness_pairs,
    bench_optimizers,
    bench_minkowski_p,
    bench_fairness_distance
);
criterion_main!(benches);
