//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! fairness-pair policy (exact vs anchored vs subsampled), the optimizer
//! (L-BFGS vs Adam vs plain GD on the identical objective), the Minkowski
//! exponent, and the fairness-distance variant.
//!
//! Run with `cargo bench -p ifair-bench --bench ablation`.

use ifair_bench::timing::{bench, table_header};
use ifair_core::{FairnessDistance, FairnessPairs, IFair, IFairConfig, IFairObjective};
use ifair_linalg::Matrix;
use ifair_optim::{Adam, AdamConfig, GradientDescent, Lbfgs, LbfgsConfig, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn data(m: usize, n: usize) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    (x, protected)
}

fn base_config() -> IFairConfig {
    IFairConfig {
        k: 6,
        max_iters: 15,
        n_restarts: 1,
        seed: 3,
        ..Default::default()
    }
}

/// Exact O(M²) pairs vs the anchored and subsampled approximations the
/// paper alludes to ("we avoid the quadratic number of comparisons").
fn bench_fairness_pairs() {
    let (x, protected) = data(150, 10);
    table_header("fairness-pair policy, M = 150");
    for (label, pairs) in [
        ("exact", FairnessPairs::Exact),
        ("anchored20", FairnessPairs::Anchored { n_anchors: 20 }),
        (
            "subsampled1000",
            FairnessPairs::Subsampled { n_pairs: 1000 },
        ),
    ] {
        let config = IFairConfig {
            fairness_pairs: pairs,
            ..base_config()
        };
        bench(&format!("fit/{label}"), 1, 5, || {
            IFair::fit(black_box(&x), &protected, &config).unwrap()
        });
    }
}

/// The same objective minimized by the paper's L-BFGS vs first-order
/// alternatives, at a fixed 30-iteration budget.
fn bench_optimizers() {
    let (x, protected) = data(80, 10);
    let config = IFairConfig {
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        ..base_config()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let mut rng = StdRng::seed_from_u64(4);
    let theta0: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();

    table_header("optimizer at a 30-iteration budget");
    let lbfgs = Lbfgs::new(LbfgsConfig {
        max_iters: 30,
        grad_tol: 0.0,
        f_tol: 0.0,
        ..Default::default()
    });
    bench("lbfgs", 1, 5, || {
        lbfgs.minimize(&obj, black_box(theta0.clone()))
    });
    let adam = Adam::new(AdamConfig {
        max_iters: 30,
        grad_tol: 0.0,
        ..Default::default()
    });
    bench("adam", 1, 5, || {
        adam.minimize(&obj, black_box(theta0.clone()))
    });
    let gd = GradientDescent {
        max_iters: 30,
        grad_tol: 0.0,
    };
    bench("gradient_descent", 1, 5, || {
        gd.minimize(&obj, black_box(theta0.clone()))
    });
}

/// Objective evaluation cost across Minkowski exponents (p = 2 has a fast
/// path; p ≠ 2 pays `powf`).
fn bench_minkowski_p() {
    let (x, protected) = data(100, 12);
    table_header("Minkowski exponent, M = 100, exact pairs");
    for p in [1.0, 2.0, 3.0] {
        let config = IFairConfig {
            p,
            fairness_pairs: FairnessPairs::Exact,
            ..base_config()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let mut rng = StdRng::seed_from_u64(5);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut grad = vec![0.0; obj.dim()];
        bench(&format!("value_and_gradient/p{p}"), 2, 10, || {
            obj.value_and_gradient(black_box(&theta), &mut grad)
        });
    }
}

/// Unweighted Euclidean vs learned weighted metric inside the fairness loss.
fn bench_fairness_distance() {
    let (x, protected) = data(100, 12);
    table_header("fairness distance, M = 100, exact pairs");
    for (label, fd) in [
        ("unweighted", FairnessDistance::Unweighted),
        ("weighted", FairnessDistance::Weighted),
    ] {
        let config = IFairConfig {
            fairness_distance: fd,
            fairness_pairs: FairnessPairs::Exact,
            ..base_config()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let mut rng = StdRng::seed_from_u64(6);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut grad = vec![0.0; obj.dim()];
        bench(&format!("value_and_gradient/{label}"), 2, 10, || {
            obj.value_and_gradient(black_box(&theta), &mut grad)
        });
    }
}

fn main() {
    println!("# ablation benchmarks");
    bench_fairness_pairs();
    bench_optimizers();
    bench_minkowski_p();
    bench_fairness_distance();
}
