//! Micro-benchmarks for the baseline implementations: SVD, FA\*IR's table
//! construction and re-ranking, LFR training, and the downstream predictive
//! models.
//!
//! Run with `cargo bench -p ifair-bench --bench baselines`.

use ifair_baselines::{
    adjusted_alpha, minimum_protected_table, rerank, FairConfig, Lfr, LfrConfig, SvdRepresentation,
};
use ifair_bench::timing::{bench, table_header};
use ifair_linalg::{Matrix, Svd};
use ifair_models::{LogisticRegression, RidgeRegression};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0))
}

fn bench_svd() {
    let x = random_matrix(120, 30, 3);
    table_header("SVD");
    bench("svd/decompose_120x30", 1, 5, || {
        Svd::decompose(black_box(&x)).unwrap()
    });
    let repr = SvdRepresentation::fit(&x, 10).unwrap();
    let big = random_matrix(2000, 30, 4);
    bench("svd/transform_2000x30_k10", 1, 5, || {
        repr.transform(black_box(&big))
    });
}

fn bench_fair() {
    table_header("FA*IR");
    bench("fair/mtable_k100", 2, 20, || {
        minimum_protected_table(black_box(100), 0.5, 0.1)
    });
    bench("fair/adjusted_alpha_k40", 1, 5, || {
        adjusted_alpha(black_box(40), 0.5, 0.1)
    });
    let mut rng = StdRng::seed_from_u64(9);
    let scores: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
    let protected: Vec<u8> = (0..500).map(|_| u8::from(rng.gen_bool(0.4))).collect();
    let config = FairConfig::default();
    bench("fair/rerank_500_top100", 2, 20, || {
        rerank(black_box(&scores), &protected, 100, &config)
    });
}

fn bench_lfr() {
    let x = random_matrix(100, 10, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let y: Vec<f64> = (0..100).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    let group: Vec<u8> = (0..100).map(|_| u8::from(rng.gen_bool(0.3))).collect();
    let config = LfrConfig {
        k: 5,
        max_iters: 20,
        n_restarts: 1,
        ..Default::default()
    };
    table_header("LFR");
    bench("lfr/fit_100x10_k5", 1, 5, || {
        Lfr::fit(black_box(&x), &y, &group, &config).unwrap()
    });
}

fn bench_models() {
    let x = random_matrix(300, 20, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let y_cls: Vec<f64> = (0..300).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    let y_reg: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
    table_header("predictive models");
    bench("logreg_fit_300x20", 1, 10, || {
        LogisticRegression::fit_default(black_box(&x), &y_cls)
    });
    bench("ridge_fit_300x20", 1, 10, || {
        RidgeRegression::fit(black_box(&x), &y_reg, 1e-6).unwrap()
    });
}

fn main() {
    println!("# baseline benchmarks");
    bench_svd();
    bench_fair();
    bench_lfr();
    bench_models();
}
