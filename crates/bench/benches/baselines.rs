//! Criterion micro-benchmarks for the baseline implementations: SVD,
//! FA\*IR's table construction and re-ranking, LFR training, and the
//! downstream predictive models.

use criterion::{criterion_group, criterion_main, Criterion};
use ifair_baselines::{adjusted_alpha, minimum_protected_table, rerank, FairConfig, Lfr, LfrConfig, SvdRepresentation};
use ifair_linalg::{Matrix, Svd};
use ifair_models::{LogisticRegression, RidgeRegression};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0))
}

fn bench_svd(c: &mut Criterion) {
    let x = random_matrix(120, 30, 3);
    c.bench_function("svd/decompose_120x30", |b| {
        b.iter(|| Svd::decompose(black_box(&x)).unwrap());
    });
    let repr = SvdRepresentation::fit(&x, 10).unwrap();
    let big = random_matrix(2000, 30, 4);
    c.bench_function("svd/transform_2000x30_k10", |b| {
        b.iter(|| repr.transform(black_box(&big)));
    });
}

fn bench_fair(c: &mut Criterion) {
    c.bench_function("fair/mtable_k100", |b| {
        b.iter(|| minimum_protected_table(black_box(100), 0.5, 0.1));
    });
    c.bench_function("fair/adjusted_alpha_k40", |b| {
        b.iter(|| adjusted_alpha(black_box(40), 0.5, 0.1));
    });
    let mut rng = StdRng::seed_from_u64(9);
    let scores: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
    let protected: Vec<u8> = (0..500).map(|_| u8::from(rng.gen_bool(0.4))).collect();
    let config = FairConfig::default();
    c.bench_function("fair/rerank_500_top100", |b| {
        b.iter(|| rerank(black_box(&scores), &protected, 100, &config));
    });
}

fn bench_lfr(c: &mut Criterion) {
    let x = random_matrix(100, 10, 5);
    let mut rng = StdRng::seed_from_u64(6);
    let y: Vec<f64> = (0..100).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    let group: Vec<u8> = (0..100).map(|_| u8::from(rng.gen_bool(0.3))).collect();
    let config = LfrConfig {
        k: 5,
        max_iters: 20,
        n_restarts: 1,
        ..Default::default()
    };
    let mut bench = c.benchmark_group("lfr");
    bench.sample_size(10);
    bench.bench_function("fit_100x10_k5", |b| {
        b.iter(|| Lfr::fit(black_box(&x), &y, &group, &config).unwrap());
    });
    bench.finish();
}

fn bench_models(c: &mut Criterion) {
    let x = random_matrix(300, 20, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let y_cls: Vec<f64> = (0..300).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    let y_reg: Vec<f64> = (0..300).map(|_| rng.gen_range(0.0..1.0)).collect();
    let mut group = c.benchmark_group("models");
    group.sample_size(20);
    group.bench_function("logreg_fit_300x20", |b| {
        b.iter(|| LogisticRegression::fit_default(black_box(&x), &y_cls));
    });
    group.bench_function("ridge_fit_300x20", |b| {
        b.iter(|| RidgeRegression::fit(black_box(&x), &y_reg, 1e-6).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_svd, bench_fair, bench_lfr, bench_models);
criterion_main!(benches);
