//! Certification bench: certified fraction vs the empirical consistency
//! estimate it lower-bounds, plus `certify_rows` throughput.
//!
//! For every (ε, δ) grid point the interval-bound engine reports the
//! fraction of records whose certified output displacement is ≤ δ. The
//! empirical column estimates the same quantity by sampling: a record
//! counts as *empirically consistent* when none of its seeded ε-box
//! perturbations (corners included) moves its representation farther than
//! δ. Soundness means certified ≤ empirical at every grid point — a single
//! inversion is a bug in the engine, so this bench hard-asserts it — and
//! usefulness means the certified fraction is nonzero somewhere on the
//! grid, which is asserted too.
//!
//! `IFAIR_BENCH_SMOKE=1` shrinks sizes for CI; `IFAIR_BENCH_JSON=1` writes
//! `BENCH_certification.json` for the perf-trajectory delta table.

use ifair_bench::timing::{bench, fmt_duration, table_header, BenchReport};
use ifair_core::par::{available_threads, WorkerPool};
use ifair_core::{IFair, IFairConfig};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// ε grid: from "measurement noise" to "a visible chunk of the unit cube".
const EPS_GRID: [f64; 3] = [0.01, 0.05, 0.15];

/// δ grid: representation-space consistency thresholds.
const DELTA_GRID: [f64; 4] = [0.05, 0.1, 0.25, 0.5];

fn main() {
    let smoke = std::env::var_os("IFAIR_BENCH_SMOKE").is_some();
    let (n, samples, warmup, iters) = if smoke {
        (64, 64, 1, 5)
    } else {
        (256, 512, 3, 20)
    };

    let x = bench_rows(n);
    let protected = vec![false, false, true];
    let config = IFairConfig {
        k: 4,
        max_iters: 40,
        n_restarts: 1,
        ..Default::default()
    };
    let model = IFair::fit(&x, &protected, &config).expect("bench model fits");

    let mut report = BenchReport::new("certification", available_threads(), n);

    certified_vs_empirical(&model, &x, samples);
    certify_timing(&mut report, &model, &x, warmup, iters);

    if let Some(path) = report.write_if_enabled().expect("bench JSON writes") {
        println!("\nwrote {path}");
    }
}

/// Deterministic bench data: two informative unit-interval features plus a
/// protected bit, same shape as the serving bench's fixture.
fn bench_rows(n: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            vec![
                t,
                (1.0 - t) * 0.7 + 0.3 * ((i * 13 % 7) as f64 / 7.0),
                (i % 2) as f64,
            ]
        })
        .collect();
    Matrix::from_rows(rows).expect("rectangular")
}

/// The headline table: certified fraction vs the sampled estimate, with
/// the soundness (certified ≤ empirical) and non-vacuity (certified > 0
/// somewhere) assertions from the acceptance criteria.
fn certified_vs_empirical(model: &IFair, x: &Matrix, samples: usize) {
    let pool = WorkerPool::new(available_threads());
    let grid = model
        .certify_dataset(x, &EPS_GRID, &DELTA_GRID, Some(&pool))
        .expect("bench dataset certifies");

    println!(
        "\n### certified fraction vs empirical consistency (n={}, {samples} samples/record)\n",
        x.rows()
    );
    println!("| eps | delta | certified | empirical | sound |");
    println!("|-----|-------|-----------|-----------|-------|");

    let mut any_certified = false;
    for (i, &eps) in EPS_GRID.iter().enumerate() {
        let sampled_max = sampled_max_displacement(model, x, eps, samples, 0x5eed_0000 + i as u64);
        for (j, &delta) in DELTA_GRID.iter().enumerate() {
            let certified = grid.fraction(i, j);
            let empirical = sampled_max.iter().filter(|&&d| d <= delta).count() as f64
                / sampled_max.len() as f64;
            assert!(
                certified <= empirical,
                "SOUNDNESS INVERSION at (eps={eps}, delta={delta}): \
                 certified fraction {certified} exceeds empirical estimate {empirical}"
            );
            any_certified = any_certified || certified > 0.0;
            println!(
                "| {eps} | {delta} | {certified:.4} | {empirical:.4} | {} |",
                certified <= empirical
            );
        }
    }
    assert!(
        any_certified,
        "vacuous grid: certified fraction is zero at every (eps, delta) point"
    );
}

/// Per-record maximum sampled L2 displacement under the ε box: box corners
/// first (the extremes interval arithmetic must cover), then seeded
/// uniform fill.
fn sampled_max_displacement(
    model: &IFair,
    x: &Matrix,
    eps: f64,
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    let base = model.transform(x);
    let mut rng = StdRng::seed_from_u64(seed);
    let n_dims = x.cols();
    let mut out = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let center: Vec<f64> = (0..n_dims).map(|c| x.get(r, c)).collect();
        let mut perturbed: Vec<Vec<f64>> = Vec::with_capacity(samples + (1 << n_dims));
        for corner in 0..(1usize << n_dims) {
            perturbed.push(
                center
                    .iter()
                    .enumerate()
                    .map(|(c, &v)| {
                        if corner >> c & 1 == 1 {
                            v + eps
                        } else {
                            v - eps
                        }
                    })
                    .collect(),
            );
        }
        for _ in 0..samples {
            perturbed.push(
                center
                    .iter()
                    .map(|&v| v + rng.gen_range(-eps..eps))
                    .collect(),
            );
        }
        let images = model.transform(&Matrix::from_rows(perturbed).expect("rectangular"));
        let worst = (0..images.rows())
            .map(|s| {
                (0..images.cols())
                    .map(|c| {
                        let d = images.get(s, c) - base.get(r, c);
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0f64, f64::max);
        out.push(worst);
    }
    out
}

/// `certify_rows` throughput, serial and pooled, at the middle grid ε.
fn certify_timing(
    report: &mut BenchReport,
    model: &IFair,
    x: &Matrix,
    warmup: usize,
    iters: usize,
) {
    let eps = EPS_GRID[1];
    table_header(&format!("certify_rows latency (n={}, eps={eps})", x.rows()));
    let serial = bench(
        &format!("certify/serial/n{}", x.rows()),
        warmup,
        iters,
        || {
            model
                .certify_rows(x, eps, None)
                .expect("bench rows certify")
                .len()
        },
    );
    report.push(&serial);
    for threads in [2usize, 4] {
        let pool = WorkerPool::new(threads);
        let m = bench(
            &format!("certify/t{threads}/n{}", x.rows()),
            warmup,
            iters,
            || {
                model
                    .certify_rows(x, eps, Some(&pool))
                    .expect("bench rows certify")
                    .len()
            },
        );
        report.push(&m);
    }
    println!(
        "\nserial median per record: {}",
        fmt_duration(serial.median / x.rows() as u32)
    );
}
