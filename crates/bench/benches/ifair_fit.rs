//! Criterion micro-benchmarks: iFair training and transform scaling in the
//! three problem dimensions (records M, attributes N, prototypes K).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifair_core::{FairnessPairs, IFair, IFairConfig};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_data(m: usize, n: usize, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    (x, protected)
}

fn fit_config(k: usize) -> IFairConfig {
    IFairConfig {
        k,
        max_iters: 20,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        seed: 1,
        ..Default::default()
    }
}

fn bench_fit_scaling_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifair_fit/records");
    group.sample_size(10);
    for m in [50usize, 100, 200] {
        let (x, protected) = random_data(m, 10, 7);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| IFair::fit(black_box(&x), &protected, &fit_config(5)).unwrap());
        });
    }
    group.finish();
}

fn bench_fit_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifair_fit/attributes");
    group.sample_size(10);
    for n in [5usize, 20, 50] {
        let (x, protected) = random_data(100, n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| IFair::fit(black_box(&x), &protected, &fit_config(5)).unwrap());
        });
    }
    group.finish();
}

fn bench_fit_scaling_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("ifair_fit/prototypes");
    group.sample_size(10);
    let (x, protected) = random_data(100, 10, 7);
    for k in [2usize, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| IFair::fit(black_box(&x), &protected, &fit_config(k)).unwrap());
        });
    }
    group.finish();
}

fn bench_transform_throughput(c: &mut Criterion) {
    let (x, protected) = random_data(100, 20, 7);
    let model = IFair::fit(&x, &protected, &fit_config(10)).unwrap();
    let (big, _) = random_data(2000, 20, 9);
    c.bench_function("ifair_transform/2000x20", |b| {
        b.iter(|| model.transform(black_box(&big)));
    });
}

criterion_group!(
    benches,
    bench_fit_scaling_m,
    bench_fit_scaling_n,
    bench_fit_scaling_k,
    bench_transform_throughput
);
criterion_main!(benches);
