//! Micro-benchmarks: iFair training and transform scaling in the three
//! problem dimensions (records M, attributes N, prototypes K).
//!
//! Run with `cargo bench -p ifair-bench --bench ifair_fit`.

use ifair_bench::timing::{bench, table_header};
use ifair_core::{FairnessPairs, IFair, IFairConfig};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_data(m: usize, n: usize, seed: u64) -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    (x, protected)
}

fn fit_config(k: usize) -> IFairConfig {
    IFairConfig {
        k,
        max_iters: 20,
        n_restarts: 1,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        seed: 1,
        ..Default::default()
    }
}

fn bench_fit_scaling_m() {
    table_header("fit scaling in records M (N = 10, K = 5)");
    for m in [50usize, 100, 200] {
        let (x, protected) = random_data(m, 10, 7);
        bench(&format!("fit/m{m}"), 1, 5, || {
            IFair::fit(black_box(&x), &protected, &fit_config(5)).unwrap()
        });
    }
}

fn bench_fit_scaling_n() {
    table_header("fit scaling in attributes N (M = 100, K = 5)");
    for n in [5usize, 20, 50] {
        let (x, protected) = random_data(100, n, 7);
        bench(&format!("fit/n{n}"), 1, 5, || {
            IFair::fit(black_box(&x), &protected, &fit_config(5)).unwrap()
        });
    }
}

fn bench_fit_scaling_k() {
    table_header("fit scaling in prototypes K (M = 100, N = 10)");
    let (x, protected) = random_data(100, 10, 7);
    for k in [2usize, 5, 10, 20] {
        bench(&format!("fit/k{k}"), 1, 5, || {
            IFair::fit(black_box(&x), &protected, &fit_config(k)).unwrap()
        });
    }
}

fn bench_transform_throughput() {
    let (x, protected) = random_data(100, 20, 7);
    let model = IFair::fit(&x, &protected, &fit_config(10)).unwrap();
    let (big, _) = random_data(2000, 20, 9);
    table_header("transform throughput");
    bench("transform/2000x20", 1, 10, || {
        model.transform(black_box(&big))
    });
}

fn main() {
    println!("# iFair fit benchmarks");
    bench_fit_scaling_m();
    bench_fit_scaling_n();
    bench_fit_scaling_k();
    bench_transform_throughput();
}
