//! Criterion micro-benchmarks for the numerical kernels: distances, the
//! iFair objective (value vs analytic value-and-gradient vs finite
//! differences), and the metric computations that dominate evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ifair_core::distance::{weighted_minkowski, weighted_power_sum};
use ifair_core::{FairnessPairs, IFairConfig, IFairObjective};
use ifair_linalg::Matrix;
use ifair_metrics::{auc, consistency, kendall_tau};
use ifair_optim::{NumericalObjective, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_distance_kernels(c: &mut Criterion) {
    let x = random_vec(100, 1);
    let y = random_vec(100, 2);
    let alpha: Vec<f64> = random_vec(100, 3).iter().map(|v| v.abs()).collect();
    let mut group = c.benchmark_group("distance/n100");
    for p in [1.0, 2.0, 3.0] {
        group.bench_with_input(BenchmarkId::new("minkowski", p), &p, |b, &p| {
            b.iter(|| weighted_minkowski(black_box(&x), &y, &alpha, p));
        });
    }
    group.bench_function("power_sum_p2", |b| {
        b.iter(|| weighted_power_sum(black_box(&x), &y, &alpha, 2.0));
    });
    group.finish();
}

fn bench_objective(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Matrix::from_fn(80, 12, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; 12];
    protected[11] = true;
    let config = IFairConfig {
        k: 8,
        fairness_pairs: FairnessPairs::Exact,
        ..Default::default()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let theta = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect::<Vec<_>>();
    let mut grad = vec![0.0; obj.dim()];

    let mut group = c.benchmark_group("objective/m80_n12_k8");
    group.sample_size(20);
    group.bench_function("value", |b| {
        b.iter(|| obj.value(black_box(&theta)));
    });
    group.bench_function("value_and_gradient_analytic", |b| {
        b.iter(|| obj.value_and_gradient(black_box(&theta), &mut grad));
    });
    // The reference implementation's approach: central differences cost
    // 2·dim evaluations per gradient.
    group.sample_size(10);
    group.bench_function("gradient_finite_difference", |b| {
        let numeric = NumericalObjective::new(obj.dim(), |t| obj.value(t));
        b.iter(|| numeric.gradient(black_box(&theta), &mut grad));
    });
    group.finish();
}

fn bench_metric_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let labels: Vec<f64> = (0..1000).map(|_| f64::from(rng.gen_bool(0.4))).collect();
    let scores: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("metrics/auc_n1000", |b| {
        b.iter(|| auc(black_box(&labels), black_box(&scores)));
    });

    let a = random_vec(200, 31);
    let b_scores = random_vec(200, 32);
    c.bench_function("metrics/kendall_tau_n200", |b| {
        b.iter(|| kendall_tau(black_box(&a), black_box(&b_scores)));
    });

    let x = Matrix::from_fn(200, 20, |_, _| rng.gen_range(0.0..1.0));
    let preds: Vec<f64> = (0..200).map(|_| f64::from(rng.gen_bool(0.5))).collect();
    c.bench_function("metrics/consistency_200x20_k10", |b| {
        b.iter(|| consistency(black_box(&x), black_box(&preds), 10));
    });
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_objective,
    bench_metric_kernels
);
criterion_main!(benches);
