//! Micro-benchmarks for the numerical kernels: distances, the iFair
//! objective (value vs analytic value-and-gradient vs finite differences),
//! the metric kernels — and, the headline, the serial vs pooled objective
//! evaluation and end-to-end `fit` on M = 2000 records (1 999 000 fairness
//! pairs).
//!
//! Run with `cargo bench -p ifair-bench --bench kernels`. Environment knobs:
//!
//! * `IFAIR_BENCH_THREADS=1,2,8` — thread counts for the parallel sections
//!   (default `{1, 2, 4, all hardware threads}`),
//! * `IFAIR_BENCH_SMOKE=1` — tiny sizes and iteration counts, so CI can
//!   prove the bench binary still builds and runs in seconds,
//! * `IFAIR_BENCH_JSON=1` — additionally write `BENCH_kernels.json`
//!   (name/min/median/mean ns per measurement, plus thread count and N) so
//!   the perf trajectory is trackable across PRs.

use ifair_bench::timing::{bench, table_header, BenchReport};
use ifair_core::distance::{weighted_minkowski, weighted_power_sum};
use ifair_core::par::available_threads;
use ifair_core::{Backend, FairnessPairs, IFair, IFairConfig, IFairObjective};
use ifair_linalg::Matrix;
use ifair_metrics::{auc, consistency, kendall_tau};
use ifair_optim::{NumericalObjective, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Problem sizes and iteration counts, shrunk under `IFAIR_BENCH_SMOKE`.
struct Sizes {
    smoke: bool,
    /// Records of the headline pairwise/fit sections. 2000 records means
    /// 1 999 000 exact fairness pairs; the smoke size (128 → 8128 pairs)
    /// still clears BOTH pool engagement thresholds (`PAR_MIN_RECORDS` =
    /// 128 and `PAR_MIN_PAIRS` = 512), so the CI smoke run exercises the
    /// pooled forward/backprop record path, not just the pair kernel.
    m_headline: usize,
    warmup: usize,
    iters: usize,
}

impl Sizes {
    fn from_env() -> Sizes {
        let smoke = std::env::var_os("IFAIR_BENCH_SMOKE").is_some();
        if smoke {
            Sizes {
                smoke,
                m_headline: 128,
                warmup: 0,
                iters: 2,
            }
        } else {
            Sizes {
                smoke,
                m_headline: 2000,
                warmup: 1,
                iters: 5,
            }
        }
    }
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn thread_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = match std::env::var("IFAIR_BENCH_THREADS") {
        Ok(list) => {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                eprintln!("warning: unusable IFAIR_BENCH_THREADS={list:?}; using defaults");
            }
            parsed
        }
        Err(_) => Vec::new(),
    };
    if counts.is_empty() {
        counts = vec![1usize, 2, 4, available_threads()];
        counts.sort_unstable();
        counts.dedup();
    }
    counts
}

fn bench_distance_kernels(report: &mut BenchReport) {
    let x = random_vec(100, 1);
    let y = random_vec(100, 2);
    let alpha: Vec<f64> = random_vec(100, 3).iter().map(|v| v.abs()).collect();
    table_header("distance kernels, n = 100");
    for p in [1.0, 2.0, 3.0] {
        let m = bench(&format!("minkowski/p{p}"), 20, 200, || {
            weighted_minkowski(black_box(&x), &y, &alpha, p)
        });
        report.push(&m);
    }
    let m = bench("power_sum/p2", 20, 200, || {
        weighted_power_sum(black_box(&x), &y, &alpha, 2.0)
    });
    report.push(&m);
}

fn bench_objective(report: &mut BenchReport, sizes: &Sizes) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Matrix::from_fn(80, 12, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; 12];
    protected[11] = true;
    let config = IFairConfig {
        k: 8,
        fairness_pairs: FairnessPairs::Exact,
        n_threads: 1,
        ..Default::default()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let theta: Vec<f64> = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect();
    let mut grad = vec![0.0; obj.dim()];

    table_header("objective, M=80 N=12 K=8, exact pairs");
    let iters = if sizes.smoke { 3 } else { 20 };
    report.push(&bench("value", sizes.warmup, iters, || {
        obj.value(black_box(&theta))
    }));
    report.push(&bench(
        "value_and_gradient/analytic",
        sizes.warmup,
        iters,
        || obj.value_and_gradient(black_box(&theta), &mut grad),
    ));
    // The reference implementation's approach: central differences cost
    // 2·dim evaluations per gradient.
    let numeric = NumericalObjective::new(obj.dim(), |t| obj.value(t));
    let fd_iters = if sizes.smoke { 1 } else { 5 };
    report.push(&bench("gradient/finite_difference", 0, fd_iters, || {
        numeric.gradient(black_box(&theta), &mut grad);
        grad[0]
    }));
}

/// The acceptance benchmark: serial vs pooled objective evaluation — the
/// parallel forward pass, pairwise `L_fair` kernel and backprop all engage.
fn bench_objective_evaluation_scaling(report: &mut BenchReport, sizes: &Sizes) {
    let mut rng = StdRng::seed_from_u64(7);
    let (m, n) = (sizes.m_headline, 10usize);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    table_header(&format!(
        "objective evaluation, M = {m} ({} pairs), {} hardware threads",
        m * (m - 1) / 2,
        available_threads()
    ));

    let mut serial_mean = None;
    for &threads in &thread_counts() {
        // Thread count goes into the config so `new()` builds the right
        // pool from the start (no discarded spawn from an override).
        let config = IFairConfig {
            k: 8,
            fairness_pairs: FairnessPairs::Exact,
            n_threads: threads.max(1),
            ..Default::default()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let theta: Vec<f64> = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect();
        let mut grad = vec![0.0; obj.dim()];
        let label = if threads <= 1 { "serial" } else { "parallel" };
        let m = bench(
            &format!("value_and_gradient/{label}/threads{threads}"),
            sizes.warmup,
            sizes.iters,
            || obj.value_and_gradient(black_box(&theta), &mut grad),
        );
        report.push(&m);
        if threads <= 1 {
            serial_mean = Some(m.mean);
        } else if let Some(serial) = serial_mean {
            println!(
                "    speedup vs serial at {threads} threads: {:.2}x",
                serial.as_secs_f64() / m.mean.as_secs_f64()
            );
        }
    }
}

/// End-to-end `IFair::fit` wall-clock, serial vs all hardware threads —
/// the number the persistent pool exists to improve.
fn bench_fit_end_to_end(report: &mut BenchReport, sizes: &Sizes) {
    let mut rng = StdRng::seed_from_u64(13);
    let (m, n) = (sizes.m_headline, 10usize);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    let (max_iters, iters) = if sizes.smoke { (3, 1) } else { (8, 2) };

    table_header(&format!(
        "end-to-end fit, M = {m} N = {n} K = 8, exact pairs, {max_iters} L-BFGS iters"
    ));

    let mut serial_mean = None;
    for (label, threads) in [("serial", 1usize), ("parallel", 0usize)] {
        let config = IFairConfig {
            k: 8,
            fairness_pairs: FairnessPairs::Exact,
            n_restarts: 1,
            max_iters,
            n_threads: threads,
            ..Default::default()
        };
        let m = bench(&format!("fit/{label}/threads{threads}"), 0, iters, || {
            IFair::fit(black_box(&x), &protected, &config).unwrap()
        });
        report.push(&m);
        if threads == 1 {
            serial_mean = Some(m.mean);
        } else if let Some(serial) = serial_mean {
            println!(
                "    fit speedup vs serial on {} threads: {:.2}x",
                available_threads(),
                serial.as_secs_f64() / m.mean.as_secs_f64()
            );
        }
    }
}

/// Chunk-tail and precision coverage, run at every size tier (smoke
/// included): M = 101 is a multiple of neither the 64-record chunk width
/// nor the 64-record pair tile, so the padded-tail paths of every lane
/// kernel execute, and the objective's Exact pair loop crosses a ragged
/// tile boundary. Rows are tagged with the active kernel backend and the
/// scalar precision so `perf_delta` can track each variant separately.
fn bench_kernel_variants(report: &mut BenchReport, sizes: &Sizes) {
    let backend = Backend::active().label();
    let mut rng = StdRng::seed_from_u64(23);
    let (m, n) = (101usize, 10usize);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    table_header(&format!(
        "kernel variants, M = {m} (ragged chunk tails), backend = {backend}"
    ));

    let config = IFairConfig {
        k: 8,
        fairness_pairs: FairnessPairs::Exact,
        n_threads: 1,
        ..Default::default()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let theta: Vec<f64> = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect();
    let mut grad = vec![0.0; obj.dim()];
    let iters = if sizes.smoke { 2 } else { 10 };
    report.push(
        &bench("value_and_gradient/m101", sizes.warmup, iters, || {
            obj.value_and_gradient(black_box(&theta), &mut grad)
        })
        .tagged(backend, "f64"),
    );

    let fit_config = IFairConfig {
        k: 4,
        max_iters: 5,
        n_restarts: 1,
        ..Default::default()
    };
    let model = IFair::fit(&x, &protected, &fit_config).unwrap();
    let low = model.to_f32();
    report.push(
        &bench("transform/m101/f64", sizes.warmup, iters, || {
            model.transform(black_box(&x))
        })
        .tagged(backend, "f64"),
    );
    report.push(
        &bench("transform/m101/f32", sizes.warmup, iters, || {
            low.transform_on(black_box(&x), None)
        })
        .tagged(backend, "f32"),
    );
}

fn bench_metric_kernels(report: &mut BenchReport, sizes: &Sizes) {
    let mut rng = StdRng::seed_from_u64(17);
    let (n_scored, n_rows) = if sizes.smoke { (100, 40) } else { (1000, 200) };
    let labels: Vec<f64> = (0..n_scored)
        .map(|_| f64::from(rng.gen_bool(0.4)))
        .collect();
    let scores: Vec<f64> = (0..n_scored).map(|_| rng.gen_range(0.0..1.0)).collect();
    let a = random_vec(n_rows, 31);
    let b_scores = random_vec(n_rows, 32);
    let x = Matrix::from_fn(n_rows, 20, |_, _| rng.gen_range(0.0..1.0));
    let preds: Vec<f64> = (0..n_rows).map(|_| f64::from(rng.gen_bool(0.5))).collect();

    table_header("metric kernels");
    report.push(&bench(
        &format!("auc/n{n_scored}"),
        sizes.warmup,
        50,
        || auc(black_box(&labels), black_box(&scores)),
    ));
    report.push(&bench(
        &format!("kendall_tau/n{n_rows}"),
        sizes.warmup,
        50,
        || kendall_tau(black_box(&a), black_box(&b_scores)),
    ));
    report.push(&bench(
        &format!("consistency_yNN/{n_rows}x20/k10"),
        sizes.warmup,
        if sizes.smoke { 2 } else { 10 },
        || consistency(black_box(&x), black_box(&preds), 10),
    ));
}

fn main() {
    let sizes = Sizes::from_env();
    let mut report = BenchReport::new("kernels", available_threads(), sizes.m_headline);
    println!(
        "# kernel micro-benchmarks{}",
        if sizes.smoke { " (smoke sizes)" } else { "" }
    );
    bench_distance_kernels(&mut report);
    bench_objective(&mut report, &sizes);
    bench_objective_evaluation_scaling(&mut report, &sizes);
    bench_kernel_variants(&mut report, &sizes);
    bench_fit_end_to_end(&mut report, &sizes);
    bench_metric_kernels(&mut report, &sizes);
    match report.write_if_enabled() {
        Ok(Some(path)) => println!("\nwrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
}
