//! Micro-benchmarks for the numerical kernels: distances, the iFair
//! objective (value vs analytic value-and-gradient vs finite differences),
//! the metric kernels — and, the headline, the serial vs parallel pairwise
//! `L_fair` kernel on N = 2000 records (1 999 000 fairness pairs).
//!
//! Run with `cargo bench -p ifair-bench --bench kernels`. Thread counts for
//! the parallel section default to {1, 2, 4, all hardware threads} and can
//! be overridden via `IFAIR_BENCH_THREADS=1,2,8`.

use ifair_bench::timing::{bench, table_header};
use ifair_core::distance::{weighted_minkowski, weighted_power_sum};
use ifair_core::par::available_threads;
use ifair_core::{FairnessPairs, IFairConfig, IFairObjective};
use ifair_linalg::Matrix;
use ifair_metrics::{auc, consistency, kendall_tau};
use ifair_optim::{NumericalObjective, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_distance_kernels() {
    let x = random_vec(100, 1);
    let y = random_vec(100, 2);
    let alpha: Vec<f64> = random_vec(100, 3).iter().map(|v| v.abs()).collect();
    table_header("distance kernels, n = 100");
    for p in [1.0, 2.0, 3.0] {
        bench(&format!("minkowski/p{p}"), 20, 200, || {
            weighted_minkowski(black_box(&x), &y, &alpha, p)
        });
    }
    bench("power_sum/p2", 20, 200, || {
        weighted_power_sum(black_box(&x), &y, &alpha, 2.0)
    });
}

fn bench_objective() {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Matrix::from_fn(80, 12, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; 12];
    protected[11] = true;
    let config = IFairConfig {
        k: 8,
        fairness_pairs: FairnessPairs::Exact,
        n_threads: 1,
        ..Default::default()
    };
    let obj = IFairObjective::new(&x, &protected, &config);
    let theta: Vec<f64> = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect();
    let mut grad = vec![0.0; obj.dim()];

    table_header("objective, M=80 N=12 K=8, exact pairs");
    bench("value", 5, 20, || obj.value(black_box(&theta)));
    bench("value_and_gradient/analytic", 5, 20, || {
        obj.value_and_gradient(black_box(&theta), &mut grad)
    });
    // The reference implementation's approach: central differences cost
    // 2·dim evaluations per gradient.
    let numeric = NumericalObjective::new(obj.dim(), |t| obj.value(t));
    bench("gradient/finite_difference", 1, 5, || {
        numeric.gradient(black_box(&theta), &mut grad);
        grad[0]
    });
}

/// The acceptance benchmark: serial vs parallel `L_fair` at N = 2000.
fn bench_pairwise_lfair() {
    let mut rng = StdRng::seed_from_u64(7);
    let (m, n) = (2000usize, 10usize);
    let x = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.0..1.0));
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    let config = IFairConfig {
        k: 8,
        fairness_pairs: FairnessPairs::Exact,
        ..Default::default()
    };

    let mut thread_counts: Vec<usize> = match std::env::var("IFAIR_BENCH_THREADS") {
        Ok(list) => {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                eprintln!("warning: unusable IFAIR_BENCH_THREADS={list:?}; using defaults");
            }
            parsed
        }
        Err(_) => Vec::new(),
    };
    if thread_counts.is_empty() {
        thread_counts = vec![1usize, 2, 4, available_threads()];
        thread_counts.sort_unstable();
        thread_counts.dedup();
    }

    table_header(&format!(
        "pairwise L_fair, N = {m} ({} pairs), {} hardware threads",
        m * (m - 1) / 2,
        available_threads()
    ));

    let mut serial_mean = None;
    for &threads in &thread_counts {
        let obj = IFairObjective::new(&x, &protected, &config).with_threads(threads.max(1));
        let theta: Vec<f64> = random_vec(obj.dim(), 11).iter().map(|v| v.abs()).collect();
        let mut grad = vec![0.0; obj.dim()];
        let label = if threads <= 1 { "serial" } else { "parallel" };
        let m = bench(
            &format!("value_and_gradient/{label}/threads{threads}"),
            1,
            5,
            || obj.value_and_gradient(black_box(&theta), &mut grad),
        );
        if threads <= 1 {
            serial_mean = Some(m.mean);
        } else if let Some(serial) = serial_mean {
            println!(
                "    speedup vs serial at {threads} threads: {:.2}x",
                serial.as_secs_f64() / m.mean.as_secs_f64()
            );
        }
    }
}

fn bench_metric_kernels() {
    let mut rng = StdRng::seed_from_u64(17);
    let labels: Vec<f64> = (0..1000).map(|_| f64::from(rng.gen_bool(0.4))).collect();
    let scores: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
    let a = random_vec(200, 31);
    let b_scores = random_vec(200, 32);
    let x = Matrix::from_fn(200, 20, |_, _| rng.gen_range(0.0..1.0));
    let preds: Vec<f64> = (0..200).map(|_| f64::from(rng.gen_bool(0.5))).collect();

    table_header("metric kernels");
    bench("auc/n1000", 5, 50, || {
        auc(black_box(&labels), black_box(&scores))
    });
    bench("kendall_tau/n200", 5, 50, || {
        kendall_tau(black_box(&a), black_box(&b_scores))
    });
    bench("consistency_yNN/200x20/k10", 2, 10, || {
        consistency(black_box(&x), black_box(&preds), 10)
    });
}

fn main() {
    println!("# kernel micro-benchmarks");
    bench_distance_kernels();
    bench_objective();
    bench_pairwise_lfair();
    bench_metric_kernels();
}
