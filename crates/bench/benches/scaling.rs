//! Scaling study: end-to-end `fit` wall-time at M ∈ {2 000, 10 000, 50 000}
//! for the full-batch L-BFGS path vs the mini-batch Adam path, on the
//! on-demand `large` generator.
//!
//! Both paths get a pair budget proportional to `M` so the comparison is a
//! fair "same statistical effort" one: full-batch uses
//! `FairnessPairs::Subsampled { 20·M }` (exact pairs at M = 50 000 would be
//! 1.25 · 10⁹ — the quadratic wall this bench exists to demonstrate an
//! escape from), mini-batch resamples 1 024 pairs inside each 256-record
//! batch. Optimization budgets are intentionally tiny (3 L-BFGS iterations /
//! 1 epoch): this bench tracks *cost per unit of training*, not convergence
//! — the convergence comparison lives in `tests/minibatch.rs`.
//!
//! A second, **out-of-core** section converts the generator into sharded
//! `.ifb` files and trains with the multi-process data-parallel strategy at
//! M ∈ {1 000 000, 10 000 000} — sizes nothing in this process could
//! materialize — recording the conversion and fit wall-times plus the
//! coordinator's peak RSS, which must stay a function of the batch shape,
//! never of `M`. Requires the `ifair-dp-worker` binary
//! (`cargo build --release -p ifair-core --bin ifair-dp-worker`) next to
//! the bench executable's parent directory, or named by `IFAIR_DP_WORKER`.
//!
//! Run with `cargo bench -p ifair-bench --bench scaling`. Environment knobs:
//!
//! * `IFAIR_BENCH_SMOKE=1` — M ∈ {200, 500, 1000} (out-of-core: 20 000) and
//!   a 2-iteration budget, so CI proves the binary runs in seconds,
//! * `IFAIR_BENCH_JSON=1` — additionally write `BENCH_scaling.json` for the
//!   perf-trajectory pipeline.

use ifair_bench::timing::{bench, peak_rss_bytes, reset_peak_rss, table_header, BenchReport};
use ifair_core::par::available_threads;
use ifair_core::{DpDataSpec, FairnessPairs, FitStrategy, IFair, IFairConfig};
use ifair_data::binfmt::BinDatasetWriter;
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};

/// Problem sizes, shrunk under `IFAIR_BENCH_SMOKE`.
struct Sizes {
    record_counts: Vec<usize>,
    out_of_core_counts: Vec<usize>,
}

impl Sizes {
    fn from_env() -> Sizes {
        if std::env::var_os("IFAIR_BENCH_SMOKE").is_some() {
            Sizes {
                record_counts: vec![200, 500, 1000],
                out_of_core_counts: vec![20_000],
            }
        } else {
            Sizes {
                record_counts: vec![2_000, 10_000, 50_000],
                out_of_core_counts: vec![1_000_000, 10_000_000],
            }
        }
    }
}

fn full_batch_config(m: usize) -> IFairConfig {
    IFairConfig {
        k: 8,
        n_restarts: 1,
        max_iters: 3,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 20 * m },
        ..Default::default()
    }
}

fn mini_batch_config() -> IFairConfig {
    IFairConfig {
        k: 8,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 256,
            pairs_per_batch: 1024,
            epochs: 1,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

fn main() {
    let sizes = Sizes::from_env();
    let max_m = *sizes.record_counts.iter().max().expect("non-empty grid");
    let mut report = BenchReport::new("scaling", available_threads(), max_m);
    println!(
        "# fit scaling, full-batch vs mini-batch, M in {:?}",
        sizes.record_counts
    );
    table_header("end-to-end fit wall-time");

    for &m in &sizes.record_counts {
        let gen = LargeScale::new(LargeScaleConfig {
            n_records: m,
            n_numeric: 16,
            seed: 29,
            ..Default::default()
        });
        let protected = gen.protected_flags();

        // Full-batch needs the matrix resident; the mini-batch fit streams
        // straight from the generator and never materializes M rows.
        let ds = gen.materialize(0, m).expect("valid range");
        let full = bench(&format!("fit/full_batch/m{m}"), 0, 1, || {
            IFair::fit(&ds.x, &protected, &full_batch_config(m)).expect("full-batch fit")
        });
        report.push(&full);

        let mini = bench(&format!("fit/mini_batch/m{m}"), 0, 1, || {
            let mut source = gen.clone();
            IFair::fit_source(&mut source, &protected, &mini_batch_config())
                .expect("mini-batch fit")
        });
        report.push(&mini);
        println!(
            "    mini-batch vs full-batch at M = {m}: {:.2}x",
            full.mean.as_secs_f64() / mini.mean.as_secs_f64()
        );
    }

    out_of_core(&sizes, &mut report);

    match report.write_if_enabled() {
        Ok(Some(path)) => println!("\nwrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
}

/// The data-parallel schedule for the out-of-core points: one epoch of
/// 65 536-record batches, 4 096 fairness pairs each — per-step cost is a
/// function of this shape, `M` only sets the step count.
fn out_of_core_config() -> IFairConfig {
    IFairConfig {
        k: 4,
        n_restarts: 1,
        n_threads: 1,
        strategy: FitStrategy::DataParallel {
            workers: 2,
            batch_records: 65_536,
            pairs_per_batch: 4_096,
            epochs: 1,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

/// Convert-then-train at sizes nothing in this process materializes:
/// generator → sharded `.ifb` → 2-worker data-parallel fit, with the
/// coordinator's peak RSS attached to each fit row. Shards are cut at
/// 2²⁰ rows so the big points exercise the multi-shard read path.
fn out_of_core(sizes: &Sizes, report: &mut BenchReport) {
    const SHARD_ROWS: usize = 1 << 20;
    println!(
        "\n# out-of-core: convert + data-parallel fit, M in {:?}",
        sizes.out_of_core_counts
    );
    table_header("out-of-core data plane (2 workers)");
    let dir = std::env::temp_dir().join(format!("ifair-scaling-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard dir");

    for &m in &sizes.out_of_core_counts {
        let gen = LargeScale::new(LargeScaleConfig {
            n_records: m,
            n_numeric: 16,
            seed: 29,
            ..Default::default()
        });
        let protected = gen.protected_flags();
        let n = gen.width();
        let stem = dir.join(format!("m{m}"));

        let mut shards = Vec::new();
        let convert = bench(&format!("convert/ifb/m{m}"), 0, 1, || {
            let names: Vec<String> = (0..n).map(|j| format!("f{j}")).collect();
            let mut writer =
                BinDatasetWriter::create(&stem, names, SHARD_ROWS).expect("shard writer");
            let mut row = vec![0.0; n];
            for i in 0..m {
                gen.row_into(i, &mut row);
                writer.push_row(&row).expect("write row");
            }
            shards = writer.finish().expect("finish shards");
            shards.len()
        });
        report.push(&convert);

        let spec = DpDataSpec::Bin {
            paths: shards
                .iter()
                .map(|p| p.to_string_lossy().into_owned())
                .collect(),
        };
        reset_peak_rss();
        let fit = bench(&format!("fit/data_parallel_w2/m{m}"), 0, 1, || {
            IFair::fit_data_parallel(&spec, &protected, &out_of_core_config())
                .expect("data-parallel fit")
        })
        .with_peak_rss(peak_rss_bytes());
        if let Some(rss) = fit.peak_rss {
            println!(
                "    coordinator peak RSS at M = {m}: {:.1} MiB ({} shards on disk)",
                rss as f64 / (1024.0 * 1024.0),
                shards.len()
            );
        }
        report.push(&fit);

        for s in &shards {
            std::fs::remove_file(s).ok();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
