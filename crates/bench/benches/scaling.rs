//! Scaling study: end-to-end `fit` wall-time at M ∈ {2 000, 10 000, 50 000}
//! for the full-batch L-BFGS path vs the mini-batch Adam path, on the
//! on-demand `large` generator.
//!
//! Both paths get a pair budget proportional to `M` so the comparison is a
//! fair "same statistical effort" one: full-batch uses
//! `FairnessPairs::Subsampled { 20·M }` (exact pairs at M = 50 000 would be
//! 1.25 · 10⁹ — the quadratic wall this bench exists to demonstrate an
//! escape from), mini-batch resamples 1 024 pairs inside each 256-record
//! batch. Optimization budgets are intentionally tiny (3 L-BFGS iterations /
//! 1 epoch): this bench tracks *cost per unit of training*, not convergence
//! — the convergence comparison lives in `tests/minibatch.rs`.
//!
//! Run with `cargo bench -p ifair-bench --bench scaling`. Environment knobs:
//!
//! * `IFAIR_BENCH_SMOKE=1` — M ∈ {200, 500, 1000} and a 2-iteration budget,
//!   so CI proves the binary runs in seconds,
//! * `IFAIR_BENCH_JSON=1` — additionally write `BENCH_scaling.json` for the
//!   perf-trajectory pipeline.

use ifair_bench::timing::{bench, table_header, BenchReport};
use ifair_core::par::available_threads;
use ifair_core::{FairnessPairs, FitStrategy, IFair, IFairConfig};
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};

/// Problem sizes, shrunk under `IFAIR_BENCH_SMOKE`.
struct Sizes {
    record_counts: Vec<usize>,
}

impl Sizes {
    fn from_env() -> Sizes {
        if std::env::var_os("IFAIR_BENCH_SMOKE").is_some() {
            Sizes {
                record_counts: vec![200, 500, 1000],
            }
        } else {
            Sizes {
                record_counts: vec![2_000, 10_000, 50_000],
            }
        }
    }
}

fn full_batch_config(m: usize) -> IFairConfig {
    IFairConfig {
        k: 8,
        n_restarts: 1,
        max_iters: 3,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 20 * m },
        ..Default::default()
    }
}

fn mini_batch_config() -> IFairConfig {
    IFairConfig {
        k: 8,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 256,
            pairs_per_batch: 1024,
            epochs: 1,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

fn main() {
    let sizes = Sizes::from_env();
    let max_m = *sizes.record_counts.iter().max().expect("non-empty grid");
    let mut report = BenchReport::new("scaling", available_threads(), max_m);
    println!(
        "# fit scaling, full-batch vs mini-batch, M in {:?}",
        sizes.record_counts
    );
    table_header("end-to-end fit wall-time");

    for &m in &sizes.record_counts {
        let gen = LargeScale::new(LargeScaleConfig {
            n_records: m,
            n_numeric: 16,
            seed: 29,
            ..Default::default()
        });
        let protected = gen.protected_flags();

        // Full-batch needs the matrix resident; the mini-batch fit streams
        // straight from the generator and never materializes M rows.
        let ds = gen.materialize(0, m).expect("valid range");
        let full = bench(&format!("fit/full_batch/m{m}"), 0, 1, || {
            IFair::fit(&ds.x, &protected, &full_batch_config(m)).expect("full-batch fit")
        });
        report.push(&full);

        let mini = bench(&format!("fit/mini_batch/m{m}"), 0, 1, || {
            let mut source = gen.clone();
            IFair::fit_source(&mut source, &protected, &mini_batch_config())
                .expect("mini-batch fit")
        });
        report.push(&mini);
        println!(
            "    mini-batch vs full-batch at M = {m}: {:.2}x",
            full.mean.as_secs_f64() / mini.mean.as_secs_f64()
        );
    }

    match report.write_if_enabled() {
        Ok(Some(path)) => println!("\nwrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
}
