//! Serving throughput/latency bench: boots a real `ifair-serve` server on
//! an ephemeral loopback port and measures request latency and rows/sec at
//! batch sizes 1 / 16 / 128 against both endpoints.
//!
//! Each measured iteration is one full HTTP round trip (connect → POST →
//! parse), i.e. what a remote caller experiences, micro-batching and worker
//! pool included. Run with `cargo bench -p ifair-bench --bench serving`.
//! Environment knobs:
//!
//! * `IFAIR_BENCH_SMOKE=1` — fewer iterations, so CI proves the path in
//!   seconds,
//! * `IFAIR_BENCH_JSON=1` — additionally write `BENCH_serving.json` for the
//!   perf-trajectory pipeline.

use ifair::core::IFairConfig;
use ifair::data::Dataset;
use ifair::linalg::Matrix;
use ifair::Pipeline;
use ifair_bench::timing::{bench, fmt_duration, table_header, BenchReport, Measurement};
use ifair_core::par::available_threads;
use ifair_serve::client::Session;
use ifair_serve::{client, ModelRegistry, ModelSpec, Server, ServerConfig};
use std::time::{Duration, Instant};

/// Batch sizes of the headline measurements.
const BATCH_SIZES: [usize; 3] = [1, 16, 128];

/// Concurrency levels of the keep-alive sweep (persistent connections).
const SWEEP_CONNS: [usize; 3] = [16, 64, 256];

fn main() {
    let smoke = std::env::var_os("IFAIR_BENCH_SMOKE").is_some();
    let (warmup, iters) = if smoke { (2, 10) } else { (10, 60) };

    // Fit a representative pipeline (scale → iFair → logreg) and serve it
    // from a temp artifact, exactly like production.
    let ds = train_dataset(256);
    let pipeline = Pipeline::builder()
        .standard_scaler()
        .ifair(IFairConfig {
            k: 8,
            max_iters: 30,
            n_restarts: 1,
            ..Default::default()
        })
        .logistic_regression_default()
        .fit(&ds)
        .expect("bench pipeline fits");
    let path =
        std::env::temp_dir().join(format!("ifair-bench-serving-{}.json", std::process::id()));
    std::fs::write(&path, pipeline.to_json().expect("pipeline serializes"))
        .expect("artifact writes");
    let registry = ModelRegistry::load(vec![ModelSpec {
        name: "bench".into(),
        path: path.clone(),
        precision: ifair_serve::Precision::F64,
    }])
    .expect("registry loads");
    // Queue deep enough that the 256-connection sweep (≤1 in-flight request
    // per connection) never sheds: the bench measures the data plane, not
    // the admission machinery.
    let config = ServerConfig {
        queue_capacity: 512,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", registry, config)
        .expect("server binds")
        .spawn();
    let addr = handle.addr();

    let mut report = BenchReport::new("serving", available_threads(), 256);
    table_header("serving round-trip latency (loopback, one request per iteration)");
    for &batch in &BATCH_SIZES {
        let body = request_body(&ds, batch);
        for (op, label) in [("transform", "transform"), ("predict", "predict")] {
            let path = format!("/v1/models/bench/{op}");
            // Sanity outside the timed loop: the endpoint must answer 200.
            let (status, text) = client::post(addr, &path, &body).expect("request succeeds");
            assert_eq!(status, 200, "bench endpoint failed: {text}");
            let m = bench(&format!("{label}/b{batch}"), warmup, iters, || {
                client::post(addr, &path, &body).expect("request succeeds")
            });
            let rows_per_sec = batch as f64 / (m.median.as_nanos().max(1) as f64 / 1e9);
            println!(
                "  -> {label} batch={batch}: median {} per request, ~{:.0} rows/sec",
                fmt_duration(m.median),
                rows_per_sec
            );
            report.push(&m);
        }
    }

    // Concurrent load: 4 client threads firing 16-row requests — exercises
    // the micro-batcher coalescing path rather than single-request latency.
    let body = request_body(&ds, 16);
    let n_clients = 4;
    let per_client = if smoke { 5 } else { 40 };
    let m = bench(
        "transform/b16/4-clients",
        1,
        if smoke { 3 } else { 10 },
        || {
            let clients: Vec<_> = (0..n_clients)
                .map(|_| {
                    let body = body.clone();
                    std::thread::spawn(move || {
                        for _ in 0..per_client {
                            let (status, _) =
                                client::post(addr, "/v1/models/bench/transform", &body)
                                    .expect("request succeeds");
                            assert_eq!(status, 200);
                        }
                    })
                })
                .collect();
            for c in clients {
                c.join().expect("client thread");
            }
        },
    );
    let total_rows = (n_clients * per_client * 16) as f64;
    println!(
        "  -> 4 concurrent clients: {} for {} rows (~{:.0} rows/sec aggregate)",
        fmt_duration(m.median),
        total_rows,
        total_rows / (m.median.as_nanos().max(1) as f64 / 1e9)
    );
    report.push(&m);

    // Keep-alive concurrency sweep: C persistent connections (one Session
    // per client thread), each firing 16-row transforms back to back over
    // a single socket. The headline number is per-request wall time —
    // total sweep time divided by total requests — which is what the
    // reactor's keep-alive + pipelined parsing path is built to shrink
    // versus the old connection-per-request chain.
    let sweep_body = request_body(&ds, 16);
    let reqs_per_conn = if smoke { 3 } else { 40 };
    let reps = if smoke { 2 } else { 7 };
    for &conns in &SWEEP_CONNS {
        let mut per_request: Vec<Duration> = (0..reps)
            .map(|_| {
                let started = Instant::now();
                let clients: Vec<_> = (0..conns)
                    .map(|_| {
                        let body = sweep_body.clone();
                        std::thread::spawn(move || {
                            let mut session =
                                Session::with_timeout(addr, Some(Duration::from_secs(30)));
                            for _ in 0..reqs_per_conn {
                                let (status, text) = session
                                    .post("/v1/models/bench/transform", &body)
                                    .expect("sweep request succeeds");
                                assert_eq!(status, 200, "sweep request failed: {text}");
                            }
                        })
                    })
                    .collect();
                for c in clients {
                    c.join().expect("sweep client thread");
                }
                started.elapsed() / (conns * reqs_per_conn) as u32
            })
            .collect();
        per_request.sort();
        let mean = per_request.iter().sum::<Duration>() / per_request.len() as u32;
        let m = Measurement {
            name: format!("sweep/transform/b16/c{conns}"),
            min: per_request[0],
            median: per_request[per_request.len() / 2],
            mean,
            backend: None,
            precision: None,
            peak_rss: None,
        };
        println!(
            "  -> sweep {conns} keep-alive conns: median {} per request (~{:.0} rows/sec aggregate)",
            fmt_duration(m.median),
            16.0 / (m.median.as_nanos().max(1) as f64 / 1e9)
        );
        report.push(&m);
    }

    match report.write_if_enabled() {
        Ok(Some(path)) => println!("\nwrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("could not write bench JSON: {e}"),
    }
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Deterministic training data: 3 informative features + protected bit.
fn train_dataset(m: usize) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            let t = i as f64 / m as f64;
            vec![
                t,
                (1.0 - t) * 0.8 + 0.2 * ((i * 13 % 7) as f64 / 7.0),
                ((i * 5 + 2) % 11) as f64 / 11.0,
                (i % 2) as f64,
            ]
        })
        .collect();
    Dataset::new(
        Matrix::from_rows(rows).expect("rectangular"),
        vec!["a".into(), "b".into(), "c".into(), "gender".into()],
        vec![false, false, false, true],
        Some((0..m).map(|i| f64::from(i % 3 == 0)).collect()),
        (0..m).map(|i| (i % 2) as u8).collect(),
    )
    .expect("consistent dataset")
}

/// A transform/predict body with `batch` rows of the training distribution.
fn request_body(ds: &Dataset, batch: usize) -> String {
    let rows: Vec<Vec<f64>> = (0..batch)
        .map(|i| ds.x.row(i % ds.x.rows()).to_vec())
        .collect();
    format!(
        "{{\"rows\":{}}}",
        serde_json::to_string(&rows).expect("rows serialize")
    )
}
