//! Minimal command-line handling shared by the experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — run at the paper's full scale (complete hyper-parameter
//!   grid, full dataset sizes). The default "quick" mode shrinks the grid
//!   and caps dataset sizes so a laptop regenerates every table in minutes;
//!   the *shape* of each result (who wins, by roughly what factor) is
//!   preserved — see `EXPERIMENTS.md`.
//! * `--seed <u64>` — base RNG seed (default 42).

/// A command-line parsing failure (usage is printed by [`ExpArgs::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgsError(pub String);

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgsError {}

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Run the full paper-scale configuration.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            full: false,
            seed: 42,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn parse() -> ExpArgs {
        Self::parse_from(std::env::args().skip(1)).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            eprintln!("usage: <experiment> [--full] [--seed <u64>]");
            std::process::exit(2);
        })
    }

    /// Parses an explicit argument list (testable core of [`ExpArgs::parse`]).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<ExpArgs, ArgsError> {
        let mut parsed = ExpArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" => parsed.full = true,
                "--quick" => parsed.full = false,
                "--seed" => {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgsError("--seed requires a value".into()))?;
                    parsed.seed = value
                        .parse()
                        .map_err(|_| ArgsError(format!("invalid seed: {value}")))?;
                }
                other => return Err(ArgsError(format!("unknown argument: {other}"))),
            }
        }
        Ok(parsed)
    }

    /// Human-readable mode tag for experiment headers.
    pub fn mode(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "quick"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = ExpArgs::parse_from(strs(&[])).unwrap();
        assert!(!a.full);
        assert_eq!(a.seed, 42);
        assert_eq!(a.mode(), "quick");
    }

    #[test]
    fn parses_flags() {
        let a = ExpArgs::parse_from(strs(&["--full", "--seed", "7"])).unwrap();
        assert!(a.full);
        assert_eq!(a.seed, 7);
        assert_eq!(a.mode(), "full");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(ExpArgs::parse_from(strs(&["--seed"])).is_err());
        assert!(ExpArgs::parse_from(strs(&["--seed", "x"])).is_err());
        assert!(ExpArgs::parse_from(strs(&["--bogus"])).is_err());
    }
}
