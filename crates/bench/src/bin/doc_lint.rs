//! Fails (exit 1) when the serving runbook is out of date.
//!
//! ```text
//! doc_lint --doc docs/SERVING.md --help-text help.txt --metrics-text metrics.txt
//! ```
//!
//! `help.txt` is captured `ifair serve --help` output; `metrics.txt` is a
//! live `/metrics` scrape. Every `--flag` in the help text and every
//! `# HELP`-declared metric series must appear verbatim in the doc.

use ifair_bench::doclint::{extract_flags, extract_metric_names, missing_from_doc};

fn main() {
    let mut doc_path = None;
    let mut help_path = None;
    let mut metrics_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{arg} needs a value")))
        };
        match arg.as_str() {
            "--doc" => doc_path = Some(take()),
            "--help-text" => help_path = Some(take()),
            "--metrics-text" => metrics_path = Some(take()),
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let doc_path = doc_path.unwrap_or_else(|| usage("--doc is required"));
    let doc = read(&doc_path);

    let mut missing = Vec::new();
    if let Some(path) = help_path {
        let flags = extract_flags(&read(&path));
        if flags.is_empty() {
            usage(&format!("{path} contains no --flags; wrong capture?"));
        }
        println!("doc_lint: {} CLI flags in help text", flags.len());
        missing.extend(
            missing_from_doc(&doc, &flags)
                .into_iter()
                .map(|f| format!("CLI flag {f}")),
        );
    }
    if let Some(path) = metrics_path {
        let names = extract_metric_names(&read(&path));
        if names.is_empty() {
            usage(&format!("{path} contains no # HELP lines; wrong capture?"));
        }
        println!("doc_lint: {} metric series in scrape", names.len());
        missing.extend(
            missing_from_doc(&doc, &names)
                .into_iter()
                .map(|n| format!("metric series {n}")),
        );
    }

    if missing.is_empty() {
        println!("doc_lint: {doc_path} is complete");
    } else {
        eprintln!("doc_lint: {doc_path} is missing {} name(s):", missing.len());
        for name in &missing {
            eprintln!("  - {name}");
        }
        std::process::exit(1);
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")))
}

fn usage(err: &str) -> ! {
    eprintln!("doc_lint: {err}");
    eprintln!("usage: doc_lint --doc docs/SERVING.md [--help-text FILE] [--metrics-text FILE]");
    std::process::exit(2);
}
