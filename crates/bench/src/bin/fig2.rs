//! Figure 2 — properties of learned representations on synthetic data
//! (§IV): for each of three protected-attribute regimes (random, `A=1 ⟺
//! X1≤3`, `A=1 ⟺ X2≤3`), compare the original data against iFair and LFR
//! representations on Acc, yNN, Parity and EqOpp — plus the paper's
//! headline diagnostic, the *representation drift* when a record's
//! protected bit is flipped (near zero for iFair, pronounced for LFR).
//!
//! Hyper-parameters are grid-searched for optimal individual fairness of
//! the classifier, exactly as in the paper. The 2-D coordinates of every
//! learned representation go to `results/fig2.json` for plotting.

use ifair_baselines::{Lfr, LfrConfig};
use ifair_bench::report::{f2, f3, write_json, MarkdownTable};
use ifair_bench::ExpArgs;
use ifair_core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair_data::generators::synthetic::{self, SyntheticConfig, SyntheticVariant};
use ifair_data::Dataset;
use ifair_linalg::Matrix;
use ifair_metrics::{accuracy, consistency, equal_opportunity, statistical_parity};
use ifair_models::LogisticRegression;
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct PanelMetrics {
    acc: f64,
    ynn: f64,
    parity: f64,
    eq_opp: f64,
    /// Mean representation movement when the protected bit flips.
    flip_drift: f64,
}

#[derive(Serialize)]
struct Panel {
    variant: String,
    method: String,
    params: String,
    metrics: PanelMetrics,
    /// First two coordinates of each record's representation (for plots).
    points: Vec<(f64, f64)>,
}

/// Classifier metrics on a representation of the 100-point study (train =
/// eval, as in the paper's illustration).
fn panel_metrics(ds: &Dataset, repr: &Matrix, flip_drift: f64) -> PanelMetrics {
    let y = ds.labels();
    let model = LogisticRegression::fit_default(repr, y).expect("repr rows align with labels");
    let preds = model.predict(repr);
    PanelMetrics {
        acc: accuracy(y, &preds),
        ynn: consistency(&ds.masked_x(), &preds, 10),
        parity: statistical_parity(&preds, &ds.group),
        eq_opp: equal_opportunity(y, &preds, &ds.group),
        flip_drift,
    }
}

/// The dataset with every record's protected attribute (and group) flipped.
fn flipped(ds: &Dataset) -> Dataset {
    let mut out = ds.clone();
    let a_col = ds.protected_indices()[0];
    for i in 0..out.x.rows() {
        let v = out.x.get(i, a_col);
        out.x.set(i, a_col, 1.0 - v);
    }
    out.group = ds.group.iter().map(|&g| 1 - g).collect();
    out
}

fn mean_row_distance(a: &Matrix, b: &Matrix) -> f64 {
    let diff = a.sub(b).expect("same shape");
    (0..diff.rows())
        .map(|i| diff.row(i).iter().map(|v| v * v).sum::<f64>().sqrt())
        .sum::<f64>()
        / diff.rows() as f64
}

fn first_two(m: &Matrix) -> Vec<(f64, f64)> {
    (0..m.rows()).map(|i| (m.get(i, 0), m.get(i, 1))).collect()
}

fn main() {
    let args = ExpArgs::parse();
    // §IV: "grid search on the set {0, 0.05, 0.1, 1, 10, 100} for optimal
    // individual fairness of the classifier".
    let coeffs: Vec<f64> = if args.full {
        vec![0.0, 0.05, 0.1, 1.0, 10.0, 100.0]
    } else {
        vec![0.1, 1.0, 10.0]
    };
    let ks = [4usize];
    println!(
        "# Figure 2 — synthetic study: original vs iFair vs LFR ({} mode)\n",
        args.mode()
    );

    let mut panels = Vec::new();
    for variant in SyntheticVariant::all() {
        let ds = synthetic::generate(&SyntheticConfig {
            n_records: 100,
            variant,
            seed: args.seed,
        });
        let flipped_ds = flipped(&ds);
        println!("## A: {}\n", variant.label());
        let mut table = MarkdownTable::new([
            "Method",
            "Params",
            "Acc",
            "yNN",
            "Parity",
            "EqOpp",
            "Flip drift",
        ]);

        // Original data panel (left column of the figure).
        let original = panel_metrics(&ds, &ds.x, mean_row_distance(&ds.x, &flipped_ds.x));
        table.row([
            "original".into(),
            String::new(),
            f2(original.acc),
            f3(original.ynn),
            f3(original.parity),
            f3(original.eq_opp),
            f3(original.flip_drift),
        ]);
        panels.push(Panel {
            variant: variant.label().into(),
            method: "original".into(),
            params: String::new(),
            metrics: original,
            points: first_two(&ds.x),
        });

        // iFair: best-yNN grid cell.
        let mut best_ifair: Option<(PanelMetrics, String, Matrix)> = None;
        for &lambda in &coeffs {
            for &mu in &coeffs {
                if lambda == 0.0 && mu == 0.0 {
                    continue;
                }
                for &k in &ks {
                    let config = IFairConfig {
                        k,
                        lambda,
                        mu,
                        init: InitStrategy::NearZeroProtected,
                        // §III-B: "a natural setting is to give no weight to
                        // the protected attributes" — pin α_A near zero so
                        // the §IV invariance finding is directly visible.
                        freeze_protected_alpha: true,
                        fairness_pairs: FairnessPairs::Exact,
                        max_iters: if args.full { 150 } else { 60 },
                        n_restarts: if args.full { 3 } else { 2 },
                        seed: args.seed,
                        ..Default::default()
                    };
                    let Ok(model) = IFair::fit(&ds.x, &ds.protected, &config) else {
                        continue;
                    };
                    let repr = model.transform(&ds.x);
                    let drift = mean_row_distance(&repr, &model.transform(&flipped_ds.x));
                    let m = panel_metrics(&ds, &repr, drift);
                    if best_ifair.as_ref().is_none_or(|(b, _, _)| m.ynn > b.ynn) {
                        best_ifair = Some((m, format!("λ={lambda} μ={mu} K={k}"), repr));
                    }
                }
            }
        }
        let (m, params, repr) = best_ifair.expect("grid non-empty");
        table.row([
            "iFair".into(),
            params.clone(),
            f2(m.acc),
            f3(m.ynn),
            f3(m.parity),
            f3(m.eq_opp),
            f3(m.flip_drift),
        ]);
        panels.push(Panel {
            variant: variant.label().into(),
            method: "iFair".into(),
            params,
            metrics: m,
            points: first_two(&repr),
        });

        // LFR: best-yNN grid cell over (A_x, A_z), A_y = 1.
        let mut best_lfr: Option<(PanelMetrics, String, Matrix)> = None;
        for &a_x in &coeffs {
            for &a_z in &coeffs {
                for &k in &ks {
                    let config = LfrConfig {
                        k,
                        a_x,
                        a_y: 1.0,
                        a_z,
                        max_iters: if args.full { 150 } else { 60 },
                        n_restarts: if args.full { 3 } else { 2 },
                        seed: args.seed,
                        ..Default::default()
                    };
                    let Ok(model) = Lfr::fit(&ds.x, ds.labels(), &ds.group, &config) else {
                        continue;
                    };
                    let repr = model
                        .transform(&ds.x, &ds.group)
                        .expect("groups validated by fit");
                    let drift = mean_row_distance(
                        &repr,
                        &model
                            .transform(&flipped_ds.x, &flipped_ds.group)
                            .expect("groups validated by fit"),
                    );
                    let m = panel_metrics(&ds, &repr, drift);
                    if best_lfr.as_ref().is_none_or(|(b, _, _)| m.ynn > b.ynn) {
                        best_lfr = Some((m, format!("Ax={a_x} Az={a_z} K={k}"), repr));
                    }
                }
            }
        }
        let (m, params, repr) = best_lfr.expect("grid non-empty");
        table.row([
            "LFR".into(),
            params.clone(),
            f2(m.acc),
            f3(m.ynn),
            f3(m.parity),
            f3(m.eq_opp),
            f3(m.flip_drift),
        ]);
        panels.push(Panel {
            variant: variant.label().into(),
            method: "LFR".into(),
            params,
            metrics: m,
            points: first_two(&repr),
        });
        table.print();
        println!();
    }
    println!(
        "Expected shape (paper): iFair beats LFR on Acc, yNN and EqOpp in \
         every regime while LFR wins on Parity; iFair's flip drift is near \
         zero (representations ignore the protected bit), LFR's is \
         pronounced."
    );
    if let Some(path) = write_json("fig2", &panels) {
        println!("\nraw results: {}", path.display());
    }
}
