//! Figure 3 — utility (AUC) vs individual fairness (yNN) trade-off for the
//! classification task (§V-D), on Compas, Census and Credit.
//!
//! Every method contributes its evaluated grid points; the printed table
//! lists each method's best harmonic-mean point and all Pareto-optimal
//! points (the paper's dashed front). The full point cloud goes to
//! `results/fig3.json` for plotting.

use ifair_bench::classification::{
    pareto_front, prepare_classification, run_all_methods, select_best, GridSpec, PrepareCaps,
    Tuning,
};
use ifair_bench::report::{f3, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    dataset: String,
    method: String,
    params: String,
    auc: f64,
    ynn: f64,
    pareto: bool,
}

fn main() {
    let args = ExpArgs::parse();
    let spec = GridSpec::for_mode(args.full);
    let caps = PrepareCaps::for_mode(args.full);
    println!(
        "# Figure 3 — AUC vs yNN trade-off, classification ({} mode)\n",
        args.mode()
    );

    let mut all_points = Vec::new();
    for (name, ds) in datasets::classification_datasets(args.full, args.seed) {
        eprintln!("[fig3] running grid on {name}...");
        let p = prepare_classification(&ds, &name, args.seed, caps);
        let points = run_all_methods(&p, &spec, args.seed);
        let coords: Vec<(f64, f64)> = points.iter().map(|g| (g.test.ynn, g.test.auc)).collect();
        let flags = pareto_front(&coords);

        println!("## {name}\n");
        let mut table = MarkdownTable::new(["Method", "Params", "AUC", "yNN", "Pareto"]);
        // One representative row per method (best harmonic mean), then all
        // Pareto points.
        let methods: Vec<String> = {
            let mut seen = Vec::new();
            for g in &points {
                if !seen.contains(&g.method) {
                    seen.push(g.method.clone());
                }
            }
            seen
        };
        for method in &methods {
            let subset: Vec<_> = points
                .iter()
                .filter(|g| &g.method == method)
                .cloned()
                .collect();
            let best = select_best(&subset, Tuning::Harmonic);
            table.row([
                method.clone(),
                best.params.clone(),
                f3(best.test.auc),
                f3(best.test.ynn),
                String::new(),
            ]);
        }
        for (g, &flag) in points.iter().zip(&flags) {
            if flag {
                table.row([
                    g.method.clone(),
                    g.params.clone(),
                    f3(g.test.auc),
                    f3(g.test.ynn),
                    "*".to_string(),
                ]);
            }
        }
        table.print();
        let n_pareto = flags.iter().filter(|&&f| f).count();
        println!(
            "\n{} grid points evaluated, {n_pareto} Pareto-optimal (marked *).\n",
            points.len()
        );

        for (g, flag) in points.into_iter().zip(flags) {
            all_points.push(Point {
                dataset: name.clone(),
                method: g.method,
                params: g.params,
                auc: g.test.auc,
                ynn: g.test.ynn,
                pareto: flag,
            });
        }
    }
    println!(
        "Expected shape (paper): Full Data has the best AUC but poor yNN; \
         LFR and iFair dominate the other methods on the trade-off, with \
         iFair-b Pareto-optimal across datasets."
    );
    if let Some(path) = write_json("fig3", &all_points) {
        println!("\nraw results: {}", path.display());
    }
}
