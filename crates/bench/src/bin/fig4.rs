//! Figure 4 — information obfuscation (§V-F): accuracy of a logistic-
//! regression adversary predicting protected group membership from (i)
//! masked data, (ii) LFR representations, (iii) iFair-b representations,
//! for all five datasets (LFR is classification-only, as in the paper).
//!
//! Lower is better; the majority-class share is the floor.

use ifair_baselines::{Lfr, LfrConfig};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use ifair_core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair_data::{Dataset, StandardScaler};
use ifair_models::{adversarial::majority_share, adversarial_accuracy};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    majority_floor: f64,
    masked: f64,
    lfr: Option<f64>,
    ifair_b: f64,
}

/// Scales and subsamples a dataset to `cap` records (adversary training is
/// `O(M·N)` per iteration, and LFR/iFair fits are the expensive part).
fn sample(ds: &Dataset, cap: usize, seed: u64) -> Dataset {
    let mut idx: Vec<usize> = (0..ds.n_records()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(cap.min(ds.n_records()));
    let sub = ds.subset(&idx);
    let (_, x) = StandardScaler::fit_transform(&sub.x);
    sub.with_features(x).expect("scaling preserves shape")
}

fn main() {
    let args = ExpArgs::parse();
    let cap = if args.full { 1500 } else { 800 };
    println!(
        "# Figure 4 — adversarial accuracy of predicting the protected group \
         (lower is better, {} mode)\n",
        args.mode()
    );

    let ifair_config = IFairConfig {
        k: 10,
        lambda: 1.0,
        mu: 1.0,
        init: InitStrategy::NearZeroProtected,
        // Pin protected attribute weights near zero: prototype assignment
        // must ignore the protected column for obfuscation to hold (§III-B).
        freeze_protected_alpha: true,
        fairness_pairs: if args.full {
            FairnessPairs::Exact
        } else {
            FairnessPairs::Subsampled { n_pairs: 4000 }
        },
        max_iters: if args.full { 150 } else { 60 },
        n_restarts: if args.full { 3 } else { 2 },
        seed: args.seed,
        ..Default::default()
    };
    let lfr_config = LfrConfig {
        k: 10,
        max_iters: if args.full { 150 } else { 60 },
        n_restarts: if args.full { 3 } else { 2 },
        seed: args.seed,
        ..Default::default()
    };

    let mut tasks: Vec<(String, Dataset, bool)> = Vec::new();
    for (name, ds) in datasets::classification_datasets(args.full, args.seed) {
        tasks.push((name, ds, true));
    }
    for (name, rds) in datasets::ranking_datasets(args.full, args.seed) {
        tasks.push((name, rds.data, false));
    }

    let mut table =
        MarkdownTable::new(["Dataset", "Majority floor", "Masked Data", "LFR", "iFair-b"]);
    let mut rows = Vec::new();
    for (name, ds, has_labels) in tasks {
        eprintln!("[fig4] {name}...");
        let s = sample(&ds, cap, args.seed);
        let masked_acc = adversarial_accuracy(&s.masked_x(), &s.group, args.seed);
        let lfr_acc = if has_labels {
            match Lfr::fit(&s.x, s.labels(), &s.group, &lfr_config) {
                Ok(model) => Some(adversarial_accuracy(
                    &model
                        .transform(&s.x, &s.group)
                        .expect("groups validated by fit"),
                    &s.group,
                    args.seed,
                )),
                Err(e) => {
                    eprintln!("warning: LFR on {name}: {e}");
                    None
                }
            }
        } else {
            None
        };
        let ifair = IFair::fit(&s.x, &s.protected, &ifair_config).expect("iFair fits");
        let ifair_acc = adversarial_accuracy(&ifair.transform(&s.x), &s.group, args.seed);
        let floor = majority_share(&s.group);
        table.row([
            name.clone(),
            f2(floor),
            f2(masked_acc),
            lfr_acc.map(f2).unwrap_or_else(|| "n/a".into()),
            f2(ifair_acc),
        ]);
        rows.push(Row {
            dataset: name,
            majority_floor: floor,
            masked: masked_acc,
            lfr: lfr_acc,
            ifair_b: ifair_acc,
        });
    }
    table.print();
    println!(
        "\nExpected shape (paper): masked data still leaks group membership \
         through correlated proxies; iFair pushes the adversary towards the \
         majority floor on every dataset."
    );
    if let Some(path) = write_json("fig4", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
