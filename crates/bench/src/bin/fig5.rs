//! Figure 5 — enforcing statistical parity post-hoc (§V-F): the FA\*IR
//! algorithm applied to scores predicted from iFair-b representations, with
//! the target minimum protected proportion `p` swept over 0.1..0.9.
//!
//! The paper's key observation: the combined iFair + FA\*IR model reaches
//! whatever protected share the application requires while keeping the
//! individual-fairness (yNN) property of the learned representation.

use ifair_baselines::FairConfig;
use ifair_bench::ranking::{
    apply_rank_repr, eval_fair_rerank, eval_ranking, predict_scores, prepare_ranking, RankRepr,
};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use ifair_core::{FairnessPairs, IFairConfig, InitStrategy};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    p: f64,
    map: f64,
    pct_protected_top10: f64,
    ynn: f64,
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "# Figure 5 — FA*IR applied to iFair representations ({} mode)\n",
        args.mode()
    );

    let fit_cap = if args.full { 1000 } else { 250 };
    let base_config = IFairConfig {
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: if args.full {
            FairnessPairs::Exact
        } else {
            FairnessPairs::Subsampled { n_pairs: 4000 }
        },
        max_iters: if args.full { 150 } else { 60 },
        n_restarts: if args.full { 3 } else { 2 },
        seed: args.seed,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for (name, rds) in datasets::ranking_datasets(args.full, args.seed) {
        // Per-dataset (λ, μ, K): the harmonic-mean winners of Table V.
        let (lambda, mu, k) = if name == "Xing" {
            (0.1, 0.1, 10)
        } else {
            (10.0, 0.1, 20)
        };
        let config = IFairConfig {
            k,
            lambda,
            mu,
            ..base_config.clone()
        };
        let p = prepare_ranking(&rds, &name, fit_cap, args.seed);
        let repr = apply_rank_repr(&p, &RankRepr::IFair(config)).expect("iFair fits");
        let predicted = predict_scores(&p, &repr).expect("regression fits");
        let base = eval_ranking(&p, &predicted);
        println!(
            "## {name} — iFair-b scores without re-ranking: MAP={} %prot={} yNN={}\n",
            f2(base.map),
            f2(base.pct_protected_top10),
            f2(base.ynn)
        );
        let mut table = MarkdownTable::new(["p", "MAP", "% Protected in top 10", "yNN"]);
        for step in 1..=9 {
            let fp = step as f64 / 10.0;
            let m = eval_fair_rerank(
                &p,
                &predicted,
                &FairConfig {
                    p: fp,
                    ..Default::default()
                },
            );
            table.row([
                format!("{fp:.1}"),
                f2(m.map),
                f2(m.pct_protected_top10),
                f2(m.ynn),
            ]);
            rows.push(Row {
                dataset: name.clone(),
                p: fp,
                map: m.map,
                pct_protected_top10: m.pct_protected_top10,
                ynn: m.ynn,
            });
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape: % protected rises with p (reaching any required \
         share), MAP degrades gracefully, yNN stays near the iFair level."
    );
    if let Some(path) = write_json("fig5", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
