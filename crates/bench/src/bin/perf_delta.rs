//! Perf-trajectory delta tool: compares `BENCH_*.json` outputs against a
//! committed baseline and renders a per-kernel Markdown delta table.
//!
//! ```sh
//! # Compare fresh bench output against the committed baseline:
//! perf_delta --baseline results/BENCH_baseline.json \
//!     BENCH_kernels.json BENCH_scaling.json
//!
//! # Refresh the baseline from fresh smoke-size runs:
//! perf_delta --write-baseline results/BENCH_baseline.json \
//!     BENCH_kernels.json BENCH_scaling.json
//! ```
//!
//! The regression gate is **fail-soft** by design: when a benchmark's median
//! exceeds `tolerance ×` its baseline median (default 2.0 — generous,
//! because shared CI runners are noisy) the tool emits a GitHub Actions
//! `::warning::` annotation, but always exits 0 for perf deltas. Only usage
//! and I/O errors exit non-zero, so a noisy runner can never block a merge
//! while the trajectory still gets annotated and archived.

use ifair_bench::timing::{BenchReport, MeasurementRecord};
use std::process::ExitCode;

/// Parsed command line.
struct Args {
    baseline: Option<String>,
    write_baseline: Option<String>,
    tolerance: f64,
    current: Vec<String>,
}

const USAGE: &str = "usage: perf_delta [--baseline <baseline.json>] [--tolerance <ratio>] \
                     [--write-baseline <out.json>] <BENCH_*.json>...";

fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
    let mut parsed = Args {
        baseline: None,
        write_baseline: None,
        tolerance: 2.0,
        current: Vec::new(),
    };
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                parsed.baseline = Some(iter.next().ok_or("--baseline needs a path")?);
            }
            "--write-baseline" => {
                parsed.write_baseline = Some(iter.next().ok_or("--write-baseline needs a path")?);
            }
            "--tolerance" => {
                let raw = iter.next().ok_or("--tolerance needs a ratio")?;
                parsed.tolerance = raw
                    .parse::<f64>()
                    .map_err(|_| format!("invalid tolerance '{raw}'"))?;
                if !(parsed.tolerance.is_finite() && parsed.tolerance >= 1.0) {
                    return Err(format!(
                        "tolerance must be a finite ratio >= 1.0, got {}",
                        parsed.tolerance
                    ));
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => parsed.current.push(other.to_string()),
        }
    }
    if parsed.current.is_empty() {
        return Err("no current BENCH_*.json files given".into());
    }
    if parsed.baseline.is_none() && parsed.write_baseline.is_none() {
        return Err("nothing to do: pass --baseline and/or --write-baseline".into());
    }
    Ok(parsed)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Flattens several reports into `(bench/name, record)` rows, prefixing each
/// measurement with its bench stem so kernels and scaling never collide. A
/// merged baseline (bench stem `baseline`, written by `--write-baseline`)
/// already carries prefixed names and is taken verbatim.
fn flatten(reports: &[BenchReport]) -> Vec<(String, MeasurementRecord)> {
    let mut rows = Vec::new();
    for report in reports {
        for m in &report.measurements {
            let name = if report.bench == "baseline" {
                m.name.clone()
            } else {
                format!("{}/{}", report.bench, m.name)
            };
            rows.push((name, m.clone()));
        }
    }
    rows
}

/// The `backend/precision` variant cell of a measurement row, `—` when the
/// row is untagged (backend-agnostic or written before the fields existed).
fn variant(m: &MeasurementRecord) -> String {
    match (&m.backend, &m.precision) {
        (None, None) => "—".into(),
        (backend, precision) => format!(
            "{}/{}",
            backend.as_deref().unwrap_or("-"),
            precision.as_deref().unwrap_or("-")
        ),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run(args: Args) -> Result<(), String> {
    let current_reports: Vec<BenchReport> = args
        .current
        .iter()
        .map(|p| load_report(p))
        .collect::<Result<_, _>>()?;
    let current = flatten(&current_reports);

    if let Some(baseline_path) = &args.baseline {
        let baseline_report = load_report(baseline_path)?;
        let baseline = flatten(std::slice::from_ref(&baseline_report));
        let mut regressions = 0usize;
        let mut missing = 0usize;

        println!(
            "\n### perf trajectory vs `{baseline_path}` (tolerance {}x)\n",
            args.tolerance
        );
        println!("| benchmark | variant | baseline median | current median | ratio | status |");
        println!("|-----------|---------|-----------------|----------------|-------|--------|");
        for (name, m) in &current {
            match baseline.iter().find(|(b, _)| b == name) {
                Some((_, base)) if base.median_ns > 0 => {
                    let ratio = m.median_ns as f64 / base.median_ns as f64;
                    let status = if ratio > args.tolerance {
                        regressions += 1;
                        println!(
                            "::warning title=perf regression::{name} median {} vs baseline {} \
                             ({ratio:.2}x > {}x tolerance)",
                            fmt_ns(m.median_ns),
                            fmt_ns(base.median_ns),
                            args.tolerance
                        );
                        "REGRESSED"
                    } else if ratio < 1.0 / args.tolerance {
                        "improved"
                    } else {
                        "ok"
                    };
                    println!(
                        "| {name} | {} | {} | {} | {ratio:.2}x | {status} |",
                        variant(m),
                        fmt_ns(base.median_ns),
                        fmt_ns(m.median_ns)
                    );
                }
                _ => {
                    // One-sided: present now, absent from (or zero in) the
                    // baseline. A `::notice::` keeps it visible in the CI
                    // annotations until the baseline is refreshed, without
                    // failing anything — new benchmarks are expected to
                    // appear one PR before their baseline entry does.
                    missing += 1;
                    println!(
                        "::notice title=perf baseline gap::{name} has no baseline entry \
                         (current median {}); refresh results/BENCH_baseline.json to track it",
                        fmt_ns(m.median_ns)
                    );
                    println!(
                        "| {name} | {} | — | {} | — | new |",
                        variant(m),
                        fmt_ns(m.median_ns)
                    );
                }
            }
        }
        for (name, base) in &baseline {
            if !current.iter().any(|(c, _)| c == name) {
                println!(
                    "::notice title=perf baseline gap::{name} is in the baseline but was not \
                     measured in this run (baseline median {})",
                    fmt_ns(base.median_ns)
                );
                println!(
                    "| {name} | {} | {} | — | — | dropped |",
                    variant(base),
                    fmt_ns(base.median_ns)
                );
            }
        }
        println!(
            "\n{} benchmarks compared, {regressions} regressed (warn-only), {missing} new",
            current.len()
        );
    }

    if let Some(out) = &args.write_baseline {
        let threads = current_reports
            .first()
            .map(|r| r.available_threads)
            .unwrap_or(0);
        let n_records = current_reports
            .iter()
            .map(|r| r.n_records)
            .max()
            .unwrap_or(0);
        let mut merged = BenchReport::new("baseline", threads, n_records);
        merged.measurements = current
            .iter()
            .map(|(name, m)| MeasurementRecord {
                name: name.clone(),
                ..m.clone()
            })
            .collect();
        let json = serde_json::to_string_pretty(&merged).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote baseline with {} measurements to {out}",
            current.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("perf_delta: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_invocation() {
        let a = parse_args(strings(&[
            "--baseline",
            "base.json",
            "--tolerance",
            "3.5",
            "cur1.json",
            "cur2.json",
        ]))
        .unwrap();
        assert_eq!(a.baseline.as_deref(), Some("base.json"));
        assert_eq!(a.tolerance, 3.5);
        assert_eq!(a.current, vec!["cur1.json", "cur2.json"]);
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(strings(&["--baseline", "b.json"])).is_err());
        assert!(parse_args(strings(&["cur.json"])).is_err());
        assert!(parse_args(strings(&[
            "--baseline",
            "b.json",
            "--tolerance",
            "0.5",
            "c.json"
        ]))
        .is_err());
        assert!(parse_args(strings(&["--bogus", "c.json"])).is_err());
    }

    #[test]
    fn flatten_prefixes_with_bench_stem() {
        let mut a = BenchReport::new("kernels", 1, 10);
        a.measurements.push(MeasurementRecord {
            name: "value".into(),
            min_ns: 1,
            median_ns: 2,
            mean_ns: 3,
            backend: None,
            precision: None,
            peak_rss_bytes: None,
        });
        let rows = flatten(&[a]);
        assert_eq!(rows[0].0, "kernels/value");

        // A merged baseline is already prefixed and stays verbatim.
        let mut b = BenchReport::new("baseline", 1, 10);
        b.measurements.push(MeasurementRecord {
            name: "kernels/value".into(),
            min_ns: 1,
            median_ns: 2,
            mean_ns: 3,
            backend: None,
            precision: None,
            peak_rss_bytes: None,
        });
        let rows = flatten(&[b]);
        assert_eq!(rows[0].0, "kernels/value");
    }

    #[test]
    fn variant_cells_render_tags_and_fall_back_to_a_dash() {
        let mut m = MeasurementRecord {
            name: "x".into(),
            min_ns: 1,
            median_ns: 2,
            mean_ns: 3,
            backend: None,
            precision: None,
            peak_rss_bytes: None,
        };
        assert_eq!(variant(&m), "—");
        m.backend = Some("simd".into());
        m.precision = Some("f32".into());
        assert_eq!(variant(&m), "simd/f32");
        m.precision = None;
        assert_eq!(variant(&m), "simd/-");
    }

    #[test]
    fn formats_durations_by_scale() {
        assert_eq!(fmt_ns(5), "5 ns");
        assert!(fmt_ns(5_000).ends_with("µs"));
        assert!(fmt_ns(5_000_000).ends_with("ms"));
        assert!(fmt_ns(5_000_000_000).ends_with('s'));
    }
}
