//! Table I — the motivating "Brand Strategist" example (§I).
//!
//! Regenerates the paper's opening exhibit from the Xing simulator: the
//! top-k candidates of one job query, ranked by the portal's (deserved)
//! score, showing that individuals with very similar qualifications can land
//! on far-apart ranks. A quantitative footer contrasts the consistency (yNN)
//! of the raw ranking against iFair scores on the same query.

use ifair_bench::ranking::{
    apply_rank_repr, eval_ranking, predict_scores, prepare_ranking, RankRepr,
};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::ExpArgs;
use ifair_core::{FairnessPairs, IFairConfig};
use ifair_data::generators::xing::{self, XingConfig};
use ifair_metrics::ranking_from_scores;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    rank: usize,
    work_experience: f64,
    education_experience: f64,
    gender: &'static str,
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "# Table I — top-k results for the job query \"Brand Strategist\" ({} mode)\n",
        args.mode()
    );

    let rds = xing::generate(&XingConfig {
        n_queries: 57,
        seed: args.seed,
    });
    let data = &rds.data;
    let query = &rds.queries[0];
    assert_eq!(query.id, "Brand Strategist");

    let col = |name: &str| {
        data.feature_names
            .iter()
            .position(|n| n == name)
            .expect("xing schema has qualification columns")
    };
    let (work_col, edu_col) = (col("work_experience"), col("education_experience"));

    let scores: Vec<f64> = query.indices.iter().map(|&i| data.labels()[i]).collect();
    let order = ranking_from_scores(&scores);

    let mut table = MarkdownTable::new([
        "Search Query",
        "Work Experience",
        "Education Experience",
        "Candidate",
        "Xing Ranking",
    ]);
    let mut rows = Vec::new();
    let shown: Vec<usize> = (0..10).chain([19, 29, 39]).collect();
    for &pos in &shown {
        let Some(&local) = order.get(pos) else {
            continue;
        };
        let record = query.indices[local];
        let gender = if data.group[record] == 1 {
            "female"
        } else {
            "male"
        };
        let row = Row {
            rank: pos + 1,
            work_experience: data.x.get(record, work_col),
            education_experience: data.x.get(record, edu_col),
            gender,
        };
        table.row([
            "Brand Strategist".to_string(),
            format!("{:.0}", row.work_experience),
            format!("{:.0}", row.education_experience),
            row.gender.to_string(),
            format!("{}", row.rank),
        ]);
        rows.push(row);
    }
    table.print();

    // Quantitative footer: consistency of the raw ranking vs iFair scores.
    let prepared = prepare_ranking(&rds, "Xing", if args.full { 1000 } else { 250 }, args.seed);
    let raw = eval_ranking(
        &prepared,
        &predict_scores(
            &prepared,
            &apply_rank_repr(&prepared, &RankRepr::Masked).unwrap(),
        )
        .unwrap(),
    );
    let config = IFairConfig {
        k: 10,
        fairness_pairs: if args.full {
            FairnessPairs::Exact
        } else {
            FairnessPairs::Subsampled { n_pairs: 4000 }
        },
        max_iters: if args.full { 150 } else { 60 },
        seed: args.seed,
        ..Default::default()
    };
    let ifair = eval_ranking(
        &prepared,
        &predict_scores(
            &prepared,
            &apply_rank_repr(&prepared, &RankRepr::IFair(config)).unwrap(),
        )
        .unwrap(),
    );
    println!(
        "\nIndividual fairness of scores across all 57 queries: \
         masked-data ranking yNN = {}, iFair yNN = {}.",
        f2(raw.ynn),
        f2(ifair.ynn)
    );
    println!(
        "People with near-identical qualifications can differ by dozens of \
         ranks in the raw ranking; iFair scores are consistent across such \
         pairs (higher yNN)."
    );
    if let Some(path) = write_json("table1", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
