//! Table II — experimental settings and statistics of the datasets.
//!
//! Prints, for each of the five (simulated) datasets, the record count `N`,
//! encoded dimensionality `M`, base rates of the positive class per group,
//! outcome and protected attribute — next to the paper's published values.

use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    base_rate_protected: Option<f64>,
    base_rate_unprotected: Option<f64>,
    n_records: usize,
    n_encoded: usize,
    outcome: &'static str,
    protected: &'static str,
}

fn main() {
    let args = ExpArgs::parse();
    println!("# Table II — dataset statistics ({} mode)\n", args.mode());

    // Paper rows: (name, base-rate prot, base-rate unprot, N, M, outcome, protected).
    let paper = [
        (
            "Compas",
            Some((0.52, 0.40)),
            6901,
            431,
            "recidivism",
            "race",
        ),
        ("Census", Some((0.12, 0.31)), 48842, 101, "income", "gender"),
        (
            "Credit",
            Some((0.67, 0.72)),
            1000,
            67,
            "loan default",
            "age",
        ),
        ("Xing", None, 2240, 59, "work + education", "gender"),
        ("Airbnb", None, 27597, 33, "rating/price", "gender"),
    ];

    let mut rows = Vec::new();
    for (name, ds) in datasets::classification_datasets(args.full, args.seed) {
        let (rate_p, rate_u) = ds.base_rates();
        rows.push(Row {
            dataset: name,
            base_rate_protected: Some(rate_p),
            base_rate_unprotected: Some(rate_u),
            n_records: ds.n_records(),
            n_encoded: ds.n_features(),
            outcome: "",
            protected: "",
        });
    }
    for (name, rds) in datasets::ranking_datasets(args.full, args.seed) {
        rows.push(Row {
            dataset: name,
            base_rate_protected: None,
            base_rate_unprotected: None,
            n_records: rds.data.n_records(),
            n_encoded: rds.data.n_features(),
            outcome: "",
            protected: "",
        });
    }

    let mut table = MarkdownTable::new([
        "Dataset",
        "Base-rate prot (paper)",
        "Base-rate unprot (paper)",
        "N (paper)",
        "M (paper)",
        "Outcome",
        "Protected",
    ]);
    for (row, (pname, prates, pn, pm, outcome, protected)) in rows.iter_mut().zip(paper) {
        assert_eq!(row.dataset, pname, "dataset order must match the paper");
        row.outcome = outcome;
        row.protected = protected;
        let fmt_rate = |ours: Option<f64>, paper: Option<f64>| match (ours, paper) {
            (Some(o), Some(p)) => format!("{} ({})", f2(o), f2(p)),
            _ => "-".to_string(),
        };
        table.row([
            row.dataset.clone(),
            fmt_rate(row.base_rate_protected, prates.map(|r| r.0)),
            fmt_rate(row.base_rate_unprotected, prates.map(|r| r.1)),
            format!("{} ({pn})", row.n_records),
            format!("{} ({pm})", row.n_encoded),
            outcome.to_string(),
            protected.to_string(),
        ]);
    }
    table.print();
    if let Some(path) = write_json("table2", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
