//! Table III — classification detail (§V-D): Acc, AUC, EqOpp, Parity and
//! yNN for LFR vs iFair-a vs iFair-b under three hyper-parameter tuning
//! criteria, plus the Full Data baseline, on Compas, Census and Credit.

use ifair_bench::classification::{
    eval_classification, grid_search_ifair, grid_search_lfr, prepare_classification, repr_identity,
    select_best, ClsMetrics, GridSpec, PrepareCaps, Tuning,
};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use ifair_core::InitStrategy;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    tuning: String,
    method: String,
    params: String,
    acc: f64,
    auc: f64,
    eq_opp: f64,
    parity: f64,
    ynn: f64,
}

fn push_row(
    rows: &mut Vec<Row>,
    table: &mut MarkdownTable,
    dataset: &str,
    tuning: &str,
    method: &str,
    params: &str,
    m: &ClsMetrics,
) {
    table.row([
        tuning.to_string(),
        method.to_string(),
        f2(m.acc),
        f2(m.auc),
        f2(m.eq_opp),
        f2(m.parity),
        f2(m.ynn),
    ]);
    rows.push(Row {
        dataset: dataset.to_string(),
        tuning: tuning.to_string(),
        method: method.to_string(),
        params: params.to_string(),
        acc: m.acc,
        auc: m.auc,
        eq_opp: m.eq_opp,
        parity: m.parity,
        ynn: m.ynn,
    });
}

fn main() {
    let args = ExpArgs::parse();
    let spec = GridSpec::for_mode(args.full);
    let caps = PrepareCaps::for_mode(args.full);
    println!(
        "# Table III — classification task, three tuning criteria ({} mode)\n",
        args.mode()
    );

    let mut rows = Vec::new();
    for (name, ds) in datasets::classification_datasets(args.full, args.seed) {
        eprintln!("[table3] running grids on {name}...");
        let p = prepare_classification(&ds, &name, args.seed, caps);

        let (_, full_test) = eval_classification(&p, &repr_identity(&p, false));
        let lfr = grid_search_lfr(&p, &spec, args.seed);
        let ifair_a = grid_search_ifair(&p, InitStrategy::RandomUniform, &spec, args.seed);
        let ifair_b = grid_search_ifair(&p, InitStrategy::NearZeroProtected, &spec, args.seed);

        println!("## {name}\n");
        let mut table =
            MarkdownTable::new(["Tuning", "Method", "Acc", "AUC", "EqOpp", "Parity", "yNN"]);
        push_row(
            &mut rows,
            &mut table,
            &name,
            "Baseline",
            "Full Data",
            "",
            &full_test,
        );
        for tuning in Tuning::all() {
            for (method, grid) in [("LFR", &lfr), ("iFair-a", &ifair_a), ("iFair-b", &ifair_b)] {
                let best = select_best(grid, tuning);
                push_row(
                    &mut rows,
                    &mut table,
                    &name,
                    tuning.label(),
                    method,
                    &best.params,
                    &best.test,
                );
            }
        }
        table.print();
        println!();
    }
    println!(
        "Expected shape (paper): under criterion (c) both iFair variants \
         beat LFR on yNN with on-par or better utility; Full Data has the \
         best accuracy but the worst consistency."
    );
    if let Some(path) = write_json("table3", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
