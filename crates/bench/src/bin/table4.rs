//! Table IV — sensitivity of the Xing results to the ranking-score weights
//! (§V-E): seven weight triples over work experience, education experience
//! and profile views; for each, the protected base rate of the deserved
//! top-10, and iFair-b's MAP, KT, yNN and protected share.

use ifair_bench::ranking::{
    apply_rank_repr, eval_ranking, predict_scores, prepare_ranking, RankRepr, TOP_K,
};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::ExpArgs;
use ifair_core::{FairnessPairs, IFairConfig, InitStrategy};
use ifair_data::generators::xing::{self, ScoreWeights, XingConfig};
use ifair_data::RankingDataset;
use ifair_metrics::{protected_share_top_k, ranking_from_scores};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    w_work: f64,
    w_edu: f64,
    w_views: f64,
    base_rate_protected: f64,
    map: f64,
    kt: f64,
    ynn: f64,
    pct_protected_output: f64,
}

/// Mean protected share in the deserved top-10 across queries.
fn deserved_protected_share(rds: &RankingDataset) -> f64 {
    let scores = rds.data.labels();
    let mut total = 0.0;
    for q in &rds.queries {
        let local: Vec<f64> = q.indices.iter().map(|&i| scores[i]).collect();
        let group: Vec<u8> = q.indices.iter().map(|&i| rds.data.group[i]).collect();
        total += protected_share_top_k(&ranking_from_scores(&local), &group, TOP_K);
    }
    total / rds.queries.len().max(1) as f64
}

fn main() {
    let args = ExpArgs::parse();
    println!(
        "# Table IV — iFair sensitivity to ranking-score weights, Xing ({} mode)\n",
        args.mode()
    );

    // The paper's seven weight triples (α_work, α_edu, α_views).
    let weight_rows = [
        (0.00, 0.50, 1.00),
        (0.25, 0.75, 0.00),
        (0.50, 1.00, 0.25),
        (0.75, 0.00, 0.50),
        (0.75, 0.25, 0.00),
        (1.00, 0.25, 0.75),
        (1.00, 1.00, 1.00),
    ];

    let base = xing::generate(&XingConfig {
        n_queries: 57,
        seed: args.seed,
    });
    let fit_cap = if args.full { 1000 } else { 250 };
    let config = IFairConfig {
        k: 10,
        lambda: 0.1,
        mu: 0.1,
        init: InitStrategy::NearZeroProtected,
        fairness_pairs: if args.full {
            FairnessPairs::Exact
        } else {
            FairnessPairs::Subsampled { n_pairs: 4000 }
        },
        max_iters: if args.full { 150 } else { 60 },
        n_restarts: if args.full { 3 } else { 2 },
        seed: args.seed,
        ..Default::default()
    };

    let mut table = MarkdownTable::new([
        "α_work",
        "α_edu",
        "α_views",
        "Base-rate protected (top 10)",
        "MAP",
        "KT",
        "yNN",
        "% Protected in output",
    ]);
    let mut rows = Vec::new();
    for (w_work, w_edu, w_views) in weight_rows {
        // Reweight the deserved score, then run the iFair-b pipeline.
        let mut rds = base.clone();
        rds.data.y = Some(xing::deserved_scores(
            &rds.data,
            ScoreWeights {
                work: w_work,
                education: w_edu,
                views: w_views,
            },
        ));
        let base_rate = deserved_protected_share(&rds);
        let p = prepare_ranking(&rds, "Xing", fit_cap, args.seed);
        let repr = apply_rank_repr(&p, &RankRepr::IFair(config.clone())).expect("iFair fits");
        let m = eval_ranking(&p, &predict_scores(&p, &repr).expect("regression fits"));
        table.row([
            f2(w_work),
            f2(w_edu),
            f2(w_views),
            f2(base_rate),
            f2(m.map),
            f2(m.kt),
            f2(m.ynn),
            f2(m.pct_protected_top10),
        ]);
        rows.push(Row {
            w_work,
            w_edu,
            w_views,
            base_rate_protected: base_rate,
            map: m.map,
            kt: m.kt,
            ynn: m.ynn,
            pct_protected_output: m.pct_protected_top10,
        });
    }
    table.print();
    println!(
        "\nPaper finding to check: \"the choice of weights has no significant \
         effect on the measures of interest\"."
    );
    if let Some(path) = write_json("table4", &rows) {
        println!("\nraw results: {}", path.display());
    }
}
