//! Table V — the ranking task (§V-E): MAP, Kendall's τ, yNN and the share
//! of protected candidates in the top 10, for seven methods on Xing (57
//! queries) and Airbnb (43 queries).
//!
//! iFair-b is tuned like the paper's reported criterion "Optimal": the
//! `(λ, μ, K)` cell with the best harmonic mean of MAP and yNN. FA\*IR runs
//! at the paper's `p` values (0.5/0.9 on Xing, 0.5/0.6 on Airbnb).

use ifair_baselines::FairConfig;
use ifair_bench::classification::GridSpec;
use ifair_bench::exec::parallel_map;
use ifair_bench::ranking::{
    apply_rank_repr, eval_fair_rerank, eval_ranking, predict_scores, prepare_ranking,
    PreparedRanking, RankMetrics, RankRepr,
};
use ifair_bench::report::{f2, write_json, MarkdownTable};
use ifair_bench::{datasets, ExpArgs};
use ifair_core::{IFairConfig, InitStrategy};
use ifair_metrics::harmonic_mean;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    method: String,
    map: f64,
    kt: f64,
    ynn: f64,
    pct_protected_top10: f64,
}

/// Grid-searches iFair-b for the best harmonic mean of MAP and yNN.
fn tuned_ifair(p: &PreparedRanking, spec: &GridSpec, seed: u64) -> (RankMetrics, String) {
    let mut cells = Vec::new();
    for &lambda in &spec.coeffs {
        for &mu in &spec.coeffs {
            if lambda == 0.0 && mu == 0.0 {
                continue;
            }
            for &k in &spec.ks {
                cells.push((lambda, mu, k));
            }
        }
    }
    let evaluated = parallel_map(cells, |(lambda, mu, k)| {
        let config = IFairConfig {
            k,
            lambda,
            mu,
            init: InitStrategy::NearZeroProtected,
            fairness_pairs: spec.fairness_pairs,
            n_restarts: spec.n_restarts,
            max_iters: spec.max_iters,
            seed,
            ..Default::default()
        };
        let repr = apply_rank_repr(p, &RankRepr::IFair(config)).expect("valid grid cell");
        let m = eval_ranking(p, &predict_scores(p, &repr).expect("regression fits"));
        (m, format!("λ={lambda} μ={mu} K={k}"))
    });
    evaluated
        .into_iter()
        .max_by(|(a, _), (b, _)| {
            harmonic_mean(a.map, a.ynn)
                .partial_cmp(&harmonic_mean(b.map, b.ynn))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("grid non-empty")
}

fn main() {
    let args = ExpArgs::parse();
    let spec = GridSpec::for_mode(args.full);
    let fit_cap = if args.full { 1000 } else { 250 };
    println!("# Table V — ranking task ({} mode)\n", args.mode());

    let mut rows: Vec<Row> = Vec::new();
    for (name, rds) in datasets::ranking_datasets(args.full, args.seed) {
        let p = prepare_ranking(&rds, &name, fit_cap, args.seed);
        println!("## {name} ({} queries)\n", p.queries.len());
        let mut table = MarkdownTable::new([
            "Method",
            "MAP (AP@10)",
            "KT (mean)",
            "yNN (mean)",
            "% Protected in top 10",
        ]);
        let mut push = |method: String, m: RankMetrics| {
            table.row([
                method.clone(),
                f2(m.map),
                f2(m.kt),
                f2(m.ynn),
                f2(m.pct_protected_top10),
            ]);
            rows.push(Row {
                dataset: name.clone(),
                method,
                map: m.map,
                kt: m.kt,
                ynn: m.ynn,
                pct_protected_top10: m.pct_protected_top10,
            });
        };

        // The four untuned representation baselines.
        let svd_k = 10;
        for method in [
            RankRepr::Full,
            RankRepr::Masked,
            RankRepr::Svd { k: svd_k },
            RankRepr::SvdMasked { k: svd_k },
        ] {
            let repr = apply_rank_repr(&p, &method).expect("baseline repr");
            let m = eval_ranking(&p, &predict_scores(&p, &repr).expect("regression fits"));
            push(method.label(), m);
        }

        // FA*IR on masked-data scores at the paper's p values.
        let masked_scores = predict_scores(
            &p,
            &apply_rank_repr(&p, &RankRepr::Masked).expect("masked repr"),
        )
        .expect("regression fits");
        let fair_ps: &[f64] = if name == "Xing" {
            &[0.5, 0.9]
        } else {
            &[0.5, 0.6]
        };
        for &fp in fair_ps {
            let m = eval_fair_rerank(
                &p,
                &masked_scores,
                &FairConfig {
                    p: fp,
                    ..Default::default()
                },
            );
            push(format!("FA*IR (p = {fp})"), m);
        }

        // iFair-b tuned for the harmonic mean of MAP and yNN.
        let (m, params) = tuned_ifair(&p, &spec, args.seed);
        push(format!("iFair-b [{params}]"), m);
        table.print();
        println!();
    }

    if let Some(path) = write_json("table5", &rows) {
        println!("raw results: {}", path.display());
    }
}
