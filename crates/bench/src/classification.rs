//! The classification experiment pipeline of §V-D (Fig. 3, Table III) and
//! the synthetic study of §IV (Fig. 2).
//!
//! Mirrors the paper's setup (§V-B): features scaled to unit variance, one
//! random three-way split shared by all methods, a logistic-regression
//! classifier trained on each method's representation, and a grid search
//! over mixture coefficients and the prototype count `K` tuned on the
//! validation split under three criteria (max utility / max individual
//! fairness / best harmonic mean).

use crate::exec::parallel_map;
use ifair_api::{Estimator, FitError, Transform};
use ifair_baselines::{Lfr, LfrConfig, SvdConfig};
use ifair_core::{FairnessPairs, IFair, IFairConfig, InitStrategy};
use ifair_data::{train_val_test_split, Dataset, StandardScaler};
use ifair_linalg::Matrix;
use ifair_metrics::{
    accuracy, auc, consistency_with_neighbors, equal_opportunity, harmonic_mean, k_nearest_all,
    statistical_parity,
};
use ifair_models::LogisticRegression;
use serde::Serialize;

/// Neighbourhood size of the yNN consistency measure (§V-C: `k = 10`).
pub const YNN_K: usize = 10;

/// A dataset prepared for the classification pipeline: scaled, split, with
/// yNN neighbourhoods precomputed once (they depend only on the original
/// masked attributes, not on the representation under evaluation).
pub struct PreparedData {
    /// Dataset name (for reports).
    pub name: String,
    /// Scaled training split.
    pub train: Dataset,
    /// Scaled validation split (hyper-parameter tuning).
    pub val: Dataset,
    /// Scaled test split (reported numbers).
    pub test: Dataset,
    /// Subset of `train` used to fit representation models (capped so the
    /// `O(M²)` fairness loss stays tractable; see DESIGN.md).
    pub fit: Dataset,
    /// `k=10` neighbourhoods on the validation split's masked attributes.
    pub val_neighbors: Vec<Vec<usize>>,
    /// `k=10` neighbourhoods on the test split's masked attributes.
    pub test_neighbors: Vec<Vec<usize>>,
}

/// Caps applied while preparing a dataset.
#[derive(Debug, Clone, Copy)]
pub struct PrepareCaps {
    /// Maximum records used to fit representation models.
    pub fit_cap: usize,
    /// Maximum records in the validation and test splits (evaluation cost is
    /// dominated by the `O(M²)` yNN neighbourhood computation).
    pub eval_cap: usize,
}

impl PrepareCaps {
    /// Caps for the given mode: quick keeps every experiment laptop-sized.
    pub fn for_mode(full: bool) -> PrepareCaps {
        if full {
            PrepareCaps {
                fit_cap: 1000,
                eval_cap: 2000,
            }
        } else {
            PrepareCaps {
                fit_cap: 250,
                eval_cap: 500,
            }
        }
    }
}

/// Scales, splits and precomputes neighbourhoods for a labeled dataset.
pub fn prepare_classification(
    ds: &Dataset,
    name: &str,
    seed: u64,
    caps: PrepareCaps,
) -> PreparedData {
    let split = train_val_test_split(ds.n_records(), 1.0 / 3.0, 1.0 / 3.0, seed);
    let train_raw = ds.subset(&split.train);
    // §V-B: "all feature vectors are normalized to have unit variance" —
    // the scaler is fit on the training split only to avoid leakage.
    let scaler = StandardScaler::fit(&train_raw.x);
    let scaled = |subset: Dataset| -> Dataset {
        let x = scaler.transform(&subset.x);
        subset.with_features(x).expect("scaling preserves shape")
    };
    let train = scaled(train_raw);
    let val = scaled(ds.subset(&cap_indices(&split.val, caps.eval_cap)));
    let test = scaled(ds.subset(&cap_indices(&split.test, caps.eval_cap)));
    let fit = train.subset(&cap_indices(
        &(0..train.n_records()).collect::<Vec<_>>(),
        caps.fit_cap,
    ));

    let val_neighbors = k_nearest_all(
        &val.masked_x(),
        YNN_K.min(val.n_records().saturating_sub(1)),
    );
    let test_neighbors = k_nearest_all(
        &test.masked_x(),
        YNN_K.min(test.n_records().saturating_sub(1)),
    );
    PreparedData {
        name: name.to_string(),
        train,
        val,
        test,
        fit,
        val_neighbors,
        test_neighbors,
    }
}

fn cap_indices(indices: &[usize], cap: usize) -> Vec<usize> {
    indices[..indices.len().min(cap)].to_vec()
}

/// Representations of the three splits under one method.
pub struct ReprSet {
    /// Training-split representation (classifier input).
    pub train: Matrix,
    /// Validation-split representation.
    pub val: Matrix,
    /// Test-split representation.
    pub test: Matrix,
}

/// Identity representation: *Full Data* (or *Masked Data* when `masked`).
pub fn repr_identity(p: &PreparedData, masked: bool) -> ReprSet {
    let pick = |d: &Dataset| if masked { d.masked_x() } else { d.x.clone() };
    ReprSet {
        train: pick(&p.train),
        val: pick(&p.val),
        test: pick(&p.test),
    }
}

/// Truncated-SVD representation on full or masked features (rank `k`) —
/// the masked-column handling lives in [`SvdConfig`], not here.
pub fn repr_svd(p: &PreparedData, k: usize, masked: bool) -> Result<ReprSet, FitError> {
    let svd = SvdConfig { k, masked }.fit(&p.fit)?;
    Ok(ReprSet {
        train: Transform::transform(&svd, &p.train)?,
        val: Transform::transform(&svd, &p.val)?,
        test: Transform::transform(&svd, &p.test)?,
    })
}

/// LFR representation (fit on the capped training subset).
pub fn repr_lfr(p: &PreparedData, config: &LfrConfig) -> Result<(ReprSet, Lfr), FitError> {
    let y = p.fit.labels();
    let model = Lfr::fit(&p.fit.x, y, &p.fit.group, config)?;
    Ok((
        ReprSet {
            train: model.transform(&p.train.x, &p.train.group)?,
            val: model.transform(&p.val.x, &p.val.group)?,
            test: model.transform(&p.test.x, &p.test.group)?,
        },
        model,
    ))
}

/// iFair representation (fit on the capped training subset).
pub fn repr_ifair(p: &PreparedData, config: &IFairConfig) -> Result<(ReprSet, IFair), FitError> {
    let model = IFair::fit(&p.fit.x, &p.fit.protected, config)?;
    Ok((
        ReprSet {
            train: model.transform(&p.train.x),
            val: model.transform(&p.val.x),
            test: model.transform(&p.test.x),
        },
        model,
    ))
}

/// The paper's classification metrics (§V-C), all "higher is better".
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ClsMetrics {
    /// Classifier accuracy.
    pub acc: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Equality of opportunity `1 - |ΔTPR|`.
    pub eq_opp: f64,
    /// Statistical parity `1 - |Δ positive rate|`.
    pub parity: f64,
    /// yNN consistency (individual fairness).
    pub ynn: f64,
}

/// Trains logistic regression on `(repr.train, train labels)` and evaluates
/// on the validation and test splits. Returns `(val, test)` metrics.
pub fn eval_classification(p: &PreparedData, repr: &ReprSet) -> (ClsMetrics, ClsMetrics) {
    let model = LogisticRegression::fit_default(&repr.train, p.train.labels())
        .expect("representation rows align with training labels");
    let eval = |x: &Matrix, ds: &Dataset, neighbors: &[Vec<usize>]| -> ClsMetrics {
        let proba = model.predict_proba(x);
        let preds: Vec<f64> = proba
            .iter()
            .map(|&pr| if pr > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let y = ds.labels();
        ClsMetrics {
            acc: accuracy(y, &preds),
            auc: auc(y, &proba),
            eq_opp: equal_opportunity(y, &preds, &ds.group),
            parity: statistical_parity(&preds, &ds.group),
            ynn: consistency_with_neighbors(neighbors, &preds),
        }
    };
    (
        eval(&repr.val, &p.val, &p.val_neighbors),
        eval(&repr.test, &p.test, &p.test_neighbors),
    )
}

/// Hyper-parameter grid for the learned representations.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Mixture-coefficient grid (the paper's `{0, 0.05, 0.1, 1, 10, 100}`).
    pub coeffs: Vec<f64>,
    /// Prototype counts (the paper's `{10, 20, 30}`).
    pub ks: Vec<usize>,
    /// Restarts per cell (the paper's best-of-3).
    pub n_restarts: usize,
    /// L-BFGS iteration budget per restart.
    pub max_iters: usize,
    /// Fairness-pair policy for iFair fits.
    pub fairness_pairs: FairnessPairs,
}

impl GridSpec {
    /// The paper's exact grid (§V-B).
    pub fn paper() -> GridSpec {
        GridSpec {
            coeffs: vec![0.0, 0.05, 0.1, 1.0, 10.0, 100.0],
            ks: vec![10, 20, 30],
            n_restarts: 3,
            max_iters: 150,
            fairness_pairs: FairnessPairs::Exact,
        }
    }

    /// Reduced grid preserving the trade-off shape at a fraction of the cost.
    pub fn quick() -> GridSpec {
        GridSpec {
            coeffs: vec![0.1, 1.0, 10.0],
            ks: vec![10, 20],
            n_restarts: 2,
            max_iters: 60,
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 4000 },
        }
    }

    /// Grid for the given mode.
    pub fn for_mode(full: bool) -> GridSpec {
        if full {
            GridSpec::paper()
        } else {
            GridSpec::quick()
        }
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone, Serialize)]
pub struct GridPoint {
    /// Method label (`iFair-a`, `iFair-b`, `LFR`, ...).
    pub method: String,
    /// Cell parameters, e.g. `λ=1 μ=10 K=20`.
    pub params: String,
    /// Validation metrics (used for tuning).
    pub val: ClsMetrics,
    /// Test metrics (reported).
    pub test: ClsMetrics,
}

/// Evaluates iFair over the full `(λ, μ, K)` grid (both-zero cells skipped),
/// cells fanned out over available cores.
pub fn grid_search_ifair(
    p: &PreparedData,
    init: InitStrategy,
    spec: &GridSpec,
    seed: u64,
) -> Vec<GridPoint> {
    let method = match init {
        InitStrategy::RandomUniform => "iFair-a",
        InitStrategy::NearZeroProtected => "iFair-b",
    };
    let mut cells = Vec::new();
    for &lambda in &spec.coeffs {
        for &mu in &spec.coeffs {
            if lambda == 0.0 && mu == 0.0 {
                continue;
            }
            for &k in &spec.ks {
                cells.push((lambda, mu, k));
            }
        }
    }
    parallel_map(cells, |(lambda, mu, k)| {
        let config = IFairConfig {
            k: k.min(p.fit.n_records().saturating_sub(1).max(1)),
            lambda,
            mu,
            init,
            fairness_pairs: spec.fairness_pairs,
            n_restarts: spec.n_restarts,
            max_iters: spec.max_iters,
            seed,
            ..Default::default()
        };
        let (repr, _) = repr_ifair(p, &config).expect("validated grid cell");
        let (val, test) = eval_classification(p, &repr);
        GridPoint {
            method: method.to_string(),
            params: format!("λ={lambda} μ={mu} K={k}"),
            val,
            test,
        }
    })
}

/// Evaluates LFR over the `(A_x, A_z, K)` grid with `A_y = 1` fixed (only
/// the relative scale of the three coefficients matters).
pub fn grid_search_lfr(p: &PreparedData, spec: &GridSpec, seed: u64) -> Vec<GridPoint> {
    let mut cells = Vec::new();
    for &a_x in &spec.coeffs {
        for &a_z in &spec.coeffs {
            for &k in &spec.ks {
                cells.push((a_x, a_z, k));
            }
        }
    }
    parallel_map(cells, |(a_x, a_z, k)| {
        let config = LfrConfig {
            k: k.min(p.fit.n_records().saturating_sub(1).max(1)),
            a_x,
            a_y: 1.0,
            a_z,
            n_restarts: spec.n_restarts,
            max_iters: spec.max_iters,
            seed,
            ..Default::default()
        };
        let (repr, _) = repr_lfr(p, &config).expect("validated grid cell");
        let (val, test) = eval_classification(p, &repr);
        GridPoint {
            method: "LFR".to_string(),
            params: format!("Ax={a_x} Az={a_z} K={k}"),
            val,
            test,
        }
    })
}

/// Hyper-parameter tuning criteria of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tuning {
    /// (a) best validation AUC.
    MaxUtility,
    /// (b) best validation yNN.
    MaxFairness,
    /// (c) best harmonic mean of validation AUC and yNN.
    Harmonic,
}

impl Tuning {
    /// All three criteria, in the paper's row order.
    pub fn all() -> [Tuning; 3] {
        [Tuning::MaxUtility, Tuning::MaxFairness, Tuning::Harmonic]
    }

    /// Table III's row-group label.
    pub fn label(&self) -> &'static str {
        match self {
            Tuning::MaxUtility => "Max Utility (a)",
            Tuning::MaxFairness => "Max Fairness (b)",
            Tuning::Harmonic => "Optimal (c)",
        }
    }

    /// The tuning score of a cell's validation metrics.
    pub fn score(&self, m: &ClsMetrics) -> f64 {
        match self {
            Tuning::MaxUtility => m.auc,
            Tuning::MaxFairness => m.ynn,
            Tuning::Harmonic => harmonic_mean(m.auc, m.ynn),
        }
    }
}

/// Picks the grid cell maximizing the tuning criterion on validation data.
pub fn select_best(points: &[GridPoint], tuning: Tuning) -> &GridPoint {
    points
        .iter()
        .max_by(|a, b| {
            tuning
                .score(&a.val)
                .partial_cmp(&tuning.score(&b.val))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("grid must be non-empty")
}

/// Runs every §V-D method on a prepared dataset: Full/Masked Data (single
/// points), the SVD variants (one point per `K`), and the LFR / iFair-a /
/// iFair-b grids. Returns all evaluated points, labeled by method.
pub fn run_all_methods(p: &PreparedData, spec: &GridSpec, seed: u64) -> Vec<GridPoint> {
    let mut out = Vec::new();
    for (label, masked) in [("Full Data", false), ("Masked Data", true)] {
        let repr = repr_identity(p, masked);
        let (val, test) = eval_classification(p, &repr);
        out.push(GridPoint {
            method: label.into(),
            params: String::new(),
            val,
            test,
        });
    }
    for (label, masked) in [("SVD", false), ("SVD-masked", true)] {
        for &k in &spec.ks {
            match repr_svd(p, k, masked) {
                Ok(repr) => {
                    let (val, test) = eval_classification(p, &repr);
                    out.push(GridPoint {
                        method: label.into(),
                        params: format!("K={k}"),
                        val,
                        test,
                    });
                }
                Err(e) => eprintln!("warning: {label} K={k} on {}: {e}", p.name),
            }
        }
    }
    out.extend(grid_search_lfr(p, spec, seed));
    out.extend(grid_search_ifair(
        p,
        InitStrategy::RandomUniform,
        spec,
        seed,
    ));
    out.extend(grid_search_ifair(
        p,
        InitStrategy::NearZeroProtected,
        spec,
        seed,
    ));
    out
}

/// Pareto-optimal flags for points `(x, y)` where **both** coordinates are
/// maximized: `true` when no other point dominates (≥ on both, > on one).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<bool> {
    points
        .iter()
        .map(|&(x, y)| {
            !points
                .iter()
                .any(|&(ox, oy)| ox >= x && oy >= y && (ox > x || oy > y))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair_data::generators::credit::{self, CreditConfig};

    fn small_prepared() -> PreparedData {
        let ds = credit::generate(&CreditConfig {
            n_records: 240,
            seed: 5,
        });
        prepare_classification(
            &ds,
            "credit-small",
            7,
            PrepareCaps {
                fit_cap: 60,
                eval_cap: 60,
            },
        )
    }

    #[test]
    fn prepare_splits_and_caps() {
        let p = small_prepared();
        assert_eq!(p.train.n_records(), 80);
        assert!(p.val.n_records() <= 60);
        assert!(p.test.n_records() <= 60);
        assert_eq!(p.fit.n_records(), 60);
        assert_eq!(p.val_neighbors.len(), p.val.n_records());
        assert_eq!(p.test_neighbors.len(), p.test.n_records());
    }

    #[test]
    fn identity_and_masked_have_expected_widths() {
        let p = small_prepared();
        let full = repr_identity(&p, false);
        let masked = repr_identity(&p, true);
        assert_eq!(full.train.cols(), p.train.n_features());
        assert!(masked.train.cols() < full.train.cols());
    }

    #[test]
    fn svd_repr_has_rank_width() {
        let p = small_prepared();
        let r = repr_svd(&p, 5, false).unwrap();
        assert_eq!(r.test.cols(), 5);
        assert_eq!(r.test.rows(), p.test.n_records());
    }

    #[test]
    fn eval_produces_metrics_in_range() {
        let p = small_prepared();
        let r = repr_identity(&p, false);
        let (val, test) = eval_classification(&p, &r);
        for m in [val, test] {
            assert!((0.0..=1.0).contains(&m.acc));
            assert!((0.0..=1.0).contains(&m.auc));
            assert!((0.0..=1.0).contains(&m.parity));
            assert!((0.0..=1.0).contains(&m.eq_opp));
            assert!((0.0..=1.0).contains(&m.ynn));
        }
    }

    #[test]
    fn tuning_criteria_select_expected_points() {
        let mk = |auc: f64, ynn: f64| ClsMetrics {
            acc: 0.0,
            auc,
            eq_opp: 0.0,
            parity: 0.0,
            ynn,
        };
        let points = vec![
            GridPoint {
                method: "m".into(),
                params: "high-auc".into(),
                val: mk(0.9, 0.5),
                test: mk(0.9, 0.5),
            },
            GridPoint {
                method: "m".into(),
                params: "high-ynn".into(),
                val: mk(0.5, 0.95),
                test: mk(0.5, 0.95),
            },
            GridPoint {
                method: "m".into(),
                params: "balanced".into(),
                val: mk(0.8, 0.85),
                test: mk(0.8, 0.85),
            },
        ];
        assert_eq!(select_best(&points, Tuning::MaxUtility).params, "high-auc");
        assert_eq!(select_best(&points, Tuning::MaxFairness).params, "high-ynn");
        assert_eq!(select_best(&points, Tuning::Harmonic).params, "balanced");
    }

    #[test]
    fn pareto_front_flags_dominated_points() {
        let pts = vec![(0.9, 0.5), (0.5, 0.9), (0.8, 0.8), (0.4, 0.4)];
        let flags = pareto_front(&pts);
        assert_eq!(flags, vec![true, true, true, false]);
    }

    #[test]
    fn pareto_handles_duplicates() {
        let pts = vec![(0.5, 0.5), (0.5, 0.5)];
        assert_eq!(pareto_front(&pts), vec![true, true]);
    }
}
