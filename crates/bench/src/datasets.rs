//! Dataset construction for the experiment binaries, in paper-scale (`--full`)
//! or laptop-scale (quick) sizes.

use ifair_data::generators::{airbnb, census, compas, credit, xing};
use ifair_data::{Dataset, RankingDataset};

/// The three classification datasets of §V-A (Compas, Census, Credit), with
/// record counts from Table II in full mode and reduced counts in quick mode
/// (the generators keep the encoded dimensionality and base rates either
/// way).
pub fn classification_datasets(full: bool, seed: u64) -> Vec<(String, Dataset)> {
    let compas = compas::generate(&compas::CompasConfig {
        n_records: if full { 6901 } else { 1200 },
        seed,
    });
    let census = census::generate(&census::CensusConfig {
        n_records: if full { 48842 } else { 2400 },
        seed,
    });
    let credit = credit::generate(&credit::CreditConfig {
        n_records: 1000, // small already; same size in both modes
        seed,
    });
    vec![
        ("Compas".to_string(), compas),
        ("Census".to_string(), census),
        ("Credit".to_string(), credit),
    ]
}

/// The two ranking datasets of §V-A (Xing with 57 queries, Airbnb with 43).
pub fn ranking_datasets(full: bool, seed: u64) -> Vec<(String, RankingDataset)> {
    let xing = xing::generate(&xing::XingConfig {
        n_queries: 57, // 2240 records; small enough for both modes
        seed,
    });
    let airbnb = airbnb::generate(&airbnb::AirbnbConfig {
        n_records: if full { 27597 } else { 3000 },
        seed,
    });
    vec![("Xing".to_string(), xing), ("Airbnb".to_string(), airbnb)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_classification_datasets_have_expected_shapes() {
        let ds = classification_datasets(false, 1);
        assert_eq!(ds.len(), 3);
        let (name, compas) = &ds[0];
        assert_eq!(name, "Compas");
        assert_eq!(compas.n_records(), 1200);
        assert_eq!(compas.n_features(), 431);
        let (_, census) = &ds[1];
        assert_eq!(census.n_features(), 101);
        let (_, credit) = &ds[2];
        assert_eq!(credit.n_records(), 1000);
        assert_eq!(credit.n_features(), 67);
    }

    #[test]
    fn quick_ranking_datasets_have_expected_shapes() {
        let ds = ranking_datasets(false, 1);
        let (name, xing) = &ds[0];
        assert_eq!(name, "Xing");
        assert_eq!(xing.n_queries(), 57);
        assert_eq!(xing.data.n_records(), 2240);
        let (_, airbnb) = &ds[1];
        assert_eq!(airbnb.n_queries(), 43);
    }
}
