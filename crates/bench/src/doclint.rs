//! Documentation lint for the serving runbook.
//!
//! `docs/SERVING.md` promises to document **every** `ifair serve` CLI flag
//! and every metric series the server emits. That promise rots silently:
//! someone adds a flag or a counter and forgets the runbook. This module
//! (and its `doc_lint` binary) makes the promise machine-checked — CI
//! captures the live `ifair serve --help` text and a live `/metrics`
//! scrape, extracts the flag and series names, and fails if any of them is
//! absent from the runbook.

use std::collections::BTreeSet;

/// Extracts `--flag` tokens from help text, trimmed of surrounding
/// punctuation and `=VALUE` suffixes, deduplicated and sorted.
pub fn extract_flags(help: &str) -> Vec<String> {
    let mut flags = BTreeSet::new();
    for token in help.split_whitespace() {
        let token = token.trim_start_matches(['[', '(', '"', '`', '\'']);
        if !token.starts_with("--") {
            continue;
        }
        let token = token.split(['=', '[', ']']).next().unwrap_or(token);
        let token = token.trim_end_matches(['.', ',', ';', ':', ')', '"', '`', '\'']);
        // "--" alone is an argument separator, not a flag.
        if token.len() > 2
            && token[2..]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-')
        {
            flags.insert(token.to_string());
        }
    }
    flags.into_iter().collect()
}

/// Extracts metric series names from Prometheus exposition text: the
/// second token of every `# HELP <name> ...` line, deduplicated and sorted.
pub fn extract_metric_names(metrics: &str) -> Vec<String> {
    let mut names = BTreeSet::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some(name) = rest.split_whitespace().next() {
                names.insert(name.to_string());
            }
        }
    }
    names.into_iter().collect()
}

/// Names (flags or metric series) that never appear in `doc`, verbatim.
pub fn missing_from_doc(doc: &str, names: &[String]) -> Vec<String> {
    names
        .iter()
        .filter(|name| !doc.contains(name.as_str()))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_extracted_and_cleaned() {
        let help = "usage: ifair serve --model NAME=PATH [--addr HOST:PORT]\n\
                    \x20 --queue-capacity N   queue depth (see --max-batch-rows).\n\
                    pass `--poll-backend auto|epoll|poll`; -- ends flags";
        assert_eq!(
            extract_flags(help),
            vec![
                "--addr",
                "--max-batch-rows",
                "--model",
                "--poll-backend",
                "--queue-capacity",
            ]
        );
    }

    #[test]
    fn metric_names_come_from_help_lines() {
        let metrics = "# HELP ifair_requests_total Total requests.\n\
                       # TYPE ifair_requests_total counter\n\
                       ifair_requests_total{endpoint=\"transform\"} 3\n\
                       # HELP ifair_connections_active Open connections.\n\
                       # TYPE ifair_connections_active gauge\n\
                       ifair_connections_active 1\n";
        assert_eq!(
            extract_metric_names(metrics),
            vec!["ifair_connections_active", "ifair_requests_total"]
        );
    }

    #[test]
    fn missing_names_are_reported_verbatim() {
        let doc = "The `--addr` flag binds; watch `ifair_requests_total`.";
        let names = vec![
            "--addr".to_string(),
            "--threads".to_string(),
            "ifair_requests_total".to_string(),
            "ifair_shed_total".to_string(),
        ];
        assert_eq!(
            missing_from_doc(doc, &names),
            vec!["--threads", "ifair_shed_total"]
        );
    }
}
