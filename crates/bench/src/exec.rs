//! Order-preserving parallel map over independent experiment jobs.
//!
//! Grid searches dominate the experiment wall-clock and their cells are
//! embarrassingly parallel. The actual worker pool lives in
//! [`ifair_core::par`] — the same scoped-thread machinery that powers the
//! pairwise `L_fair` kernel — so the bench crate re-exports it instead of
//! maintaining a private copy. On single-core machines it degrades to a
//! plain sequential map.

pub use ifair_core::par::{available_threads, parallel_map};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, |i: usize| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn closures_can_borrow() {
        let base = vec![10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], |i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(available_threads() >= 1);
    }
}
