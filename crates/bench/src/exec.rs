//! Order-preserving parallel map over independent experiment jobs.
//!
//! Grid searches dominate the experiment wall-clock and their cells are
//! embarrassingly parallel. The actual worker pool lives in
//! [`ifair_core::par`] — the same persistent, channel-fed pool machinery
//! that powers the iFair training kernels — so the bench crate re-exports
//! it instead of maintaining a private copy. [`parallel_map`] dispatches on
//! a lazily-created process-wide [`shared_pool`] sized to the hardware
//! thread count: the threads are spawned once and reused by every grid
//! search in the process. Items are handed out from a shared cursor (lanes
//! that finish early steal remaining work — the right shape for grid cells
//! of wildly different cost) and results are reassembled in input order. On
//! single-core machines everything degrades to a plain sequential map with
//! no threads spawned.

pub use ifair_core::par::{available_threads, parallel_map, shared_pool, WorkerPool};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, |i: usize| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn closures_can_borrow() {
        let base = vec![10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], |i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    fn shared_pool_is_reused_across_maps() {
        // Two maps, one process-wide pool: same handle, both correct.
        let first = shared_pool() as *const WorkerPool;
        let a = parallel_map((0..50).collect(), |i: usize| i + 1);
        let second = shared_pool() as *const WorkerPool;
        let b = parallel_map((0..50).collect(), |i: usize| i + 1);
        assert_eq!(first, second);
        assert_eq!(a, b);
    }

    #[test]
    fn reports_at_least_one_thread() {
        assert!(available_threads() >= 1);
    }
}
