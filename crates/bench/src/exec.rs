//! Order-preserving parallel map over independent experiment jobs.
//!
//! Grid searches dominate the experiment wall-clock and their cells are
//! embarrassingly parallel; this helper fans them out over
//! `available_parallelism` threads with crossbeam's scoped threads (no
//! `'static` bound on the closure, so jobs can borrow the prepared data).
//! On single-core machines it degrades to a plain sequential map.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving input order.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = jobs[idx].lock().take().expect("each job taken once");
                *results[idx].lock() = Some(f(item));
            });
        }
    })
    .expect("worker threads must not panic");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, |i: usize| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn closures_can_borrow() {
        let base = vec![10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], |i| base[i]);
        assert_eq!(out, base);
    }
}
