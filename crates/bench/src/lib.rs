//! # Experiment harness for the iFair reproduction
//!
//! One binary per table/figure of the paper — run any of them with
//! `cargo run --release -p ifair-bench --bin <name> [-- --full --seed N]`:
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `table1` | §I motivating Xing "Brand Strategist" example |
//! | `table2` | §V-A dataset statistics |
//! | `table3` | §V-D classification detail (3 tuning criteria × 3 datasets) |
//! | `table4` | §V-E Xing score-weight sensitivity |
//! | `table5` | §V-E ranking task (Xing + Airbnb, 7 methods) |
//! | `fig2`   | §IV synthetic study (iFair vs LFR representations) |
//! | `fig3`   | §V-D utility/fairness trade-off + Pareto fronts |
//! | `fig4`   | §V-F adversarial accuracy of group prediction |
//! | `fig5`   | §V-F FA\*IR post-processing on iFair representations |
//!
//! Each binary prints the paper's rows as Markdown and writes raw JSON to
//! `results/`. The default *quick* mode shrinks grids and record counts so a
//! full regeneration is laptop-friendly; `--full` switches to the paper's
//! configuration. Micro-benchmarks (on the [`timing`] harness) live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod classification;
pub mod datasets;
pub mod doclint;
pub mod exec;
pub mod ranking;
pub mod report;
pub mod timing;

pub use args::{ArgsError, ExpArgs};
pub use report::MarkdownTable;
