//! The learning-to-rank experiment pipeline of §V-E (Tables IV, V and
//! Fig. 5).
//!
//! Per the paper: a linear-regression model predicts each candidate's
//! deserved score from the (represented) features; candidates are ranked
//! per query by predicted score. Reported metrics are means over queries of
//! average precision at 10 (MAP), Kendall's τ (KT), yNN consistency of the
//! predicted scores, and the percentage of protected candidates in the
//! top-10 ranks (the parity surrogate for rankings).
//!
//! Note the regression is *fit and evaluated on the same records*: the
//! deserved score is a linear function of the qualification columns, so
//! Full/Masked Data recover it (nearly) exactly — which is how the paper's
//! Table V shows MAP = KT = 1.00 for those baselines on Xing.

use ifair_api::FitError;
use ifair_baselines::{rerank, FairConfig, SvdRepresentation};
use ifair_core::{IFair, IFairConfig};
use ifair_data::{Dataset, Query, RankingDataset, StandardScaler};
use ifair_linalg::Matrix;
use ifair_metrics::{
    average_precision_at_k, consistency_with_neighbors, k_nearest_all, kendall_tau,
    protected_share_top_k, ranking_from_scores,
};
use ifair_models::RidgeRegression;
use serde::Serialize;

/// Neighbourhood size for ranking yNN (§V-C, clamped per query).
pub const YNN_K: usize = 10;
/// Top-k cutoff of MAP and the protected-share metric.
pub const TOP_K: usize = 10;

/// A ranking dataset prepared for the pipeline: scaled features, deserved
/// scores, per-query yNN neighbourhoods precomputed on masked originals.
pub struct PreparedRanking {
    /// Dataset name (for reports).
    pub name: String,
    /// Scaled records; `data.y` holds the deserved scores.
    pub data: Dataset,
    /// Query groupings.
    pub queries: Vec<Query>,
    /// Capped record sample for fitting representation models.
    pub fit_idx: Vec<usize>,
    /// Per-query neighbourhoods on the candidates' masked attributes.
    pub neighbors: Vec<Vec<Vec<usize>>>,
}

impl PreparedRanking {
    /// Deserved scores (the ranking variable).
    pub fn scores(&self) -> &[f64] {
        self.data.labels()
    }
}

/// Scales features and precomputes per-query neighbourhoods.
pub fn prepare_ranking(
    rds: &RankingDataset,
    name: &str,
    fit_cap: usize,
    seed: u64,
) -> PreparedRanking {
    let (_, x) = StandardScaler::fit_transform(&rds.data.x);
    let mut data = rds.data.with_features(x).expect("scaling preserves shape");
    // Normalize the deserved score to [0, 1] globally so yNN's |ŷ_i − ŷ_j|
    // terms are on the same scale for every method and dataset. (Per-query
    // normalization would be wrong: compressing all similar candidates to
    // nearly equal scores is exactly the individual-fairness effect yNN must
    // be able to reward.)
    data.y = Some(minmax(data.labels()));
    let mut fit_idx: Vec<usize> = (0..data.n_records()).collect();
    // Deterministic subsample: shuffle with the seed, then truncate.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    fit_idx.shuffle(&mut rng);
    fit_idx.truncate(fit_cap.min(data.n_records()));

    let masked = data.masked_x();
    let neighbors = rds
        .queries
        .iter()
        .map(|q| {
            let qx = masked.select_rows(&q.indices);
            k_nearest_all(&qx, YNN_K.min(q.indices.len().saturating_sub(1)))
        })
        .collect();
    PreparedRanking {
        name: name.to_string(),
        data,
        queries: rds.queries.clone(),
        fit_idx,
        neighbors,
    }
}

/// Ranking representation methods of Table V.
#[derive(Debug, Clone)]
pub enum RankRepr {
    /// Identity on all features.
    Full,
    /// Identity on non-protected features.
    Masked,
    /// Rank-`k` SVD on all features.
    Svd {
        /// Truncation rank.
        k: usize,
    },
    /// Rank-`k` SVD on non-protected features.
    SvdMasked {
        /// Truncation rank.
        k: usize,
    },
    /// iFair representation.
    IFair(IFairConfig),
}

impl RankRepr {
    /// Row label used in Table V.
    pub fn label(&self) -> String {
        match self {
            RankRepr::Full => "Full Data".into(),
            RankRepr::Masked => "Masked Data".into(),
            RankRepr::Svd { .. } => "SVD".into(),
            RankRepr::SvdMasked { .. } => "SVD-masked".into(),
            RankRepr::IFair(_) => "iFair-b".into(),
        }
    }
}

/// Materializes a representation for **all** records of the dataset.
pub fn apply_rank_repr(p: &PreparedRanking, method: &RankRepr) -> Result<Matrix, FitError> {
    match method {
        RankRepr::Full => Ok(p.data.x.clone()),
        RankRepr::Masked => Ok(p.data.masked_x()),
        RankRepr::Svd { k } => {
            let fit = p.data.x.select_rows(&p.fit_idx);
            let svd = SvdRepresentation::fit(&fit, *k)?;
            Ok(svd.transform(&p.data.x))
        }
        RankRepr::SvdMasked { k } => {
            let masked = p.data.masked_x();
            let fit = masked.select_rows(&p.fit_idx);
            let svd = SvdRepresentation::fit(&fit, *k)?;
            Ok(svd.transform(&masked))
        }
        RankRepr::IFair(config) => {
            let fit = p.data.x.select_rows(&p.fit_idx);
            let model = IFair::fit(&fit, &p.data.protected, config)?;
            Ok(model.transform(&p.data.x))
        }
    }
}

/// The paper's ranking metrics (Table V columns), means over queries.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RankMetrics {
    /// Mean average precision at 10.
    pub map: f64,
    /// Mean Kendall's τ between predicted and deserved scores.
    pub kt: f64,
    /// Mean yNN consistency of the predicted scores (deserved scores are
    /// normalized to `[0, 1]` globally, so score differences are comparable).
    pub ynn: f64,
    /// Mean percentage of protected candidates in the top 10.
    pub pct_protected_top10: f64,
}

/// Per-query prediction produced by [`predict_scores`]: the candidate-local
/// score vector for each query.
pub type QueryScores = Vec<Vec<f64>>;

/// Fits ridge regression `representation -> deserved score` and predicts a
/// score for every candidate of every query.
pub fn predict_scores(p: &PreparedRanking, repr: &Matrix) -> Result<QueryScores, FitError> {
    let model = RidgeRegression::fit(repr, p.scores(), 1e-6)?;
    let all = model.predict(repr);
    Ok(p.queries
        .iter()
        .map(|q| q.indices.iter().map(|&i| all[i]).collect())
        .collect())
}

/// Aggregates the Table V metrics over queries, given per-query predicted
/// scores aligned with `p.queries`.
pub fn eval_ranking(p: &PreparedRanking, predicted: &QueryScores) -> RankMetrics {
    let mut map = 0.0;
    let mut kt = 0.0;
    let mut ynn = 0.0;
    let mut pct = 0.0;
    let deserved = p.scores();
    for ((q, pred), neighbors) in p.queries.iter().zip(predicted).zip(&p.neighbors) {
        let truth: Vec<f64> = q.indices.iter().map(|&i| deserved[i]).collect();
        let ranking = ranking_from_scores(pred);
        map += average_precision_at_k(&ranking, &truth, TOP_K);
        kt += kendall_tau(pred, &truth);
        ynn += consistency_with_neighbors(neighbors, pred);
        let group: Vec<u8> = q.indices.iter().map(|&i| p.data.group[i]).collect();
        pct += protected_share_top_k(&ranking, &group, TOP_K);
    }
    let n = p.queries.len().max(1) as f64;
    RankMetrics {
        map: map / n,
        kt: kt / n,
        ynn: ynn / n,
        pct_protected_top10: pct / n,
    }
}

/// FA\*IR post-processing: re-ranks each query's predicted scores and
/// evaluates the *fair* ranking with interpolated fair scores (§V-E).
pub fn eval_fair_rerank(
    p: &PreparedRanking,
    predicted: &QueryScores,
    config: &FairConfig,
) -> RankMetrics {
    let mut map = 0.0;
    let mut kt = 0.0;
    let mut ynn = 0.0;
    let mut pct = 0.0;
    let deserved = p.scores();
    for ((q, pred), neighbors) in p.queries.iter().zip(predicted).zip(&p.neighbors) {
        let truth: Vec<f64> = q.indices.iter().map(|&i| deserved[i]).collect();
        let group: Vec<u8> = q.indices.iter().map(|&i| p.data.group[i]).collect();
        let fair = rerank(pred, &group, q.indices.len(), config);
        // Candidate-aligned fair scores (candidate fair.order[pos] holds the
        // fair score of output position pos).
        let mut fair_by_candidate = vec![0.0; q.indices.len()];
        for (pos, &cand) in fair.order.iter().enumerate() {
            fair_by_candidate[cand] = fair.fair_scores[pos];
        }
        map += average_precision_at_k(&fair.order, &truth, TOP_K);
        kt += kendall_tau(&fair_by_candidate, &truth);
        ynn += consistency_with_neighbors(neighbors, &fair_by_candidate);
        pct += protected_share_top_k(&fair.order, &group, TOP_K);
    }
    let n = p.queries.len().max(1) as f64;
    RankMetrics {
        map: map / n,
        kt: kt / n,
        ynn: ynn / n,
        pct_protected_top10: pct / n,
    }
}

/// Min-max normalizes scores to `[0, 1]` (constant vectors map to 0.5) so
/// yNN's `|ŷ_i − ŷ_j|` terms are comparable across queries and methods.
pub fn minmax(scores: &[f64]) -> Vec<f64> {
    let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(hi - lo).is_finite() || hi - lo < 1e-12 {
        return vec![0.5; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ifair_data::generators::xing::{self, XingConfig};

    fn small_ranking() -> PreparedRanking {
        let rds = xing::generate(&XingConfig {
            n_queries: 6,
            seed: 3,
        });
        prepare_ranking(&rds, "xing-small", 120, 11)
    }

    #[test]
    fn prepare_builds_query_neighborhoods() {
        let p = small_ranking();
        assert_eq!(p.neighbors.len(), p.queries.len());
        for (q, n) in p.queries.iter().zip(&p.neighbors) {
            assert_eq!(n.len(), q.indices.len());
        }
        assert!(p.fit_idx.len() <= 120);
    }

    #[test]
    fn full_data_recovers_deserved_ranking() {
        // The deserved score is a linear function of the features, so the
        // regression on Full Data must reproduce it (the paper's MAP=KT=1).
        let p = small_ranking();
        let repr = apply_rank_repr(&p, &RankRepr::Full).unwrap();
        let predicted = predict_scores(&p, &repr).unwrap();
        let m = eval_ranking(&p, &predicted);
        assert!(m.map > 0.95, "MAP {}", m.map);
        assert!(m.kt > 0.95, "KT {}", m.kt);
    }

    #[test]
    fn svd_loses_ranking_quality() {
        let p = small_ranking();
        let full = eval_ranking(
            &p,
            &predict_scores(&p, &apply_rank_repr(&p, &RankRepr::Full).unwrap()).unwrap(),
        );
        let svd = eval_ranking(
            &p,
            &predict_scores(&p, &apply_rank_repr(&p, &RankRepr::Svd { k: 3 }).unwrap()).unwrap(),
        );
        assert!(svd.kt <= full.kt + 1e-9);
    }

    #[test]
    fn fair_rerank_raises_protected_share_under_pressure() {
        let p = small_ranking();
        let repr = apply_rank_repr(&p, &RankRepr::Masked).unwrap();
        let predicted = predict_scores(&p, &repr).unwrap();
        let base = eval_ranking(&p, &predicted);
        let fair = eval_fair_rerank(
            &p,
            &predicted,
            &FairConfig {
                p: 0.9,
                adjust_alpha: false,
                ..Default::default()
            },
        );
        assert!(
            fair.pct_protected_top10 >= base.pct_protected_top10 - 1e-9,
            "{} < {}",
            fair.pct_protected_top10,
            base.pct_protected_top10
        );
    }

    #[test]
    fn metrics_are_in_range() {
        let p = small_ranking();
        let repr = apply_rank_repr(&p, &RankRepr::SvdMasked { k: 4 }).unwrap();
        let m = eval_ranking(&p, &predict_scores(&p, &repr).unwrap());
        assert!((0.0..=1.0).contains(&m.map));
        assert!((-1.0..=1.0).contains(&m.kt));
        assert!((0.0..=1.0).contains(&m.ynn));
        assert!((0.0..=100.0).contains(&m.pct_protected_top10));
    }

    #[test]
    fn minmax_handles_edge_cases() {
        assert_eq!(minmax(&[2.0, 2.0]), vec![0.5, 0.5]);
        let v = minmax(&[1.0, 3.0, 2.0]);
        assert_eq!(v, vec![0.0, 1.0, 0.5]);
    }
}
