//! Experiment output: Markdown tables on stdout, JSON artifacts on disk.
//!
//! Every experiment binary prints the paper's rows/series as a Markdown
//! table and mirrors the raw numbers to `results/<name>.json` so
//! `EXPERIMENTS.md` can be assembled (and re-checked) mechanically.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A Markdown table under construction.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        MarkdownTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places (the paper's table precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Resolves the results directory (`results/` next to the workspace root,
/// created on demand). Respects `IFAIR_RESULTS_DIR` when set.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var_os("IFAIR_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // CARGO_MANIFEST_DIR = crates/bench; results/ sits two levels up.
            let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
            Path::new(&manifest).join("../../results")
        });
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Serializes `value` to `results/<name>.json` (pretty-printed). Returns the
/// written path; I/O failures are reported but non-fatal (experiments should
/// still print their tables on read-only filesystems).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: could not serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(["Method", "AUC"]);
        t.row(["Full Data", "0.65"]);
        t.row(["iFair-b", "0.58"]);
        let s = t.render();
        assert!(s.contains("| Method    | AUC  |"));
        assert!(s.contains("| iFair-b   | 0.58 |"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = MarkdownTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().nth(2).unwrap().matches('|').count() == 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.12345), "0.12");
        assert_eq!(f3(0.12345), "0.123");
    }
}
