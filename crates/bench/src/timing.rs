//! Minimal wall-clock micro-benchmark harness.
//!
//! The offline toolchain has no criterion, so the `benches/` targets are
//! plain `harness = false` binaries built on this module: warm up, run a
//! fixed number of timed iterations, report min / median / mean. Results are
//! printed as a Markdown table so bench output can be pasted into PRs.

use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label, e.g. `l_fair/serial/n2000`.
    pub name: String,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

/// Times `f` for `iters` iterations after `warmup` untimed runs.
///
/// The closure's return value is passed through [`std::hint::black_box`], so
/// benched expressions are not optimized away; return the value you compute.
pub fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Measurement {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let m = Measurement {
        name: name.to_string(),
        min,
        median,
        mean,
    };
    println!(
        "| {} | {} | {} | {} |",
        m.name,
        fmt_duration(m.min),
        fmt_duration(m.median),
        fmt_duration(m.mean)
    );
    m
}

/// Prints the Markdown table header matching [`bench`] rows.
pub fn table_header(title: &str) {
    println!("\n### {title}\n");
    println!("| benchmark | min | median | mean |");
    println!("|-----------|-----|--------|------|");
}

/// Human-readable duration (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let m = bench("noop", 1, 5, || 1 + 1);
        assert!(m.min <= m.median);
        assert!(!m.name.is_empty());
    }

    #[test]
    fn durations_format_by_scale() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
