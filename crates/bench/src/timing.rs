//! Minimal wall-clock micro-benchmark harness.
//!
//! The offline toolchain has no criterion, so the `benches/` targets are
//! plain `harness = false` binaries built on this module: warm up, run a
//! fixed number of timed iterations, report min / median / mean. Results are
//! printed as a Markdown table so bench output can be pasted into PRs.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One measured benchmark row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label, e.g. `l_fair/serial/n2000`.
    pub name: String,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
    /// Kernel backend label (`"scalar"` / `"simd"`) when the benchmark
    /// exercises the lane kernels; `None` for backend-agnostic rows.
    pub backend: Option<String>,
    /// Scalar precision label (`"f64"` / `"f32"`) when relevant.
    pub precision: Option<String>,
    /// Peak resident set size of *this process* over the measured region,
    /// in bytes, when the benchmark captured it (see [`reset_peak_rss`] /
    /// [`peak_rss_bytes`]). The out-of-core rows use it to pin the
    /// coordinator-RSS-independent-of-M claim.
    pub peak_rss: Option<u64>,
}

impl Measurement {
    /// Tags this measurement with the kernel backend and precision it ran
    /// under, for the JSON report and `perf_delta` comparisons.
    pub fn tagged(mut self, backend: &str, precision: &str) -> Measurement {
        self.backend = Some(backend.to_string());
        self.precision = Some(precision.to_string());
        self
    }

    /// Attaches a peak-RSS sample to this measurement.
    pub fn with_peak_rss(mut self, bytes: Option<u64>) -> Measurement {
        self.peak_rss = bytes;
        self
    }
}

/// Resets the kernel's peak-RSS watermark for this process (Linux:
/// `echo 5 > /proc/self/clear_refs`), so [`peak_rss_bytes`] afterward
/// reflects only the region between the two calls. No-op elsewhere (the
/// watermark then covers the whole process lifetime — still an upper
/// bound, just a looser one).
pub fn reset_peak_rss() {
    #[cfg(target_os = "linux")]
    {
        let _ = std::fs::write("/proc/self/clear_refs", "5");
    }
}

/// This process's peak resident set size in bytes (Linux: `VmHWM` from
/// `/proc/self/status`), `None` where unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Times `f` for `iters` iterations after `warmup` untimed runs.
///
/// The closure's return value is passed through [`std::hint::black_box`], so
/// benched expressions are not optimized away; return the value you compute.
pub fn bench<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Measurement {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let m = Measurement {
        name: name.to_string(),
        min,
        median,
        mean,
        backend: None,
        precision: None,
        peak_rss: None,
    };
    println!(
        "| {} | {} | {} | {} |",
        m.name,
        fmt_duration(m.min),
        fmt_duration(m.median),
        fmt_duration(m.mean)
    );
    m
}

/// Machine-readable form of a [`Measurement`]: durations as integer
/// nanoseconds, ready for JSON serialization (and deserialization — the
/// `perf_delta` tool reads these back to build regression tables).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementRecord {
    /// Benchmark label, e.g. `l_fair/serial/n2000`.
    pub name: String,
    /// Fastest observed iteration, in nanoseconds.
    pub min_ns: u64,
    /// Median iteration, in nanoseconds.
    pub median_ns: u64,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: u64,
    /// Kernel backend label, when the row is backend-specific. Defaults to
    /// `None` so pre-existing baseline JSON (no such field) still loads.
    #[serde(default)]
    pub backend: Option<String>,
    /// Scalar precision label, with the same backward-compatible default.
    #[serde(default)]
    pub precision: Option<String>,
    /// Peak process RSS in bytes over the measured region, when captured
    /// (out-of-core rows); `#[serde(default)]` so older JSON still loads.
    #[serde(default)]
    pub peak_rss_bytes: Option<u64>,
}

impl Measurement {
    /// The JSON-serializable form of this measurement.
    pub fn record(&self) -> MeasurementRecord {
        MeasurementRecord {
            name: self.name.clone(),
            min_ns: duration_ns(self.min),
            median_ns: duration_ns(self.median),
            mean_ns: duration_ns(self.mean),
            backend: self.backend.clone(),
            precision: self.precision.clone(),
            peak_rss_bytes: self.peak_rss,
        }
    }
}

/// Nanoseconds of `d`, saturating at `u64::MAX` (≈ 584 years).
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Machine-readable bench output, written as `BENCH_<name>.json` when the
/// `IFAIR_BENCH_JSON` environment variable is set, so the perf trajectory
/// stays trackable across PRs without parsing Markdown tables.
#[derive(Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Bench binary name (the file stem of the JSON output).
    pub bench: String,
    /// Hardware threads visible to this run.
    pub available_threads: usize,
    /// Record count `N` of the headline benchmark section.
    pub n_records: usize,
    /// All measurements, in execution order.
    pub measurements: Vec<MeasurementRecord>,
}

impl BenchReport {
    /// Creates an empty report for the bench binary `bench`.
    pub fn new(bench: &str, available_threads: usize, n_records: usize) -> BenchReport {
        BenchReport {
            bench: bench.to_string(),
            available_threads,
            n_records,
            measurements: Vec::new(),
        }
    }

    /// Records one measurement.
    pub fn push(&mut self, m: &Measurement) {
        self.measurements.push(m.record());
    }

    /// Writes `BENCH_<bench>.json` next to the workspace root when
    /// `IFAIR_BENCH_JSON` is set (to any value); returns the path written,
    /// or `None` when the variable is unset.
    ///
    /// Cargo runs bench binaries with the *package* directory as the
    /// working directory, so like [`crate::report::results_dir`] this
    /// anchors on the runtime `CARGO_MANIFEST_DIR` (`crates/bench`, two
    /// levels below the workspace root) rather than the cwd.
    pub fn write_if_enabled(&self) -> std::io::Result<Option<String>> {
        if std::env::var_os("IFAIR_BENCH_JSON").is_none() {
            return Ok(None);
        }
        let root = std::env::var("CARGO_MANIFEST_DIR")
            .map(|manifest| format!("{manifest}/../.."))
            .unwrap_or_else(|_| ".".into());
        let path = format!("{root}/BENCH_{}.json", self.bench);
        let json =
            serde_json::to_string_pretty(self).map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(&path, json)?;
        Ok(Some(path))
    }
}

/// Prints the Markdown table header matching [`bench()`] rows.
pub fn table_header(title: &str) {
    println!("\n### {title}\n");
    println!("| benchmark | min | median | mean |");
    println!("|-----------|-----|--------|------|");
}

/// Human-readable duration (ns / µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let m = bench("noop", 1, 5, || 1 + 1);
        assert!(m.min <= m.median);
        assert!(!m.name.is_empty());
    }

    #[test]
    fn records_convert_to_integer_nanoseconds() {
        let m = Measurement {
            name: "x".into(),
            min: Duration::from_nanos(10),
            median: Duration::from_micros(2),
            mean: Duration::from_millis(3),
            backend: None,
            precision: None,
            peak_rss: None,
        };
        let r = m.record();
        assert_eq!(
            (r.name.as_str(), r.min_ns, r.median_ns, r.mean_ns),
            ("x", 10, 2_000, 3_000_000)
        );
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"median_ns\""), "{json}");
        // Untagged rows carry explicit nulls and deserialize back to None.
        let back: MeasurementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend, None);
        assert_eq!(back.precision, None);
    }

    #[test]
    fn backend_and_precision_tags_roundtrip_and_old_json_still_loads() {
        let m = bench("tagme", 0, 2, || 3 + 3).tagged("scalar", "f32");
        let r = m.record();
        assert_eq!(r.backend.as_deref(), Some("scalar"));
        assert_eq!(r.precision.as_deref(), Some("f32"));
        let json = serde_json::to_string(&r).unwrap();
        let back: MeasurementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend.as_deref(), Some("scalar"));
        assert_eq!(back.precision.as_deref(), Some("f32"));

        // A record written before the fields existed deserializes to None.
        let old = r#"{"name":"legacy","min_ns":1,"median_ns":2,"mean_ns":3}"#;
        let legacy: MeasurementRecord = serde_json::from_str(old).unwrap();
        assert_eq!(legacy.backend, None);
        assert_eq!(legacy.precision, None);
        assert_eq!(legacy.peak_rss_bytes, None);
    }

    #[test]
    fn peak_rss_attaches_and_roundtrips() {
        let m = bench("rss", 0, 1, || 7).with_peak_rss(Some(123 * 1024));
        let r = m.record();
        assert_eq!(r.peak_rss_bytes, Some(123 * 1024));
        let json = serde_json::to_string(&r).unwrap();
        let back: MeasurementRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.peak_rss_bytes, Some(123 * 1024));
        // The probe itself works on Linux (None elsewhere is fine).
        #[cfg(target_os = "linux")]
        {
            reset_peak_rss();
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut report = BenchReport::new("unit", 4, 100);
        report.push(&bench("noop2", 0, 3, || 2 + 2));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"bench\""), "{json}");
        assert!(json.contains("noop2"), "{json}");
        assert!(json.contains("\"available_threads\""), "{json}");
    }

    #[test]
    fn durations_format_by_scale() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(5)).ends_with("s"));
    }
}
