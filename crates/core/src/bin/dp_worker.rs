//! Data-parallel training worker (see `ifair_core::dp`). Spawned by the
//! coordinator with the protocol on stdin/stdout; never run by hand.

fn main() -> std::process::ExitCode {
    ifair_core::dp::worker_main()
}
