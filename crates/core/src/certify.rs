//! Certified individual fairness: sound interval bounds on the iFair map.
//!
//! iFair's headline claim — similar individuals map to similar
//! representations — is measured empirically elsewhere in the workspace
//! (the consistency metrics). This module produces the stronger product of
//! *Learning Certified Individually Fair Representations* (Ruoss et al.
//! 2020): a **certificate** that *every* input inside the box
//! `[x − ε, x + ε]` maps within δ of every other such input in
//! representation space. The softmax-prototype map is small enough for
//! exact interval arithmetic, so the bound is computed, not sampled.
//!
//! # Method
//!
//! Interval bound propagation (IBP) through the forward map, coordinate by
//! coordinate:
//!
//! 1. the input box gives per-prototype bounds on the weighted power sum
//!    `S_k = Σ_n α_n |x_n − v_{k,n}|^p` (each `|I − v|` is an exact
//!    interval absolute value; powers and weighted sums are monotone on
//!    non-negative values),
//! 2. interval softmax responsibilities: with a fixed shift `c`,
//!    `u_k ∈ [e^{c−d_k↑} / (e^{c−d_k↑} + Σ_{j≠k} e^{c−d_j↓}), …]` — each
//!    bound maximizes or minimizes numerator and denominator separately,
//! 3. the interval prototype mixture `x̃_n ∈ Σ_k [u_k] · v_{k,n}` yields an
//!    output box whose Euclidean diagonal bounds the distance between the
//!    images of **any two** points of the input box — so it bounds the
//!    distance to the image of the center in particular.
//!
//! For large ε the interval blows up, but the map never leaves the convex
//! hull of the prototypes, so the certified δ is capped by the hull
//! diameter `max_{j,k} ‖v_j − v_k‖₂` — the "0-Lipschitz at infinity"
//! fallback that keeps certificates finite and non-vacuous at any radius.
//!
//! # Soundness under floating point
//!
//! Certificates must bound the *computed* transform, not just the
//! mathematical map. Two mechanisms make the bound directed-rounding safe:
//!
//! * every interval endpoint is nudged one representable value outward
//!   after each elementary operation ([`next_up_f64`] / [`next_down_f64`]
//!   and the `f32` analogues), which absorbs the round-to-nearest error of
//!   that operation, and
//! * the final δ is inflated by a terminal relative + absolute slack
//!   (`REL_SLACK` / `ABS_SLACK` per precision) that dominates what the
//!   per-op nudges do not strictly cover: multi-ulp libm error in
//!   `powf`/`exp` and the re-association difference between this module's
//!   sequential sums and the lane-chunked kernels the real transform uses.
//!   The slack is orders of magnitude above the worst case of either
//!   source and orders of magnitude below any useful δ, so certificates
//!   stay sound *and* non-vacuous.
//!
//! The per-row computation is a pure function of the row, so batch
//! certification rides the same fixed chunk layout as
//! [`IFair::transform_on`] and is bit-identical at every pool size.

use crate::config::SoftmaxDistance;
use crate::model::{TRANSFORM_CHUNK_ROWS, TRANSFORM_MAX_CHUNKS};
use crate::par;
use crate::{IFair, IFairF32};
use ifair_api::{check_epsilon, shape_error, CertifyError, FitError};
use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Kind tag of the versioned JSON envelope written by
/// [`Certificate::to_json`].
const CERTIFICATE_KIND: &str = "certificate";

/// Kind tag of the versioned JSON envelope written by
/// [`DatasetCertification::to_json`].
const CERTIFICATION_REPORT_KIND: &str = "certification-report";

/// Which bound produced a certificate's δ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertMethod {
    /// Interval bound propagation through the forward map (small ε).
    IntervalBound,
    /// The prototype-hull diameter cap (large ε, where IBP is looser).
    GlobalDiameter,
}

/// A per-record individual-fairness certificate: every input within the
/// certified box maps within `delta` (Euclidean, in representation space)
/// of the record's own representation — and of every other input in the
/// box. Produced by [`IFair::certify`]; serializable as a versioned JSON
/// artifact via [`Certificate::to_json`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Input-space perturbation radius the certificate covers (the box
    /// `[x − ε, x + ε]`, per coordinate, in the space `certify` was given).
    pub eps: f64,
    /// Certified upper bound on the representation-space Euclidean
    /// distance between the images of any two inputs in the box.
    pub delta: f64,
    /// Which bound produced `delta`.
    pub method: CertMethod,
}

impl Certificate {
    /// Serializes the certificate into a schema-versioned JSON envelope
    /// (kind `"certificate"`; see [`ifair_api::persist`]).
    pub fn to_json(&self) -> Result<String, FitError> {
        ifair_api::to_versioned_json(CERTIFICATE_KIND, self)
    }

    /// Restores a certificate persisted by [`Certificate::to_json`],
    /// rejecting unknown schema versions and mismatched kinds.
    pub fn from_json(json: &str) -> Result<Certificate, FitError> {
        ifair_api::from_versioned_json(CERTIFICATE_KIND, json)
    }
}

/// The δ bound for one explicit input box (used when the box is not a
/// symmetric ε-ball — e.g. after affine scaler stages warp it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxCertificate {
    /// Certified representation-space distance bound for the box.
    pub delta: f64,
    /// Which bound produced `delta`.
    pub method: CertMethod,
}

/// Batch certification summary over a dataset: how many records certify at
/// each (ε, δ) grid point. The certified fraction is a sound **lower
/// bound** on the empirical fraction any sampling procedure can observe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetCertification {
    /// The ε grid, in input order.
    pub eps_grid: Vec<f64>,
    /// The δ grid, in input order.
    pub delta_grid: Vec<f64>,
    /// Number of records certified against.
    pub n_rows: usize,
    /// `certified[i][j]` = number of records whose certified δ at
    /// `eps_grid[i]` is at most `delta_grid[j]`.
    pub certified: Vec<Vec<usize>>,
    /// Per-ε certified δ bounds, row order (`deltas[i][r]` is record `r`'s
    /// bound at `eps_grid[i]`).
    pub deltas: Vec<Vec<f64>>,
}

impl DatasetCertification {
    /// Certified fraction at grid point (`eps_grid[i]`, `delta_grid[j]`).
    pub fn fraction(&self, i: usize, j: usize) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.certified[i][j] as f64 / self.n_rows as f64
    }

    /// Serializes the report into a schema-versioned JSON envelope (kind
    /// `"certification-report"`).
    pub fn to_json(&self) -> Result<String, FitError> {
        ifair_api::to_versioned_json(CERTIFICATION_REPORT_KIND, self)
    }

    /// Restores a report persisted by [`DatasetCertification::to_json`].
    pub fn from_json(json: &str) -> Result<DatasetCertification, FitError> {
        ifair_api::from_versioned_json(CERTIFICATION_REPORT_KIND, json)
    }
}

/// Next representable `f64` toward `+∞` (0 steps to the smallest positive
/// subnormal; `+∞` and NaN pass through). Local bit-twiddling version so
/// the crate does not depend on the stabilization point of
/// `f64::next_up`.
pub fn next_up_f64(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Next representable `f64` toward `−∞` (mirror of [`next_up_f64`]).
pub fn next_down_f64(x: f64) -> f64 {
    -next_up_f64(-x)
}

fn next_up_f32(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f32::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f32::from_bits(bits + 1)
    } else {
        f32::from_bits(bits - 1)
    }
}

fn next_down_f32(x: f32) -> f32 {
    -next_up_f32(-x)
}

/// The scalar operations the interval kernel needs, implemented for `f64`
/// (training precision) and `f32` (the opt-in serving precision, where the
/// certificate must bound the single-precision transform).
trait CertFloat: Copy + PartialOrd {
    const ZERO: Self;
    const ONE: Self;
    /// Terminal relative slack on δ (dominates libm error and summation
    /// re-association; see the module docs).
    const REL_SLACK: Self;
    /// Terminal absolute slack on δ.
    const ABS_SLACK: Self;
    /// Next representable value toward `+∞`.
    fn up(self) -> Self;
    /// Next representable value toward `−∞`.
    fn down(self) -> Self;
    fn abs_v(self) -> Self;
    fn powf_v(self, e: Self) -> Self;
    fn exp_v(self) -> Self;
    fn sqrt_v(self) -> Self;
    fn min_v(self, o: Self) -> Self;
    fn max_v(self, o: Self) -> Self;
    /// Exact widening to `f64` (identity for `f64`).
    fn widen(self) -> f64;
}

impl CertFloat for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    const REL_SLACK: f64 = 1e-12;
    const ABS_SLACK: f64 = 1e-12;
    fn up(self) -> f64 {
        next_up_f64(self)
    }
    fn down(self) -> f64 {
        next_down_f64(self)
    }
    fn abs_v(self) -> f64 {
        self.abs()
    }
    fn powf_v(self, e: f64) -> f64 {
        self.powf(e)
    }
    fn exp_v(self) -> f64 {
        self.exp()
    }
    fn sqrt_v(self) -> f64 {
        self.sqrt()
    }
    fn min_v(self, o: f64) -> f64 {
        self.min(o)
    }
    fn max_v(self, o: f64) -> f64 {
        self.max(o)
    }
    fn widen(self) -> f64 {
        self
    }
}

impl CertFloat for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    // f32 per-op error is ~6e-8 relative; chains through the forward map
    // are a few hundred ops, so 1e-4 relative + 1e-5 absolute leaves two
    // to three orders of magnitude of margin while staying far below any
    // useful f32 certificate.
    const REL_SLACK: f32 = 1e-4;
    const ABS_SLACK: f32 = 1e-5;
    fn up(self) -> f32 {
        next_up_f32(self)
    }
    fn down(self) -> f32 {
        next_down_f32(self)
    }
    fn abs_v(self) -> f32 {
        self.abs()
    }
    fn powf_v(self, e: f32) -> f32 {
        self.powf(e)
    }
    fn exp_v(self) -> f32 {
        self.exp()
    }
    fn sqrt_v(self) -> f32 {
        self.sqrt()
    }
    fn min_v(self, o: f32) -> f32 {
        self.min(o)
    }
    fn max_v(self, o: f32) -> f32 {
        self.max(o)
    }
    fn widen(self) -> f64 {
        f64::from(self)
    }
}

/// Everything the per-row kernel needs about a model, independent of the
/// storage precision: row-major prototypes, clamped weights, shape, and
/// the precomputed hull-diameter cap.
struct CertModel<T> {
    protos: Vec<T>,
    alpha: Vec<T>,
    k: usize,
    n: usize,
    p: T,
    rooted: bool,
    hull: T,
}

impl CertModel<f64> {
    fn from_model(model: &IFair) -> CertModel<f64> {
        let protos = model.prototypes().as_slice().to_vec();
        let alpha: Vec<f64> = model.alpha().iter().map(|&a| a.max(0.0)).collect();
        let (k, n) = (model.n_prototypes(), model.n_features());
        let hull = hull_diameter(&protos, k, n);
        CertModel {
            protos,
            alpha,
            k,
            n,
            p: model.config().p,
            rooted: model.config().softmax_distance == SoftmaxDistance::Rooted,
            hull,
        }
    }
}

impl CertModel<f32> {
    fn from_model_f32(model: &IFairF32) -> CertModel<f32> {
        let protos = model.prototypes_f32().to_vec();
        let alpha = model.alpha_f32().to_vec();
        let (k, n) = (model.n_prototypes(), model.n_features());
        let hull = hull_diameter(&protos, k, n);
        CertModel {
            protos,
            alpha,
            k,
            n,
            p: model.p_f32(),
            rooted: model.softmax_distance() == SoftmaxDistance::Rooted,
            hull,
        }
    }
}

/// Outward-rounded diameter of the prototype hull,
/// `max_{j<k} ‖v_j − v_k‖₂` — the global fallback cap on any certified δ
/// (both images always lie in the hull).
fn hull_diameter<T: CertArith>(protos: &[T], k: usize, n: usize) -> T {
    let mut best = T::ZERO;
    for j in 0..k {
        for l in (j + 1)..k {
            let mut sum = T::ZERO;
            for c in 0..n {
                let d = (protos[j * n + c] - protos_at(protos, l, n, c)).abs_v();
                sum = (sum + (d * d).up()).up();
            }
            best = best.max_v(sum.sqrt_v().up());
        }
    }
    best
}

#[inline]
fn protos_at<T: Copy>(protos: &[T], row: usize, n: usize, col: usize) -> T {
    protos[row * n + col]
}

// The trait lacks arithmetic operator bounds to keep it tiny; provide them
// through a blanket requirement instead.
use std::ops::{Add, Div, Mul, Sub};
trait CertArith:
    CertFloat + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self> + Div<Output = Self>
{
}
impl<T> CertArith for T where
    T: CertFloat + Add<Output = T> + Sub<Output = T> + Mul<Output = T> + Div<Output = T>
{
}

/// The per-row kernel: certified δ for the input box `[lo, hi]` (slices of
/// length `n`), with scratch buffers `d`/`e`/`u` of length `k` supplied by
/// the caller so batch loops allocate once per chunk.
fn box_delta<T: CertArith>(
    m: &CertModel<T>,
    lo: &[T],
    hi: &[T],
    d: &mut [(T, T)],
    e: &mut [(T, T)],
    u: &mut [(T, T)],
) -> BoxCertificate {
    // 1. Interval distances to every prototype.
    for (kk, dk) in d.iter_mut().enumerate() {
        let mut s_lo = T::ZERO;
        let mut s_hi = T::ZERO;
        for c in 0..m.n {
            let v = protos_at(&m.protos, kk, m.n, c);
            let a = m.alpha[c];
            // |x − v| over x ∈ [lo, hi]: zero when v is inside the box,
            // else the distance to the nearer edge; the farther edge gives
            // the maximum either way.
            let m1 = (lo[c] - v).abs_v();
            let m2 = (hi[c] - v).abs_v();
            let amin = if lo[c] <= v && v <= hi[c] {
                T::ZERO
            } else {
                m1.min_v(m2).down().max_v(T::ZERO)
            };
            let amax = m1.max_v(m2).up();
            // α_n |Δ|^p, monotone in |Δ| for |Δ| ≥ 0, p > 0.
            let t_lo = (a * amin.powf_v(m.p).down()).down().max_v(T::ZERO);
            let t_hi = (a * amax.powf_v(m.p).up()).up();
            s_lo = (s_lo + t_lo).down().max_v(T::ZERO);
            s_hi = (s_hi + t_hi).up();
        }
        if m.rooted {
            let inv_p = T::ONE / m.p;
            s_lo = s_lo.powf_v(inv_p).down().down().max_v(T::ZERO);
            s_hi = s_hi.powf_v(inv_p).up().up();
        }
        *dk = (s_lo, s_hi);
    }
    // 2. Interval softmax with a fixed shift c = min_k d_k↓ (softmax is
    // shift-invariant, so any fixed c yields valid bounds on the true
    // responsibilities; this choice keeps every exponent ≤ 0).
    let c = d
        .iter()
        .map(|&(lo, _)| lo)
        .fold(None::<T>, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min_v(v),
            })
        })
        .unwrap_or(T::ZERO);
    for (ek, &(d_lo, d_hi)) in e.iter_mut().zip(d.iter()) {
        let e_lo = (c - d_hi).down().exp_v().down().max_v(T::ZERO);
        let e_hi = (c - d_lo).up().exp_v().up();
        *ek = (e_lo, e_hi);
    }
    for kk in 0..m.k {
        // Upper bound: this prototype's weight at its maximum, everyone
        // else at their minimum — and vice versa for the lower bound.
        let mut rest_lo = T::ZERO;
        let mut rest_hi = T::ZERO;
        for (j, &(e_lo, e_hi)) in e.iter().enumerate() {
            if j == kk {
                continue;
            }
            rest_lo = (rest_lo + e_lo).down().max_v(T::ZERO);
            rest_hi = (rest_hi + e_hi).up();
        }
        let (e_lo, e_hi) = e[kk];
        let den_lo = (e_hi + rest_lo).down();
        let den_hi = (e_lo + rest_hi).up();
        let u_hi = if den_lo > T::ZERO {
            (e_hi / den_lo).up().min_v(T::ONE)
        } else {
            T::ONE
        };
        let u_lo = if den_hi > T::ZERO {
            (e_lo / den_hi).down().max_v(T::ZERO)
        } else {
            T::ZERO
        };
        u[kk] = (u_lo, u_hi);
    }
    // 3. Interval mixture and the output-box diagonal.
    let mut sum_sq = T::ZERO;
    for c in 0..m.n {
        let mut o_lo = T::ZERO;
        let mut o_hi = T::ZERO;
        for (kk, &(u_lo, u_hi)) in u.iter().enumerate() {
            let v = protos_at(&m.protos, kk, m.n, c);
            let (t_lo, t_hi) = if v >= T::ZERO {
                ((u_lo * v).down(), (u_hi * v).up())
            } else {
                ((u_hi * v).down(), (u_lo * v).up())
            };
            o_lo = (o_lo + t_lo).down();
            o_hi = (o_hi + t_hi).up();
        }
        let w = (o_hi - o_lo).up().max_v(T::ZERO);
        sum_sq = (sum_sq + (w * w).up()).up();
    }
    let ibp = sum_sq.sqrt_v().up();
    // 4. Hull-diameter cap, then the terminal soundness slack.
    let (raw, method) = if ibp <= m.hull {
        (ibp, CertMethod::IntervalBound)
    } else {
        (m.hull, CertMethod::GlobalDiameter)
    };
    let delta = ((raw * (T::ONE + T::REL_SLACK)).up() + T::ABS_SLACK).up();
    BoxCertificate {
        delta: delta.widen(),
        method,
    }
}

/// Validates a box matrix pair: equal shapes, expected width, finite
/// values, `lo ≤ hi` everywhere.
fn check_boxes(lo: &Matrix, hi: &Matrix, n: usize) -> Result<(), CertifyError> {
    if lo.shape() != hi.shape() {
        return Err(shape_error(format!(
            "box bounds disagree in shape: {:?} vs {:?}",
            lo.shape(),
            hi.shape()
        ))
        .into());
    }
    if lo.cols() != n {
        return Err(shape_error(format!(
            "box has {} columns but the model was fitted on {n}",
            lo.cols()
        ))
        .into());
    }
    for (&l, &h) in lo.as_slice().iter().zip(hi.as_slice()) {
        if !l.is_finite() || !h.is_finite() {
            return Err(shape_error("box bounds contain non-finite values").into());
        }
        if l > h {
            return Err(shape_error("box lower bound exceeds upper bound").into());
        }
    }
    Ok(())
}

/// Builds the `[x − ε, x + ε]` box matrices with outward rounding.
fn eps_box(x: &Matrix, eps: f64) -> (Matrix, Matrix) {
    let (rows, cols) = x.shape();
    let mut lo = Matrix::zeros(rows, cols);
    let mut hi = Matrix::zeros(rows, cols);
    for ((&v, l), h) in x
        .as_slice()
        .iter()
        .zip(lo.as_mut_slice())
        .zip(hi.as_mut_slice())
    {
        *l = next_down_f64(v - eps);
        *h = next_up_f64(v + eps);
    }
    (lo, hi)
}

fn check_rows_finite(x: &Matrix) -> Result<(), CertifyError> {
    if x.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(shape_error("rows contain non-finite values").into());
    }
    Ok(())
}

/// Certifies every row box of (`lo`, `hi`) against `cm`, fanning chunks
/// out over `pool` with the same fixed layout as the transform hot path —
/// bit-identical results at every pool size.
fn certify_boxes_on<T: CertArith + Send + Sync>(
    cm: &CertModel<T>,
    lo: &Matrix,
    hi: &Matrix,
    pool: Option<&par::WorkerPool>,
    load_row: impl Fn(&Matrix, usize, &mut [T]) + Sync,
) -> Vec<BoxCertificate> {
    let m = lo.rows();
    let mut out: Vec<BoxCertificate> = vec![
        BoxCertificate {
            delta: 0.0,
            method: CertMethod::IntervalBound,
        };
        m
    ];
    if m == 0 {
        return out;
    }
    let n_chunks = m.div_ceil(TRANSFORM_CHUNK_ROWS).min(TRANSFORM_MAX_CHUNKS);
    let ranges = par::chunk_ranges(m, n_chunks);
    let mut rest = out.as_mut_slice();
    let mut jobs = Vec::with_capacity(ranges.len());
    for r in ranges {
        let (chunk, tail) = rest.split_at_mut(r.len());
        rest = tail;
        jobs.push((r, chunk));
    }
    par::pool_map(pool, jobs, |(rows, chunk)| {
        let mut lo_row = vec![T::ZERO; cm.n];
        let mut hi_row = vec![T::ZERO; cm.n];
        let mut d = vec![(T::ZERO, T::ZERO); cm.k];
        let mut e = vec![(T::ZERO, T::ZERO); cm.k];
        let mut u = vec![(T::ZERO, T::ZERO); cm.k];
        for (slot, i) in chunk.iter_mut().zip(rows) {
            load_row(lo, i, &mut lo_row);
            load_row(hi, i, &mut hi_row);
            // The f32 path casts the f64 box endpoints; keep the cast
            // outward so the f32 box still encloses the f64 one.
            for (l, h) in lo_row.iter_mut().zip(hi_row.iter_mut()) {
                *l = l.down();
                *h = h.up();
            }
            *slot = box_delta(cm, &lo_row, &hi_row, &mut d, &mut e, &mut u);
        }
    });
    out
}

fn load_row_f64(x: &Matrix, i: usize, out: &mut [f64]) {
    out.copy_from_slice(x.row(i));
}

fn load_row_f32(x: &Matrix, i: usize, out: &mut [f32]) {
    for (o, &v) in out.iter_mut().zip(x.row(i)) {
        *o = v as f32;
    }
}

/// Shared grid summarization for [`IFair::certify_dataset`].
fn grid_from_deltas(
    eps_grid: &[f64],
    delta_grid: &[f64],
    n_rows: usize,
    deltas: Vec<Vec<f64>>,
) -> DatasetCertification {
    let certified = deltas
        .iter()
        .map(|per_row| {
            delta_grid
                .iter()
                .map(|&dl| per_row.iter().filter(|&&dr| dr <= dl).count())
                .collect()
        })
        .collect();
    DatasetCertification {
        eps_grid: eps_grid.to_vec(),
        delta_grid: delta_grid.to_vec(),
        n_rows,
        certified,
        deltas,
    }
}

fn check_grids(eps_grid: &[f64], delta_grid: &[f64]) -> Result<(), CertifyError> {
    if eps_grid.is_empty() || delta_grid.is_empty() {
        return Err(CertifyError::Epsilon(
            "certification grids must be non-empty".into(),
        ));
    }
    for &eps in eps_grid {
        check_epsilon(eps)?;
    }
    for &dl in delta_grid {
        if !dl.is_finite() || dl < 0.0 {
            return Err(CertifyError::Epsilon(format!(
                "delta grid values must be finite and non-negative, got {dl}"
            )));
        }
    }
    Ok(())
}

impl IFair {
    /// Certifies one record: a sound bound δ such that every input in the
    /// box `[x − ε, x + ε]` maps within δ of `x`'s representation (and of
    /// each other). See the module docs for the bound's construction.
    pub fn certify(&self, x: &[f64], eps: f64) -> Result<Certificate, CertifyError> {
        check_epsilon(eps)?;
        if x.len() != self.n_features() {
            return Err(shape_error(format!(
                "record has {} features but the model was fitted on {}",
                x.len(),
                self.n_features()
            ))
            .into());
        }
        let row = Matrix::from_vec(1, x.len(), x.to_vec()).map_err(FitError::from)?;
        let certs = self.certify_rows(&row, eps, None)?;
        Ok(certs.into_iter().next().expect("one row in, one cert out"))
    }

    /// [`IFair::certify`] over every row of `x`, fanned out over `pool`
    /// with the transform hot path's fixed chunk layout — certificates are
    /// bit-identical at every pool size, including `None`.
    pub fn certify_rows(
        &self,
        x: &Matrix,
        eps: f64,
        pool: Option<&par::WorkerPool>,
    ) -> Result<Vec<Certificate>, CertifyError> {
        check_epsilon(eps)?;
        check_rows_finite(x)?;
        let (lo, hi) = eps_box(x, eps);
        let boxes = self.certify_boxes(&lo, &hi, pool)?;
        Ok(boxes
            .into_iter()
            .map(|b| Certificate {
                eps,
                delta: b.delta,
                method: b.method,
            })
            .collect())
    }

    /// Certifies explicit per-row boxes `[lo, hi]` — the entry point for
    /// callers whose perturbation region is no longer a symmetric ε-ball
    /// (e.g. after affine scaler stages; see `Pipeline::certify_rows`).
    pub fn certify_boxes(
        &self,
        lo: &Matrix,
        hi: &Matrix,
        pool: Option<&par::WorkerPool>,
    ) -> Result<Vec<BoxCertificate>, CertifyError> {
        check_boxes(lo, hi, self.n_features())?;
        let cm = CertModel::from_model(self);
        Ok(certify_boxes_on(&cm, lo, hi, pool, load_row_f64))
    }

    /// Batch certification: certified δ for every row at every ε of
    /// `eps_grid`, summarized as certified counts against `delta_grid`.
    /// The certified fraction at each grid point is a sound lower bound on
    /// the empirical fraction of ε-box perturbations staying within δ.
    pub fn certify_dataset(
        &self,
        x: &Matrix,
        eps_grid: &[f64],
        delta_grid: &[f64],
        pool: Option<&par::WorkerPool>,
    ) -> Result<DatasetCertification, CertifyError> {
        check_grids(eps_grid, delta_grid)?;
        check_rows_finite(x)?;
        let mut deltas = Vec::with_capacity(eps_grid.len());
        for &eps in eps_grid {
            let certs = self.certify_rows(x, eps, pool)?;
            deltas.push(certs.into_iter().map(|c| c.delta).collect());
        }
        Ok(grid_from_deltas(eps_grid, delta_grid, x.rows(), deltas))
    }

    /// Outward-rounded diameter of the learned prototype hull — the
    /// global cap no certificate exceeds (see [`CertMethod`]).
    pub fn certification_hull_diameter(&self) -> f64 {
        CertModel::from_model(self).hull
    }
}

impl IFairF32 {
    /// [`IFair::certify`] against the single-precision serving transform:
    /// the bound covers the `f32` forward pass (inputs are cast outward,
    /// all interval arithmetic runs in `f32` with `f32` slack constants),
    /// so sampled `f32` representations never exceed it.
    pub fn certify(&self, x: &[f64], eps: f64) -> Result<Certificate, CertifyError> {
        check_epsilon(eps)?;
        if x.len() != self.n_features() {
            return Err(shape_error(format!(
                "record has {} features but the model was fitted on {}",
                x.len(),
                self.n_features()
            ))
            .into());
        }
        let row = Matrix::from_vec(1, x.len(), x.to_vec()).map_err(FitError::from)?;
        let certs = self.certify_rows(&row, eps, None)?;
        Ok(certs.into_iter().next().expect("one row in, one cert out"))
    }

    /// [`IFairF32::certify`] over every row of `x` (see
    /// [`IFair::certify_rows`] for the pool contract).
    pub fn certify_rows(
        &self,
        x: &Matrix,
        eps: f64,
        pool: Option<&par::WorkerPool>,
    ) -> Result<Vec<Certificate>, CertifyError> {
        check_epsilon(eps)?;
        check_rows_finite(x)?;
        let (lo, hi) = eps_box(x, eps);
        let boxes = self.certify_boxes(&lo, &hi, pool)?;
        Ok(boxes
            .into_iter()
            .map(|b| Certificate {
                eps,
                delta: b.delta,
                method: b.method,
            })
            .collect())
    }

    /// [`IFair::certify_boxes`] on the `f32` path: the `f64` box endpoints
    /// are cast outward to `f32`, so the certified region still encloses
    /// the requested one.
    pub fn certify_boxes(
        &self,
        lo: &Matrix,
        hi: &Matrix,
        pool: Option<&par::WorkerPool>,
    ) -> Result<Vec<BoxCertificate>, CertifyError> {
        check_boxes(lo, hi, self.n_features())?;
        let cm = CertModel::from_model_f32(self);
        Ok(certify_boxes_on(&cm, lo, hi, pool, load_row_f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IFairConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fitted() -> (Matrix, IFair) {
        let mut rng = StdRng::seed_from_u64(11);
        let rows: Vec<Vec<f64>> = (0..24)
            .map(|_| {
                vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    if rng.gen_bool(0.5) { 1.0 } else { 0.0 },
                ]
            })
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let config = IFairConfig {
            k: 3,
            max_iters: 30,
            n_restarts: 1,
            ..Default::default()
        };
        let model = IFair::fit(&x, &[false, false, true], &config).unwrap();
        (x, model)
    }

    #[test]
    fn certificates_bound_sampled_perturbations() {
        let (x, model) = fitted();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..4 {
            let xi = x.row(i).to_vec();
            let eps = 0.03;
            let cert = model.certify(&xi, eps).unwrap();
            let base = model.transform(&Matrix::from_vec(1, 3, xi.clone()).unwrap());
            for _ in 0..200 {
                let perturbed: Vec<f64> =
                    xi.iter().map(|&v| v + rng.gen_range(-eps..eps)).collect();
                let out = model.transform(&Matrix::from_vec(1, 3, perturbed).unwrap());
                let dist: f64 = out
                    .as_slice()
                    .iter()
                    .zip(base.as_slice())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    dist <= cert.delta,
                    "row {i}: sampled distance {dist} exceeds certified {}",
                    cert.delta
                );
            }
        }
    }

    #[test]
    fn zero_eps_certifies_near_zero_delta() {
        let (x, model) = fitted();
        let cert = model.certify(x.row(0), 0.0).unwrap();
        assert!(cert.delta < 1e-9, "eps=0 delta was {}", cert.delta);
        assert_eq!(cert.method, CertMethod::IntervalBound);
    }

    #[test]
    fn huge_eps_falls_back_to_hull_diameter() {
        let (x, model) = fitted();
        let cert = model.certify(x.row(0), 1e6).unwrap();
        assert_eq!(cert.method, CertMethod::GlobalDiameter);
        let hull = model.certification_hull_diameter();
        assert!(cert.delta >= hull);
        assert!(cert.delta <= hull * (1.0 + 1e-9) + 1e-9);
    }

    #[test]
    fn delta_is_monotone_in_eps() {
        let (x, model) = fitted();
        let mut last = 0.0;
        for eps in [0.0, 1e-3, 1e-2, 0.1, 1.0, 10.0] {
            let cert = model.certify(x.row(2), eps).unwrap();
            assert!(
                cert.delta >= last,
                "delta shrank: {} at eps={eps} after {last}",
                cert.delta
            );
            last = cert.delta;
        }
    }

    #[test]
    fn rows_and_boxes_agree_and_are_pool_invariant() {
        let (x, model) = fitted();
        let eps = 0.05;
        let serial = model.certify_rows(&x, eps, None).unwrap();
        for lanes in [1usize, 2, 4] {
            let pool = par::WorkerPool::new(lanes);
            let pooled = model.certify_rows(&x, eps, Some(&pool)).unwrap();
            assert_eq!(serial, pooled, "lanes={lanes}");
        }
        // Boxes built by hand match the eps path bit for bit.
        let (lo, hi) = eps_box(&x, eps);
        let boxes = model.certify_boxes(&lo, &hi, None).unwrap();
        for (c, b) in serial.iter().zip(&boxes) {
            assert_eq!(c.delta.to_bits(), b.delta.to_bits());
        }
    }

    #[test]
    fn dataset_grid_counts_are_consistent() {
        let (x, model) = fitted();
        let eps_grid = [0.01, 0.1];
        let delta_grid = [0.05, 0.5, 10.0];
        let report = model
            .certify_dataset(&x, &eps_grid, &delta_grid, None)
            .unwrap();
        assert_eq!(report.n_rows, x.rows());
        for i in 0..eps_grid.len() {
            // Counts are non-decreasing in delta.
            for j in 1..delta_grid.len() {
                assert!(report.certified[i][j] >= report.certified[i][j - 1]);
            }
            // The hull cap means everything certifies at a huge delta.
            assert!(report.fraction(i, delta_grid.len() - 1) > 0.0);
        }
        // JSON round trip is bit-exact.
        let back = DatasetCertification::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn certificate_json_round_trips_bit_exactly() {
        let (x, model) = fitted();
        let cert = model.certify(x.row(1), 0.07).unwrap();
        let back = Certificate::from_json(&cert.to_json().unwrap()).unwrap();
        assert_eq!(back.delta.to_bits(), cert.delta.to_bits());
        assert_eq!(back.eps.to_bits(), cert.eps.to_bits());
        assert_eq!(back.method, cert.method);
        assert!(Certificate::from_json("{not json").is_err());
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        let (x, model) = fitted();
        assert!(matches!(
            model.certify(x.row(0), -0.1),
            Err(CertifyError::Epsilon(_))
        ));
        assert!(matches!(
            model.certify(x.row(0), f64::NAN),
            Err(CertifyError::Epsilon(_))
        ));
        assert!(matches!(
            model.certify(&[0.0, 0.0], 0.1),
            Err(CertifyError::Model(_))
        ));
        let mut bad = x.clone();
        bad.set(0, 0, f64::INFINITY);
        assert!(matches!(
            model.certify_rows(&bad, 0.1, None),
            Err(CertifyError::Model(_))
        ));
        assert!(matches!(
            model.certify_dataset(&x, &[], &[0.1], None),
            Err(CertifyError::Epsilon(_))
        ));
        // Inverted boxes are rejected.
        let (lo, hi) = eps_box(&x, 0.1);
        assert!(model.certify_boxes(&hi, &lo, None).is_err());
    }

    #[test]
    fn f32_certificates_bound_the_f32_transform() {
        let (x, model) = fitted();
        let lowered = model.to_f32();
        let mut rng = StdRng::seed_from_u64(13);
        let eps = 0.02;
        for i in 0..3 {
            let xi = x.row(i).to_vec();
            let cert = lowered.certify(&xi, eps).unwrap();
            let base = lowered.transform_on(&Matrix::from_vec(1, 3, xi.clone()).unwrap(), None);
            for _ in 0..200 {
                let perturbed: Vec<f64> =
                    xi.iter().map(|&v| v + rng.gen_range(-eps..eps)).collect();
                let out = lowered.transform_on(&Matrix::from_vec(1, 3, perturbed).unwrap(), None);
                let dist: f64 = out
                    .as_slice()
                    .iter()
                    .zip(base.as_slice())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    dist <= cert.delta,
                    "f32 row {i}: sampled {dist} exceeds certified {}",
                    cert.delta
                );
            }
        }
    }

    #[test]
    fn next_up_down_step_outward() {
        assert!(next_up_f64(1.0) > 1.0);
        assert!(next_down_f64(1.0) < 1.0);
        assert!(next_up_f64(0.0) > 0.0);
        assert!(next_down_f64(0.0) < 0.0);
        assert!(next_up_f64(-1.0) > -1.0);
        assert_eq!(next_up_f64(f64::INFINITY), f64::INFINITY);
        assert!(next_up_f64(f64::NAN).is_nan());
    }
}
