//! Crash-safe checkpoints for mini-batch training.
//!
//! A [`FitCheckpoint`] is a complete snapshot of a
//! [`crate::FitStrategy::MiniBatch`] fit at an epoch boundary: the
//! parameter vector, the Adam moments, the sampler RNG's raw state, the
//! sampler's persistent shuffle state, and every completed restart so far.
//! [`crate::IFair::fit_checkpointed`] emits one after each epoch;
//! [`crate::IFair::resume_from_checkpoint`] replays the fit from the
//! snapshot and produces a model **bit-identical** to the uninterrupted
//! run — the training loop's state is a pure function of the seed, and the
//! checkpoint captures all of it.
//!
//! Checkpoints persist through the same schema-versioned JSON envelope as
//! model artifacts (kind `"ifair-checkpoint"`), written atomically
//! ([`ifair_api::write_atomic`]) so a crash mid-save leaves the previous
//! checkpoint intact, never a torn file.

use crate::config::IFairConfig;
use crate::model::RestartReport;
use crate::objective::SamplerState;
use ifair_api::{shape_error, FitError};
use ifair_optim::AdamState;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Kind tag of the versioned JSON envelope written by
/// [`FitCheckpoint::to_json`].
const CHECKPOINT_KIND: &str = "ifair-checkpoint";

/// A resumable epoch-boundary snapshot of a mini-batch fit.
///
/// Produced by [`crate::IFair::fit_checkpointed`] (and friends), consumed
/// by [`crate::IFair::resume_from_checkpoint`]. The snapshot carries its
/// own config and protected mask, so resuming needs only the checkpoint
/// and the training data; every field is re-validated against both before
/// any training step runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitCheckpoint {
    /// Hyper-parameters of the interrupted fit.
    pub(crate) config: IFairConfig,
    /// Per-column protected flags of the interrupted fit.
    pub(crate) protected: Vec<bool>,
    /// Record count of the training source (the sampler schedule and epoch
    /// length depend on it).
    pub(crate) n_records: usize,
    /// Zero-based restart in progress.
    pub(crate) restart: usize,
    /// Epochs completed within that restart (1-based: checkpoints are only
    /// written after a completed epoch).
    pub(crate) epoch: usize,
    /// Adam steps taken within that restart.
    pub(crate) steps_done: usize,
    /// Parameter vector at the boundary.
    pub(crate) theta: Vec<f64>,
    /// Adam moment state at the boundary.
    pub(crate) adam: AdamState,
    /// The sampler RNG's raw xoshiro256++ state (4 words).
    pub(crate) rng_state: Vec<u64>,
    /// The sampler's persistent shuffle state (see
    /// [`crate::objective::SamplerState`]).
    pub(crate) sampler: SamplerState,
    /// Mean batch loss of the last completed epoch.
    pub(crate) last_epoch_mean: f64,
    /// Reports of the restarts completed before the one in progress.
    pub(crate) restarts: Vec<RestartReport>,
    /// Parameters of the best completed restart, if any.
    pub(crate) best_theta: Option<Vec<f64>>,
    /// Index into `restarts` of that best restart.
    pub(crate) best_restart: Option<usize>,
}

impl FitCheckpoint {
    /// Zero-based index of the restart this checkpoint interrupts.
    pub fn restart(&self) -> usize {
        self.restart
    }

    /// Epochs completed within the interrupted restart.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Adam steps taken within the interrupted restart.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Record count of the training source this checkpoint belongs to.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Mean batch loss of the last completed epoch.
    pub fn last_epoch_mean(&self) -> f64 {
        self.last_epoch_mean
    }

    /// Serializes the checkpoint into the schema-versioned JSON envelope.
    pub fn to_json(&self) -> Result<String, FitError> {
        ifair_api::to_versioned_json(CHECKPOINT_KIND, self)
    }

    /// Parses a checkpoint from the versioned envelope, checking schema
    /// version and kind before touching the payload. Shape validation
    /// against the training data happens at resume time.
    pub fn from_json(json: &str) -> Result<FitCheckpoint, FitError> {
        ifair_api::from_versioned_json(CHECKPOINT_KIND, json)
    }

    /// Writes the checkpoint to `path` atomically (temp file + fsync +
    /// rename): a crash mid-save leaves the previous checkpoint readable,
    /// never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), FitError> {
        let json = self.to_json()?;
        ifair_api::write_atomic(path, json.as_bytes()).map_err(|e| {
            FitError::Serialization(format!("writing checkpoint `{}`: {e}", path.display()))
        })
    }

    /// Reads a checkpoint previously written by [`FitCheckpoint::save`].
    pub fn load(path: &Path) -> Result<FitCheckpoint, FitError> {
        let json = std::fs::read_to_string(path).map_err(|e| {
            FitError::Serialization(format!("reading checkpoint `{}`: {e}", path.display()))
        })?;
        FitCheckpoint::from_json(&json)
    }

    /// Validates the checkpoint's internal consistency against a training
    /// source of `m` records and `n` features — everything short of the
    /// sampler shuffle state, which
    /// [`crate::objective::MiniBatchObjective::restore_sampler_state`]
    /// checks itself.
    pub(crate) fn validate(&self, m: usize, n: usize) -> Result<(), FitError> {
        self.config.validate()?;
        let Some((_, _, epochs, _)) = self.config.strategy.schedule() else {
            return Err(FitError::Config(ifair_api::ConfigError {
                field: "strategy",
                message: "checkpoint carries an unbatched strategy — only mini-batch and \
                          data-parallel fits are checkpointable"
                    .into(),
            }));
        };
        if self.protected.len() != n {
            return Err(shape_error(format!(
                "checkpoint protected mask has length {}, training data has {n} columns",
                self.protected.len()
            )));
        }
        if self.n_records != m {
            return Err(shape_error(format!(
                "checkpoint was taken against {} records, source has {m} — the sampler \
                 schedule would diverge",
                self.n_records
            )));
        }
        if self.restart >= self.config.n_restarts {
            return Err(shape_error(format!(
                "checkpoint restart {} out of range for {} restarts",
                self.restart, self.config.n_restarts
            )));
        }
        if self.restarts.len() != self.restart {
            return Err(shape_error(format!(
                "checkpoint carries {} completed restart reports but interrupts restart {}",
                self.restarts.len(),
                self.restart
            )));
        }
        if self.epoch == 0 || self.epoch > epochs {
            return Err(shape_error(format!(
                "checkpoint epoch {} out of range 1..={epochs}",
                self.epoch
            )));
        }
        let dim = n * (self.config.k + 1);
        if self.theta.len() != dim {
            return Err(shape_error(format!(
                "checkpoint theta has dimension {}, expected {dim}",
                self.theta.len()
            )));
        }
        if self.adam.first_moment().len() != dim {
            return Err(shape_error(format!(
                "checkpoint Adam state has dimension {}, expected {dim}",
                self.adam.first_moment().len()
            )));
        }
        if !self.theta.iter().all(|v| v.is_finite()) {
            return Err(shape_error("checkpoint theta contains non-finite values"));
        }
        if self.rng_state.len() != 4 || self.rng_state.iter().all(|&w| w == 0) {
            return Err(shape_error(
                "checkpoint RNG state must be 4 words and not all zero",
            ));
        }
        match (&self.best_theta, self.best_restart) {
            (None, None) => {}
            (Some(theta), Some(idx)) => {
                if theta.len() != dim {
                    return Err(shape_error(format!(
                        "checkpoint best theta has dimension {}, expected {dim}",
                        theta.len()
                    )));
                }
                if idx >= self.restarts.len() {
                    return Err(shape_error(format!(
                        "checkpoint best restart {idx} not among the {} completed restarts",
                        self.restarts.len()
                    )));
                }
            }
            _ => {
                return Err(shape_error(
                    "checkpoint best theta and best restart must be present together",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FitStrategy, IFairConfig};

    fn base_config() -> IFairConfig {
        IFairConfig {
            k: 2,
            strategy: FitStrategy::MiniBatch {
                epochs: 4,
                batch_records: 8,
                pairs_per_batch: 16,
                learning_rate: 0.01,
            },
            ..Default::default()
        }
    }

    fn base_checkpoint() -> FitCheckpoint {
        let config = base_config();
        let n = 3;
        let dim = n * (config.k + 1);
        FitCheckpoint {
            config,
            protected: vec![false, false, true],
            n_records: 20,
            restart: 0,
            epoch: 2,
            steps_done: 6,
            theta: vec![0.25; dim],
            adam: AdamState::new(dim),
            rng_state: vec![1, 2, 3, 4],
            sampler: SamplerState {
                perm: Vec::new(),
                pair_order: Vec::new(),
            },
            last_epoch_mean: 1.5,
            restarts: Vec::new(),
            best_theta: None,
            best_restart: None,
        }
    }

    #[test]
    fn json_roundtrip_is_bitwise() {
        let cp = base_checkpoint();
        let json = cp.to_json().unwrap();
        let back = FitCheckpoint::from_json(&json).unwrap();
        assert_eq!(back.theta, cp.theta);
        assert_eq!(back.adam, cp.adam);
        assert_eq!(back.rng_state, cp.rng_state);
        assert_eq!(back.sampler, cp.sampler);
        assert_eq!(back.restart, cp.restart);
        assert_eq!(back.epoch, cp.epoch);
        assert_eq!(back.steps_done, cp.steps_done);
        assert_eq!(back.last_epoch_mean.to_bits(), cp.last_epoch_mean.to_bits());
    }

    #[test]
    fn save_load_roundtrips_through_disk() {
        let cp = base_checkpoint();
        let path =
            std::env::temp_dir().join(format!("ifair-checkpoint-test-{}.json", std::process::id()));
        cp.save(&path).unwrap();
        let back = FitCheckpoint::load(&path).unwrap();
        assert_eq!(back.theta, cp.theta);
        assert_eq!(back.epoch, cp.epoch);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_accepts_a_consistent_checkpoint() {
        base_checkpoint().validate(20, 3).unwrap();
    }

    #[test]
    fn validate_rejects_shape_drift() {
        // Record count changed since the checkpoint was taken.
        assert!(base_checkpoint().validate(21, 3).is_err());
        // Feature width changed.
        assert!(base_checkpoint().validate(20, 4).is_err());
        // Theta truncated (a corrupt or hand-edited file).
        let mut cp = base_checkpoint();
        cp.theta.pop();
        assert!(cp.validate(20, 3).is_err());
        // RNG state torn down to zero.
        let mut cp = base_checkpoint();
        cp.rng_state = vec![0, 0, 0, 0];
        assert!(cp.validate(20, 3).is_err());
        // Restart index beyond the configured restarts.
        let mut cp = base_checkpoint();
        cp.restart = 99;
        assert!(cp.validate(20, 3).is_err());
        // Epoch 0 never produces a checkpoint.
        let mut cp = base_checkpoint();
        cp.epoch = 0;
        assert!(cp.validate(20, 3).is_err());
        // Best fields must come in pairs.
        let mut cp = base_checkpoint();
        cp.best_restart = Some(0);
        assert!(cp.validate(20, 3).is_err());
    }

    #[test]
    fn full_batch_checkpoints_are_rejected() {
        let mut cp = base_checkpoint();
        cp.config.strategy = FitStrategy::FullBatch;
        assert!(matches!(
            cp.validate(20, 3).unwrap_err(),
            FitError::Config(_)
        ));
    }
}
