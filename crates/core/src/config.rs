//! Configuration of the iFair model.

use ifair_api::{ensure, ConfigError};
use serde::{Deserialize, Serialize};

/// How the attribute-weight vector `α` is initialized (§V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// **iFair-a**: every `α_n` uniform in `(0, 1)`.
    RandomUniform,
    /// **iFair-b**: protected attributes start near zero (`1e-4`), reflecting
    /// the intuition that protected attributes should not contribute to the
    /// similarity of individuals; non-protected weights uniform in `(0, 1)`.
    NearZeroProtected,
}

/// Which distance is measured between transformed records in the fairness
/// loss (Definition 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FairnessDistance {
    /// Plain Euclidean distance on `x̃` — what the reference implementation
    /// uses; the target `d(x*_i, x*_j)` is likewise unweighted.
    Unweighted,
    /// The learned weighted Minkowski metric of Definition 7 applied to `x̃`
    /// (the paper's literal reading). The target stays unweighted.
    Weighted,
}

/// Which quantity feeds the softmax that assigns records to prototypes
/// (Definition 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftmaxDistance {
    /// The power sum `Σ_n α_n |x_n - v_n|^p` without the `1/p` root — what the
    /// reference implementation (and LFR before it) exponentiates. For `p = 2`
    /// this makes `u_i` a Gaussian-kernel responsibility vector.
    PowerSum,
    /// The rooted Minkowski distance of Definition 7 (the paper's literal
    /// Definition 8).
    Rooted,
}

/// Which record pairs enter the fairness loss.
///
/// Definition 5 sums over **all** pairs, which is `O(M²)`; the paper notes
/// it avoids "the quadratic number of comparisons" in practice. Both options
/// are provided and compared in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FairnessPairs {
    /// All `M(M-1)/2` pairs (exact Definition 5).
    Exact,
    /// Distances to a fixed random subset of `n_anchors` records are
    /// preserved instead of all pairwise distances — `O(M · n_anchors)`.
    Anchored {
        /// Number of anchor records (clamped to `M`).
        n_anchors: usize,
    },
    /// A fixed random sample of `n_pairs` record pairs.
    Subsampled {
        /// Number of sampled pairs (clamped to the number of distinct pairs).
        n_pairs: usize,
    },
}

/// How [`crate::IFair::fit`] drives the optimizer.
///
/// [`FitStrategy::FullBatch`] is the paper's training loop: box-constrained
/// L-BFGS over the whole dataset, every fairness pair of
/// [`IFairConfig::fairness_pairs`] in every evaluation. Its per-iteration
/// cost grows with `M` (and `M²` for [`FairnessPairs::Exact`]), which is
/// fine for Table-2-sized data and hopeless for millions of records.
///
/// [`FitStrategy::MiniBatch`] is the stochastic escape hatch: every Adam
/// step resamples a fresh record batch (and a fresh set of fairness pairs
/// *within* that batch) from a seeded RNG, so the per-step cost depends only
/// on `batch_records` and `pairs_per_batch` — never on `M`. Batches can be
/// drawn from an in-memory matrix or streamed from any
/// [`ifair_data::stream::RecordSource`] (see [`crate::IFair::fit_source`]),
/// so datasets that do not fit in memory remain trainable.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum FitStrategy {
    /// Deterministic full-batch L-BFGS (the paper's §III-C loop). The
    /// default, bit-identical to the historical behavior.
    #[default]
    FullBatch,
    /// Seeded mini-batch SGD with Adam updates. An *epoch* is
    /// `ceil(M / batch_records)` steps; each step draws `batch_records`
    /// distinct records and up to `pairs_per_batch` distinct fairness pairs
    /// among them (clamped to the batch's `B·(B−1)/2` distinct pairs — the
    /// clamp is surfaced in [`crate::TrainingReport`]).
    /// [`IFairConfig::fairness_pairs`] is ignored on this path;
    /// `max_iters`/`grad_tol` likewise (the epoch budget owns termination).
    MiniBatch {
        /// Records per batch (clamped to `M`; must be at least 2 so a batch
        /// can contain a fairness pair).
        batch_records: usize,
        /// Fairness pairs drawn within each batch.
        pairs_per_batch: usize,
        /// Number of passes (in expectation) over the dataset per restart.
        epochs: usize,
        /// Adam step size.
        learning_rate: f64,
    },
    /// The mini-batch schedule executed across `workers` OS processes (see
    /// [`crate::IFair::fit_data_parallel`]): the coordinator runs the exact
    /// [`FitStrategy::MiniBatch`] loop — same sampler, same Adam step —
    /// while the per-chunk gradient kernels are computed by worker
    /// processes and folded back in the fixed global chunk order, so the
    /// result is bit-identical to the single-process fit at every worker
    /// count.
    DataParallel {
        /// Worker processes (at least 1).
        workers: usize,
        /// Records per batch, as in [`FitStrategy::MiniBatch`].
        batch_records: usize,
        /// Fairness pairs drawn within each batch.
        pairs_per_batch: usize,
        /// Number of passes (in expectation) over the dataset per restart.
        epochs: usize,
        /// Adam step size.
        learning_rate: f64,
    },
}

impl FitStrategy {
    /// A mini-batch strategy with field defaults that suit mid-size data:
    /// 256-record batches, 1024 pairs per batch, 5 epochs, Adam step 0.05.
    pub fn mini_batch() -> FitStrategy {
        FitStrategy::MiniBatch {
            batch_records: 256,
            pairs_per_batch: 1024,
            epochs: 5,
            learning_rate: 0.05,
        }
    }

    /// A data-parallel strategy with the [`FitStrategy::mini_batch`]
    /// schedule defaults and the given worker count.
    pub fn data_parallel(workers: usize) -> FitStrategy {
        FitStrategy::DataParallel {
            workers,
            batch_records: 256,
            pairs_per_batch: 1024,
            epochs: 5,
            learning_rate: 0.05,
        }
    }

    /// The stochastic schedule `(batch_records, pairs_per_batch, epochs,
    /// learning_rate)` shared by [`FitStrategy::MiniBatch`] and
    /// [`FitStrategy::DataParallel`]; `None` for the full-batch strategy.
    /// The two stochastic variants with equal schedules produce
    /// bit-identical models — `DataParallel` only changes who computes the
    /// gradient chunks.
    pub fn schedule(&self) -> Option<(usize, usize, usize, f64)> {
        match *self {
            FitStrategy::FullBatch => None,
            FitStrategy::MiniBatch {
                batch_records,
                pairs_per_batch,
                epochs,
                learning_rate,
            }
            | FitStrategy::DataParallel {
                batch_records,
                pairs_per_batch,
                epochs,
                learning_rate,
                ..
            } => Some((batch_records, pairs_per_batch, epochs, learning_rate)),
        }
    }
}

/// Hyper-parameters of [`crate::IFair`].
///
/// Defaults follow the paper's grid-search center: `K = 10` prototypes,
/// `λ = μ = 1`, `p = 2` (Gaussian kernel), best of 3 restarts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IFairConfig {
    /// Number of prototypes `K` (the paper's grid: {10, 20, 30}).
    pub k: usize,
    /// Weight `λ` of the utility (reconstruction) loss.
    pub lambda: f64,
    /// Weight `μ` of the individual-fairness loss.
    pub mu: f64,
    /// Minkowski exponent `p >= 1` of Definition 7 (`2` = Gaussian kernel).
    pub p: f64,
    /// Whether the prototype-assignment softmax sees the rooted distance or
    /// the raw power sum.
    pub softmax_distance: SoftmaxDistance,
    /// Attribute-weight initialization (iFair-a vs iFair-b).
    pub init: InitStrategy,
    /// When true, protected attribute weights are pinned to (near) zero by
    /// box constraints instead of merely initialized there — an extension
    /// ablated in the benches.
    pub freeze_protected_alpha: bool,
    /// Distance used between transformed records in `L_fair`.
    pub fairness_distance: FairnessDistance,
    /// Pair set of `L_fair` (full-batch path; the mini-batch path draws its
    /// own pairs per batch).
    pub fairness_pairs: FairnessPairs,
    /// Training path: deterministic full-batch L-BFGS or seeded mini-batch
    /// Adam. Defaults to [`FitStrategy::FullBatch`]; `#[serde(default)]` so
    /// configurations serialized before this field existed still load.
    #[serde(default)]
    pub strategy: FitStrategy,
    /// Box constraints on every `α_n` (`None` leaves α unconstrained).
    pub alpha_bounds: Option<(f64, f64)>,
    /// Number of random restarts; the run with the lowest final loss wins
    /// (§V-B: "we report the results from the best of 3 runs").
    pub n_restarts: usize,
    /// Maximum L-BFGS iterations per restart.
    pub max_iters: usize,
    /// Gradient tolerance of the optimizer.
    pub grad_tol: f64,
    /// RNG seed for initialization (restart `r` uses `seed + r`).
    pub seed: u64,
    /// Worker threads of the trainer's persistent pool, which drives every
    /// hot loop (forward pass, backprop, the pairwise `L_fair` kernel, and
    /// the pair-target build): `0` = use all hardware threads (the
    /// default), `1` = force the serial path (no threads are ever spawned),
    /// other values are taken literally (may exceed the core count). The
    /// pool's threads are created lazily on first parallel use — once per
    /// objective, not per evaluation — and live for the whole fit. The
    /// thread count only affects speed, never numerics: every kernel's
    /// chunk layout and reduction order are fixed functions of the problem
    /// size, so seeded fits are reproducible across machines.
    pub n_threads: usize,
}

impl Default for IFairConfig {
    fn default() -> Self {
        IFairConfig {
            k: 10,
            lambda: 1.0,
            mu: 1.0,
            p: 2.0,
            softmax_distance: SoftmaxDistance::PowerSum,
            init: InitStrategy::NearZeroProtected,
            freeze_protected_alpha: false,
            fairness_distance: FairnessDistance::Unweighted,
            fairness_pairs: FairnessPairs::Exact,
            strategy: FitStrategy::FullBatch,
            alpha_bounds: Some((0.0, 1.0)),
            n_restarts: 3,
            max_iters: 150,
            grad_tol: 1e-5,
            seed: 42,
            n_threads: 0,
        }
    }
}

impl IFairConfig {
    /// Validates the configuration, reporting the first violated constraint
    /// with the offending field's name.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(self.k >= 1, "k", "must be at least 1")?;
        ensure(
            self.p >= 1.0,
            "p",
            format!("Minkowski p must be >= 1, got {}", self.p),
        )?;
        ensure(
            self.lambda >= 0.0 && self.mu >= 0.0,
            "lambda/mu",
            "must be non-negative",
        )?;
        ensure(
            self.lambda != 0.0 || self.mu != 0.0,
            "lambda/mu",
            "cannot both be zero",
        )?;
        ensure(self.n_restarts >= 1, "n_restarts", "must be at least 1")?;
        if let Some((lo, hi)) = self.alpha_bounds {
            ensure(
                lo < hi,
                "alpha_bounds",
                format!("bounds ({lo}, {hi}) are empty"),
            )?;
        }
        match self.fairness_pairs {
            FairnessPairs::Anchored { n_anchors } => ensure(
                n_anchors >= 1,
                "fairness_pairs.n_anchors",
                "must be at least 1",
            )?,
            FairnessPairs::Subsampled { n_pairs } => {
                ensure(n_pairs >= 1, "fairness_pairs.n_pairs", "must be at least 1")?
            }
            FairnessPairs::Exact => {}
        }
        if let Some((batch_records, pairs_per_batch, epochs, learning_rate)) =
            self.strategy.schedule()
        {
            ensure(
                batch_records >= 2,
                "strategy.batch_records",
                "must be at least 2 so a batch can contain a fairness pair",
            )?;
            ensure(
                pairs_per_batch >= 1,
                "strategy.pairs_per_batch",
                "must be at least 1",
            )?;
            ensure(epochs >= 1, "strategy.epochs", "must be at least 1")?;
            ensure(
                learning_rate.is_finite() && learning_rate > 0.0,
                "strategy.learning_rate",
                format!("must be a positive finite step size, got {learning_rate}"),
            )?;
        }
        if let FitStrategy::DataParallel { workers, .. } = self.strategy {
            ensure(workers >= 1, "strategy.workers", "must be at least 1")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(IFairConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let base = IFairConfig::default();
        assert!(IFairConfig {
            k: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            p: 0.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            lambda: -1.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            lambda: 0.0,
            mu: 0.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            n_restarts: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            alpha_bounds: Some((1.0, 1.0)),
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            fairness_pairs: FairnessPairs::Anchored { n_anchors: 0 },
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 0 },
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rejects_bad_mini_batch_values() {
        let base = IFairConfig::default();
        let with = |strategy| IFairConfig {
            strategy,
            ..base.clone()
        };
        assert!(with(FitStrategy::mini_batch()).validate().is_ok());
        assert!(with(FitStrategy::MiniBatch {
            batch_records: 1,
            pairs_per_batch: 10,
            epochs: 1,
            learning_rate: 0.05,
        })
        .validate()
        .is_err());
        assert!(with(FitStrategy::MiniBatch {
            batch_records: 16,
            pairs_per_batch: 0,
            epochs: 1,
            learning_rate: 0.05,
        })
        .validate()
        .is_err());
        assert!(with(FitStrategy::MiniBatch {
            batch_records: 16,
            pairs_per_batch: 10,
            epochs: 0,
            learning_rate: 0.05,
        })
        .validate()
        .is_err());
        for lr in [0.0, -0.1, f64::NAN, f64::INFINITY] {
            assert!(with(FitStrategy::MiniBatch {
                batch_records: 16,
                pairs_per_batch: 10,
                epochs: 1,
                learning_rate: lr,
            })
            .validate()
            .is_err());
        }
    }

    #[test]
    fn data_parallel_shares_the_mini_batch_schedule() {
        let dp = FitStrategy::data_parallel(4);
        assert_eq!(dp.schedule(), FitStrategy::mini_batch().schedule());
        assert_eq!(FitStrategy::FullBatch.schedule(), None);

        let base = IFairConfig::default();
        let with = |strategy| IFairConfig {
            strategy,
            ..base.clone()
        };
        assert!(with(FitStrategy::data_parallel(2)).validate().is_ok());
        assert!(with(FitStrategy::data_parallel(0)).validate().is_err());
        assert!(with(FitStrategy::DataParallel {
            workers: 2,
            batch_records: 1,
            pairs_per_batch: 16,
            epochs: 1,
            learning_rate: 0.05,
        })
        .validate()
        .is_err());

        let json = serde_json::to_string(&with(FitStrategy::data_parallel(3))).unwrap();
        let back: IFairConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strategy, FitStrategy::data_parallel(3));
    }

    #[test]
    fn serde_roundtrip() {
        let c = IFairConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: IFairConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.k, c.k);
        assert_eq!(back.init, c.init);
        assert_eq!(back.strategy, FitStrategy::FullBatch);
    }

    #[test]
    fn strategy_field_defaults_when_absent() {
        // Configurations serialized before `strategy` existed (PR ≤ 3 model
        // artifacts) must still deserialize, as full-batch.
        let json = serde_json::to_string(&IFairConfig::default()).unwrap();
        let stripped = json.replace("\"strategy\":\"FullBatch\",", "");
        assert_ne!(json, stripped, "strategy field must have been present");
        let back: IFairConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.strategy, FitStrategy::FullBatch);

        let mb = IFairConfig {
            strategy: FitStrategy::mini_batch(),
            ..IFairConfig::default()
        };
        let json = serde_json::to_string(&mb).unwrap();
        let back: IFairConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.strategy, mb.strategy);
    }
}
