//! Configuration of the iFair model.

use ifair_api::{ensure, ConfigError};
use serde::{Deserialize, Serialize};

/// How the attribute-weight vector `α` is initialized (§V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// **iFair-a**: every `α_n` uniform in `(0, 1)`.
    RandomUniform,
    /// **iFair-b**: protected attributes start near zero (`1e-4`), reflecting
    /// the intuition that protected attributes should not contribute to the
    /// similarity of individuals; non-protected weights uniform in `(0, 1)`.
    NearZeroProtected,
}

/// Which distance is measured between transformed records in the fairness
/// loss (Definition 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FairnessDistance {
    /// Plain Euclidean distance on `x̃` — what the reference implementation
    /// uses; the target `d(x*_i, x*_j)` is likewise unweighted.
    Unweighted,
    /// The learned weighted Minkowski metric of Definition 7 applied to `x̃`
    /// (the paper's literal reading). The target stays unweighted.
    Weighted,
}

/// Which quantity feeds the softmax that assigns records to prototypes
/// (Definition 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftmaxDistance {
    /// The power sum `Σ_n α_n |x_n - v_n|^p` without the `1/p` root — what the
    /// reference implementation (and LFR before it) exponentiates. For `p = 2`
    /// this makes `u_i` a Gaussian-kernel responsibility vector.
    PowerSum,
    /// The rooted Minkowski distance of Definition 7 (the paper's literal
    /// Definition 8).
    Rooted,
}

/// Which record pairs enter the fairness loss.
///
/// Definition 5 sums over **all** pairs, which is `O(M²)`; the paper notes
/// it avoids "the quadratic number of comparisons" in practice. Both options
/// are provided and compared in the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FairnessPairs {
    /// All `M(M-1)/2` pairs (exact Definition 5).
    Exact,
    /// Distances to a fixed random subset of `n_anchors` records are
    /// preserved instead of all pairwise distances — `O(M · n_anchors)`.
    Anchored {
        /// Number of anchor records (clamped to `M`).
        n_anchors: usize,
    },
    /// A fixed random sample of `n_pairs` record pairs.
    Subsampled {
        /// Number of sampled pairs (clamped to the number of distinct pairs).
        n_pairs: usize,
    },
}

/// Hyper-parameters of [`crate::IFair`].
///
/// Defaults follow the paper's grid-search center: `K = 10` prototypes,
/// `λ = μ = 1`, `p = 2` (Gaussian kernel), best of 3 restarts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IFairConfig {
    /// Number of prototypes `K` (the paper's grid: {10, 20, 30}).
    pub k: usize,
    /// Weight `λ` of the utility (reconstruction) loss.
    pub lambda: f64,
    /// Weight `μ` of the individual-fairness loss.
    pub mu: f64,
    /// Minkowski exponent `p >= 1` of Definition 7 (`2` = Gaussian kernel).
    pub p: f64,
    /// Whether the prototype-assignment softmax sees the rooted distance or
    /// the raw power sum.
    pub softmax_distance: SoftmaxDistance,
    /// Attribute-weight initialization (iFair-a vs iFair-b).
    pub init: InitStrategy,
    /// When true, protected attribute weights are pinned to (near) zero by
    /// box constraints instead of merely initialized there — an extension
    /// ablated in the benches.
    pub freeze_protected_alpha: bool,
    /// Distance used between transformed records in `L_fair`.
    pub fairness_distance: FairnessDistance,
    /// Pair set of `L_fair`.
    pub fairness_pairs: FairnessPairs,
    /// Box constraints on every `α_n` (`None` leaves α unconstrained).
    pub alpha_bounds: Option<(f64, f64)>,
    /// Number of random restarts; the run with the lowest final loss wins
    /// (§V-B: "we report the results from the best of 3 runs").
    pub n_restarts: usize,
    /// Maximum L-BFGS iterations per restart.
    pub max_iters: usize,
    /// Gradient tolerance of the optimizer.
    pub grad_tol: f64,
    /// RNG seed for initialization (restart `r` uses `seed + r`).
    pub seed: u64,
    /// Worker threads of the trainer's persistent pool, which drives every
    /// hot loop (forward pass, backprop, the pairwise `L_fair` kernel, and
    /// the pair-target build): `0` = use all hardware threads (the
    /// default), `1` = force the serial path (no threads are ever spawned),
    /// other values are taken literally (may exceed the core count). The
    /// pool's threads are created lazily on first parallel use — once per
    /// objective, not per evaluation — and live for the whole fit. The
    /// thread count only affects speed, never numerics: every kernel's
    /// chunk layout and reduction order are fixed functions of the problem
    /// size, so seeded fits are reproducible across machines.
    pub n_threads: usize,
}

impl Default for IFairConfig {
    fn default() -> Self {
        IFairConfig {
            k: 10,
            lambda: 1.0,
            mu: 1.0,
            p: 2.0,
            softmax_distance: SoftmaxDistance::PowerSum,
            init: InitStrategy::NearZeroProtected,
            freeze_protected_alpha: false,
            fairness_distance: FairnessDistance::Unweighted,
            fairness_pairs: FairnessPairs::Exact,
            alpha_bounds: Some((0.0, 1.0)),
            n_restarts: 3,
            max_iters: 150,
            grad_tol: 1e-5,
            seed: 42,
            n_threads: 0,
        }
    }
}

impl IFairConfig {
    /// Validates the configuration, reporting the first violated constraint
    /// with the offending field's name.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure(self.k >= 1, "k", "must be at least 1")?;
        ensure(
            self.p >= 1.0,
            "p",
            format!("Minkowski p must be >= 1, got {}", self.p),
        )?;
        ensure(
            self.lambda >= 0.0 && self.mu >= 0.0,
            "lambda/mu",
            "must be non-negative",
        )?;
        ensure(
            self.lambda != 0.0 || self.mu != 0.0,
            "lambda/mu",
            "cannot both be zero",
        )?;
        ensure(self.n_restarts >= 1, "n_restarts", "must be at least 1")?;
        if let Some((lo, hi)) = self.alpha_bounds {
            ensure(
                lo < hi,
                "alpha_bounds",
                format!("bounds ({lo}, {hi}) are empty"),
            )?;
        }
        match self.fairness_pairs {
            FairnessPairs::Anchored { n_anchors } => ensure(
                n_anchors >= 1,
                "fairness_pairs.n_anchors",
                "must be at least 1",
            ),
            FairnessPairs::Subsampled { n_pairs } => {
                ensure(n_pairs >= 1, "fairness_pairs.n_pairs", "must be at least 1")
            }
            FairnessPairs::Exact => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(IFairConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let base = IFairConfig::default();
        assert!(IFairConfig {
            k: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            p: 0.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            lambda: -1.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            lambda: 0.0,
            mu: 0.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            n_restarts: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            alpha_bounds: Some((1.0, 1.0)),
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            fairness_pairs: FairnessPairs::Anchored { n_anchors: 0 },
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 0 },
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let c = IFairConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: IFairConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.k, c.k);
        assert_eq!(back.init, c.init);
    }
}
