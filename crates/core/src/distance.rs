//! The weighted Minkowski distance of Definition 7 and its derivatives.
//!
//! ```text
//! d(x, y) = ( Σ_n α_n |x_n - y_n|^p )^(1/p)
//! ```
//!
//! `p = 2` is the paper's default ("corresponds to a Gaussian kernel"). The
//! derivative helpers here are the building blocks of the analytic gradient
//! in [`crate::objective`].
//!
//! # Kernel structure
//!
//! The distance entry points are generic over [`Real`] (`f64` for training,
//! `f32` for the opt-in serving path) and evaluate through the canonical
//! lane-chunked reduction kernels in [`ifair_linalg::lanes`] — four
//! accumulator lanes, `(acc0 + acc1) + (acc2 + acc3)` fold, sequential tail
//! — which the autovectorizer (and the opt-in `simd` intrinsics backend)
//! execute bit-identically. `p = 2` takes the vectorized `w·(Δ)²` fast
//! path; other `p` fall back to the lane-structured `powf` loop. The
//! textbook single-accumulator forms survive in [`mod@reference`] as the
//! conformance-test oracle (agreement is tolerance-bounded, not bitwise:
//! re-association moves sums by O(ε) relative).

use ifair_linalg::lanes;
use ifair_linalg::Real;

/// Weighted Minkowski distance between `x` and `y` (Definition 7).
///
/// Negative weights are clamped to 0 (the distance must stay a metric for
/// `p >= 1`; the optimizer's box constraints normally keep `α >= 0`, but a
/// transiently infeasible iterate must not produce NaN).
pub fn weighted_minkowski<T: Real>(x: &[T], y: &[T], alpha: &[T], p: T) -> T {
    weighted_power_sum(x, y, alpha, p).powf(T::ONE / p)
}

/// The inner sum `S = Σ_n α_n |x_n - y_n|^p` (distance to the power `p`).
pub fn weighted_power_sum<T: Real>(x: &[T], y: &[T], alpha: &[T], p: T) -> T {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), alpha.len());
    lanes::weighted_power_sum(x, y, alpha, p)
}

/// Unweighted Euclidean distance (the fairness-loss default).
pub fn euclidean<T: Real>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    lanes::euclidean(x, y)
}

/// Lane-chunked dot product (re-exported here so every hot-loop reduction in
/// the crate routes through one dispatch point).
#[inline]
pub fn dot<T: Real>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    lanes::dot(x, y)
}

/// `∂d/∂y_n` of the weighted Minkowski distance with respect to the *second*
/// argument, given the precomputed distance `d` (returns 0 at `d = 0`).
///
/// With `Δ_n = x_n - y_n`:
/// `∂d/∂y_n = -α_n |Δ_n|^(p-1) sign(Δ_n) · d^(1-p)`.
#[inline]
pub fn d_wrt_second(x_n: f64, y_n: f64, alpha_n: f64, p: f64, d: f64) -> f64 {
    if d <= 0.0 {
        return 0.0;
    }
    let delta = x_n - y_n;
    -alpha_n.max(0.0) * delta.abs().powf(p - 1.0) * delta.signum() * d.powf(1.0 - p)
}

/// `∂d/∂α_n` of the weighted Minkowski distance, given the precomputed
/// distance `d` (returns 0 at `d = 0`):
/// `∂d/∂α_n = |Δ_n|^p / (p · d^(p-1))`.
#[inline]
pub fn d_wrt_alpha(x_n: f64, y_n: f64, p: f64, d: f64) -> f64 {
    if d <= 0.0 {
        return 0.0;
    }
    (x_n - y_n).abs().powf(p) / (p * d.powf(p - 1.0))
}

/// Naive single-accumulator forms of the reduction kernels — the oracle the
/// conformance battery (`crates/core/tests/kernel_conformance.rs`) checks
/// the lane-chunked kernels against. Kept deliberately textbook-simple;
/// never called from hot paths.
pub mod reference {
    /// Sequential `Σ_n max(α_n, 0) · |x_n − y_n|^p`, one accumulator.
    pub fn weighted_power_sum(x: &[f64], y: &[f64], alpha: &[f64], p: f64) -> f64 {
        x.iter()
            .zip(y)
            .zip(alpha)
            .map(|((&a, &b), &w)| w.max(0.0) * (a - b).abs().powf(p))
            .sum()
    }

    /// Sequential weighted Minkowski distance.
    pub fn weighted_minkowski(x: &[f64], y: &[f64], alpha: &[f64], p: f64) -> f64 {
        weighted_power_sum(x, y, alpha, p).powf(1.0 / p)
    }

    /// Sequential Euclidean distance, one accumulator.
    pub fn euclidean(x: &[f64], y: &[f64]) -> f64 {
        ifair_linalg::vector::euclidean(x, y)
    }

    /// Sequential dot product, one accumulator.
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        ifair_linalg::vector::dot(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2_unit_weights_is_euclidean() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 6.0, 3.0];
        let alpha = [1.0, 1.0, 1.0];
        assert!((weighted_minkowski(&x, &y, &alpha, 2.0) - 5.0).abs() < 1e-12);
        assert!((euclidean(&x, &y) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn p1_is_weighted_manhattan() {
        let d = weighted_minkowski(&[0.0, 0.0], &[1.0, 2.0], &[2.0, 1.0], 1.0);
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_ignores_attribute() {
        let d = weighted_minkowski(&[0.0, 0.0], &[100.0, 3.0], &[0.0, 1.0], 2.0);
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_weight_clamped() {
        let d = weighted_minkowski(&[0.0], &[5.0], &[-1.0], 2.0);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn metric_axioms_p2() {
        let alpha = [0.5, 2.0];
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [2.0, -1.0];
        let d = |x: &[f64], y: &[f64]| weighted_minkowski(x, y, &alpha, 2.0);
        assert_eq!(d(&a, &a), 0.0);
        assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-12); // symmetry
        assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12); // triangle
    }

    #[test]
    fn lane_kernels_agree_with_reference_forms() {
        // Irregular length (not a lane multiple) so block + tail both run.
        let x: Vec<f64> = (0..11).map(|i| (i as f64 * 0.31).sin()).collect();
        let y: Vec<f64> = (0..11).map(|i| (i as f64 * 0.47).cos()).collect();
        let alpha: Vec<f64> = (0..11).map(|i| 0.1 + i as f64 * 0.05).collect();
        for p in [1.0, 2.0, 3.0] {
            let lane = weighted_power_sum(&x, &y, &alpha, p);
            let naive = reference::weighted_power_sum(&x, &y, &alpha, p);
            assert!(
                (lane - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "p={p}"
            );
        }
        assert!((euclidean(&x, &y) - reference::euclidean(&x, &y)).abs() < 1e-12);
        assert!((dot(&x, &y) - reference::dot(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn f32_instantiation_tracks_f64_within_tolerance() {
        let x = [0.9f32, 0.1, 0.4, 0.7, 0.2];
        let y = [0.3f32, 0.8, 0.5, 0.1, 0.9];
        let alpha = [1.0f32, 0.5, 0.25, 2.0, 0.0];
        let d32 = weighted_minkowski(&x, &y, &alpha, 2.0f32);
        let x64: Vec<f64> = x.iter().map(|&v| f64::from(v)).collect();
        let y64: Vec<f64> = y.iter().map(|&v| f64::from(v)).collect();
        let a64: Vec<f64> = alpha.iter().map(|&v| f64::from(v)).collect();
        let d64 = weighted_minkowski(&x64, &y64, &a64, 2.0);
        assert!((f64::from(d32) - d64).abs() < 1e-6);
    }

    #[test]
    fn derivative_wrt_second_matches_finite_difference() {
        let x = [1.0, -0.5];
        let mut y = [0.3, 0.8];
        let alpha = [0.7, 1.3];
        for p in [1.0, 2.0, 3.0] {
            let d0 = weighted_minkowski(&x, &y, &alpha, p);
            for n in 0..2 {
                let analytic = d_wrt_second(x[n], y[n], alpha[n], p, d0);
                let h = 1e-6;
                y[n] += h;
                let dp = weighted_minkowski(&x, &y, &alpha, p);
                y[n] -= 2.0 * h;
                let dm = weighted_minkowski(&x, &y, &alpha, p);
                y[n] += h;
                let numeric = (dp - dm) / (2.0 * h);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "p={p} n={n}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn derivative_wrt_alpha_matches_finite_difference() {
        let x = [1.0, -0.5];
        let y = [0.3, 0.8];
        let mut alpha = [0.7, 1.3];
        for p in [1.0, 2.0, 3.0] {
            let d0 = weighted_minkowski(&x, &y, &alpha, p);
            for n in 0..2 {
                let analytic = d_wrt_alpha(x[n], y[n], p, d0);
                let h = 1e-6;
                alpha[n] += h;
                let dp = weighted_minkowski(&x, &y, &alpha, p);
                alpha[n] -= 2.0 * h;
                let dm = weighted_minkowski(&x, &y, &alpha, p);
                alpha[n] += h;
                let numeric = (dp - dm) / (2.0 * h);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "p={p} n={n}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn derivatives_zero_at_coincident_points() {
        assert_eq!(d_wrt_second(1.0, 1.0, 1.0, 2.0, 0.0), 0.0);
        assert_eq!(d_wrt_alpha(1.0, 1.0, 2.0, 0.0), 0.0);
    }
}
