//! Multi-process data-parallel training.
//!
//! [`IFair::fit_data_parallel`] runs the mini-batch trainer with the
//! per-step chunk sweeps spread over a fleet of **worker processes**
//! (`ifair-dp-worker`), each of which opens the dataset itself — the
//! coordinator never holds the data, so its resident memory is a function
//! of the batch shape, never of `M`. The split follows the same fixed
//! chunk layouts as the in-process thread pools and the coordinator folds
//! worker partials in global chunk order, so a data-parallel fit is
//! **bit-identical** to the single-process [`crate::FitStrategy::MiniBatch`]
//! fit with the same schedule — at every worker count and every
//! `n_threads` inside the workers. The parity tests in
//! `tests/dataparallel.rs` pin that contract.
//!
//! # Protocol
//!
//! Coordinator and workers speak length-prefixed frames
//! ([`ifair_api::ipc`]) over the workers' stdin/stdout pipes:
//!
//! ```text
//! C → W   HELLO     JSON: worker index, fleet size, data spec, mask, config
//! W → C   READY     M, N of the worker's locally-opened source
//! C → W   READ      record indices to fetch (batch sampling)
//! W → C   ROWS      the requested rows, row-major f64
//! C → W   EVAL      θ, batch matrix, fairness pairs
//! W → C   FAIR      per owned fairness chunk: loss, touched ∂/∂x̃ rows, ∂/∂α
//! C → W   BACK      the worker's backprop row band of ∂L/∂x̃
//! W → C   BACKGRAD  per owned record chunk: ∂L/∂V, ∂L/∂α
//! C → W   SHUTDOWN  clean exit
//! W → C   ERROR     fatal worker-side failure (message)
//! ```
//!
//! Any worker death (pipe EOF) or `ERROR` frame surfaces as
//! [`FitError::Worker`]; dropping the cluster kills and reaps every child,
//! so no fit outcome leaks zombie processes.

use crate::checkpoint::FitCheckpoint;
use crate::config::IFairConfig;
use crate::model::{check_protected, fit_mini_batch, FitControl, IFair};
use crate::objective::{
    worker_row_band, BackPartial, DpExecutor, DpWorkerKernel, FairPair, FairPartial,
};
use ifair_api::ipc::{read_frame, write_frame, PayloadReader, PayloadWriter};
use ifair_api::{faults, ConfigError, FitError};
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};
use ifair_data::stream::RecordSource;
use ifair_data::{BinRecordSource, CsvRecordSource, DataError};
use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::io::{BufReader, Read, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::rc::Rc;

/// Frame tags of the coordinator/worker protocol (see the module docs).
mod tag {
    pub const HELLO: u8 = 1;
    pub const READY: u8 = 2;
    pub const READ: u8 = 3;
    pub const ROWS: u8 = 4;
    pub const EVAL: u8 = 5;
    pub const FAIR: u8 = 6;
    pub const BACK: u8 = 7;
    pub const BACKGRAD: u8 = 8;
    pub const SHUTDOWN: u8 = 9;
    pub const ERROR: u8 = 10;
}

/// Environment variable naming the worker executable, overriding the
/// next-to-the-current-binary discovery (tests point it at the Cargo-built
/// binary; deployments can pin an absolute path).
pub const WORKER_ENV: &str = "IFAIR_DP_WORKER";

/// Worker-side fault-injection hook (builds with the `fault-injection`
/// feature only): `"<worker-index>:<call>[,<call>...]"` schedules panics at
/// the named worker's EVAL steps — how the crash tests kill one worker
/// mid-epoch without touching the others.
pub const FAULT_ENV: &str = "IFAIR_DP_FAULT_PANIC";

/// Where a data-parallel fleet reads its training records. Every worker
/// opens the spec independently (same paths, same generator seed), so the
/// spec must describe the *same* logical dataset on every worker — shared
/// filesystem paths or a deterministic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DpDataSpec {
    /// Sharded `.ifb` binary dataset files ([`ifair_data::binfmt`]), any
    /// order; together they must tile `0..M`.
    Bin {
        /// Shard paths.
        paths: Vec<String>,
    },
    /// A numeric CSV file with a header row, accessed through the
    /// stride-indexed [`CsvRecordSource`].
    Csv {
        /// File path.
        path: String,
    },
    /// The seeded on-demand generator ([`ifair_data::generators::large`]) —
    /// no files at all; rows are pure functions of the seed.
    LargeScale {
        /// Generator shape and seed.
        config: LargeScaleConfig,
    },
}

impl DpDataSpec {
    /// Opens the spec as a [`RecordSource`].
    pub fn open(&self) -> Result<Box<dyn RecordSource>, DataError> {
        match self {
            DpDataSpec::Bin { paths } => Ok(Box::new(BinRecordSource::open(paths)?)),
            DpDataSpec::Csv { path } => Ok(Box::new(CsvRecordSource::open(path)?)),
            DpDataSpec::LargeScale { config } => Ok(Box::new(LargeScale::new(config.clone()))),
        }
    }
}

/// The HELLO payload: everything a worker needs to open its source and
/// mirror the coordinator's kernel configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DpHello {
    worker: usize,
    workers: usize,
    spec: DpDataSpec,
    protected: Vec<bool>,
    config: IFairConfig,
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// One spawned worker process with its pipe endpoints.
struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

/// The coordinator's shared state: the fleet plus the dataset shape agreed
/// in the handshake.
struct ClusterInner {
    procs: Vec<WorkerProc>,
    m: usize,
    n: usize,
    /// Clamped batch size `B` — fixed by `(config, M)`, identically derived
    /// by every worker.
    b: usize,
    /// Record-range ownership for batch reads: worker `w` serves source
    /// indices in `row_parts[w]`.
    row_parts: Vec<Range<usize>>,
}

impl ClusterInner {
    fn send(&mut self, w: usize, frame_tag: u8, payload: &[u8]) -> Result<(), FitError> {
        let stdin = self.procs[w]
            .stdin
            .as_mut()
            .expect("worker stdin taken only on drop");
        write_frame(stdin, frame_tag, payload)
            .map_err(|e| FitError::Worker(format!("worker {w}: pipe write failed: {e}")))
    }

    /// Receives one frame from worker `w`, turning EOF and ERROR frames
    /// into typed failures.
    fn recv(&mut self, w: usize, want: u8) -> Result<Vec<u8>, FitError> {
        match read_frame(&mut self.procs[w].stdout) {
            Ok(Some((t, payload))) if t == tag::ERROR => Err(FitError::Worker(format!(
                "worker {w}: {}",
                String::from_utf8_lossy(&payload)
            ))),
            Ok(Some((t, payload))) if t == want => Ok(payload),
            Ok(Some((t, _))) => Err(FitError::Worker(format!(
                "worker {w}: protocol error: expected frame tag {want}, got {t}"
            ))),
            Ok(None) => Err(FitError::Worker(format!(
                "worker {w} exited unexpectedly (pipe closed)"
            ))),
            Err(e) => Err(FitError::Worker(format!(
                "worker {w}: pipe read failed: {e}"
            ))),
        }
    }
}

impl Drop for ClusterInner {
    fn drop(&mut self) {
        // Kill-then-reap, never wait-first: a worker blocked writing a full
        // pipe would otherwise deadlock a graceful shutdown. SHUTDOWN is
        // sent best-effort so a healthy fleet exits cleanly in the gap.
        for (w, proc_) in self.procs.iter_mut().enumerate() {
            if let Some(stdin) = proc_.stdin.as_mut() {
                let _ = write_frame(stdin, tag::SHUTDOWN, &[]);
            }
            drop(proc_.stdin.take());
            let _ = proc_.child.kill();
            let _ = proc_.child.wait();
            let _ = w;
        }
    }
}

/// Locates the `ifair-dp-worker` executable: [`WORKER_ENV`] override first,
/// then next to the current executable, then one directory up (the Cargo
/// target layout for test binaries, which live in `target/<profile>/deps/`).
fn worker_binary() -> Result<PathBuf, FitError> {
    if let Some(p) = std::env::var_os(WORKER_ENV) {
        return Ok(PathBuf::from(p));
    }
    let name = format!("ifair-dp-worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe()
        .map_err(|e| FitError::Worker(format!("cannot locate current executable: {e}")))?;
    let mut dirs = Vec::new();
    if let Some(dir) = exe.parent() {
        dirs.push(dir.to_path_buf());
        if let Some(up) = dir.parent() {
            dirs.push(up.to_path_buf());
        }
    }
    for dir in &dirs {
        let cand = dir.join(&name);
        if cand.is_file() {
            return Ok(cand);
        }
    }
    Err(FitError::Worker(format!(
        "cannot locate the {name} binary (looked next to the current executable); \
         build it with `cargo build -p ifair-core --bin ifair-dp-worker` or set {WORKER_ENV}"
    )))
}

/// A running data-parallel fleet: spawns on construction, kills and reaps
/// on drop. Implements [`DpExecutor`] (the per-step broadcast/fold half)
/// while [`ClusterSource`] serves the batch sampler reads.
pub(crate) struct DpCluster {
    inner: Rc<RefCell<ClusterInner>>,
}

impl DpCluster {
    /// Spawns `workers` processes, handshakes, and verifies every worker
    /// sees the same dataset shape.
    pub(crate) fn spawn(
        spec: &DpDataSpec,
        protected: &[bool],
        config: &IFairConfig,
        workers: usize,
    ) -> Result<DpCluster, FitError> {
        let bin = worker_binary()?;
        let mut procs = Vec::with_capacity(workers);
        for w in 0..workers {
            let mut child = Command::new(&bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| FitError::Worker(format!("cannot spawn {}: {e}", bin.display())))?;
            let stdin = child.stdin.take().expect("stdin piped");
            let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
            procs.push(WorkerProc {
                child,
                stdin: Some(stdin),
                stdout,
            });
            let _ = w;
        }
        let mut inner = ClusterInner {
            procs,
            m: 0,
            n: 0,
            b: 0,
            row_parts: Vec::new(),
        };
        for w in 0..workers {
            let hello = DpHello {
                worker: w,
                workers,
                spec: spec.clone(),
                protected: protected.to_vec(),
                config: config.clone(),
            };
            let json = serde_json::to_string(&hello)
                .map_err(|e| FitError::Serialization(e.to_string()))?;
            inner.send(w, tag::HELLO, json.as_bytes())?;
        }
        for w in 0..workers {
            let payload = inner.recv(w, tag::READY)?;
            let mut r = PayloadReader::new(&payload);
            let (m, n) = (|| -> std::io::Result<(usize, usize)> {
                let m = r.get_usize()?;
                let n = r.get_usize()?;
                r.finish()?;
                Ok((m, n))
            })()
            .map_err(|e| FitError::Worker(format!("worker {w}: malformed READY: {e}")))?;
            if w == 0 {
                inner.m = m;
                inner.n = n;
            } else if (m, n) != (inner.m, inner.n) {
                return Err(FitError::Worker(format!(
                    "worker {w} sees a {m}x{n} dataset but worker 0 sees {}x{} — \
                     the data spec must resolve identically on every worker",
                    inner.m, inner.n
                )));
            }
        }
        let (batch_records, ..) = config
            .strategy
            .schedule()
            .expect("DataParallel carries a schedule");
        inner.b = batch_records.min(inner.m).max(1);
        inner.row_parts = crate::par::chunk_ranges(inner.m, workers);
        Ok(DpCluster {
            inner: Rc::new(RefCell::new(inner)),
        })
    }

    pub(crate) fn m(&self) -> usize {
        self.inner.borrow().m
    }

    pub(crate) fn n(&self) -> usize {
        self.inner.borrow().n
    }

    /// A [`RecordSource`] view of the fleet for the batch sampler: reads
    /// are partitioned by record range and served by the owning workers.
    pub(crate) fn source(&self) -> ClusterSource {
        ClusterSource {
            inner: Rc::clone(&self.inner),
        }
    }
}

/// Collects one partial-carrying reply frame (FAIR or BACKGRAD) from every
/// worker in fleet order, appending `(chunk index, payload)` entries parsed
/// by `parse`, then verifies the concatenation covers exactly
/// `0..n_chunks` in order — the global fold order the coordinator's
/// summation tree requires.
fn collect_partials<T>(
    inner: &mut ClusterInner,
    want: u8,
    n_chunks: usize,
    parse: impl Fn(&mut PayloadReader<'_>) -> std::io::Result<T>,
) -> Result<Vec<T>, FitError> {
    let workers = inner.procs.len();
    let mut out = Vec::with_capacity(n_chunks);
    for w in 0..workers {
        let payload = inner.recv(w, want)?;
        let mut r = PayloadReader::new(&payload);
        (|| -> std::io::Result<()> {
            let count = r.get_usize()?;
            for _ in 0..count {
                let chunk = r.get_usize()?;
                if chunk != out.len() {
                    return Err(std::io::Error::other(format!(
                        "chunk {chunk} arrived out of order (expected {})",
                        out.len()
                    )));
                }
                out.push(parse(&mut r)?);
            }
            r.finish()
        })()
        .map_err(|e| FitError::Worker(format!("worker {w}: malformed frame {want}: {e}")))?;
    }
    if out.len() != n_chunks {
        return Err(FitError::Worker(format!(
            "fleet returned {} chunks, coordinator expected {n_chunks}",
            out.len()
        )));
    }
    Ok(out)
}

impl DpExecutor for DpCluster {
    fn start_step(
        &mut self,
        theta: &[f64],
        x: &Matrix,
        pairs: &[FairPair],
    ) -> Result<(), FitError> {
        let mut w = PayloadWriter::new();
        w.put_f64s(theta);
        w.put_f64s(x.as_slice());
        w.put_usize(pairs.len());
        for p in pairs {
            w.put_usize(p.i);
            w.put_usize(p.j);
            w.put_f64(p.target);
        }
        let payload = w.into_bytes();
        let mut inner = self.inner.borrow_mut();
        for w in 0..inner.procs.len() {
            inner.send(w, tag::EVAL, &payload)?;
        }
        Ok(())
    }

    fn collect_fair(&mut self, n_chunks: usize) -> Result<Vec<FairPartial>, FitError> {
        let mut inner = self.inner.borrow_mut();
        collect_partials(&mut inner, tag::FAIR, n_chunks, |r| {
            let loss = r.get_f64()?;
            let ga = r.get_f64s()?;
            let n_rows = r.get_usize()?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                let row = r.get_usize()?;
                rows.push((row, r.get_f64s()?));
            }
            Ok(FairPartial { loss, rows, ga })
        })
    }

    fn start_back(&mut self, g_xt: &[f64]) -> Result<(), FitError> {
        let mut inner = self.inner.borrow_mut();
        let (b, n, workers) = (inner.b, inner.n, inner.procs.len());
        for w in 0..workers {
            let band = worker_row_band(b, w, workers);
            let mut pw = PayloadWriter::new();
            pw.put_f64s(&g_xt[band.start * n..band.end * n]);
            inner.send(w, tag::BACK, &pw.into_bytes())?;
        }
        Ok(())
    }

    fn collect_back(&mut self, n_chunks: usize) -> Result<Vec<BackPartial>, FitError> {
        let mut inner = self.inner.borrow_mut();
        collect_partials(&mut inner, tag::BACKGRAD, n_chunks, |r| {
            let gv = r.get_f64s()?;
            let ga = r.get_f64s()?;
            Ok(BackPartial { gv, ga })
        })
    }
}

/// The fleet as a [`RecordSource`]: `read_rows` splits the (ascending)
/// index list along the fixed per-worker record ranges, ships one READ per
/// owning worker, and reassembles the replies in request order — the batch
/// sampler cannot tell it apart from a local source.
pub(crate) struct ClusterSource {
    inner: Rc<RefCell<ClusterInner>>,
}

/// Worker failures inside the sampler surface as [`DataError`] (the
/// [`RecordSource`] error type); the message keeps the worker context.
fn worker_data_error(e: FitError) -> DataError {
    DataError::Parse(e.to_string())
}

impl RecordSource for ClusterSource {
    fn n_records(&self) -> usize {
        self.inner.borrow().m
    }

    fn n_features(&self) -> usize {
        self.inner.borrow().n
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        let mut inner = self.inner.borrow_mut();
        let n = inner.n;
        if out.len() != indices.len() * n {
            return Err(DataError::Shape(format!(
                "cluster source: output buffer holds {} values but {} rows x {n} features \
                 were requested",
                out.len(),
                indices.len()
            )));
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DataError::Shape(
                "cluster source requires strictly ascending record indices".into(),
            ));
        }
        if let Some(&last) = indices.last() {
            if last >= inner.m {
                return Err(DataError::Shape(format!(
                    "cluster source: record index {last} out of range for {} records",
                    inner.m
                )));
            }
        }
        // Split the ascending index list along the worker ranges; each
        // sub-request stays contiguous in `indices` (and thus in `out`).
        let parts: Vec<(usize, Range<usize>)> = inner
            .row_parts
            .clone()
            .into_iter()
            .enumerate()
            .map(|(w, range)| {
                let lo = indices.partition_point(|&i| i < range.start);
                let hi = indices.partition_point(|&i| i < range.end);
                (w, lo..hi)
            })
            .filter(|(_, r)| !r.is_empty())
            .collect();
        for &(w, ref r) in &parts {
            let mut pw = PayloadWriter::new();
            pw.put_usize(r.len());
            for &i in &indices[r.clone()] {
                pw.put_usize(i);
            }
            inner
                .send(w, tag::READ, &pw.into_bytes())
                .map_err(worker_data_error)?;
        }
        for &(w, ref r) in &parts {
            let payload = inner.recv(w, tag::ROWS).map_err(worker_data_error)?;
            let mut reader = PayloadReader::new(&payload);
            (|| -> std::io::Result<()> {
                reader.get_f64s_into(&mut out[r.start * n..r.end * n])?;
                reader.finish()
            })()
            .map_err(|e| DataError::Parse(format!("worker {w}: malformed ROWS reply: {e}")))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Extracts the worker count, rejecting every other strategy with a
/// pointer at the right entry point.
fn require_data_parallel(config: &IFairConfig) -> Result<usize, FitError> {
    match config.strategy {
        crate::config::FitStrategy::DataParallel { workers, .. } => Ok(workers),
        _ => Err(FitError::Config(ConfigError::new(
            "strategy",
            "data-parallel fitting requires FitStrategy::DataParallel (single-process \
             training goes through IFair::fit / IFair::fit_source)",
        ))),
    }
}

fn run_data_parallel(
    spec: &DpDataSpec,
    protected: &[bool],
    config: &IFairConfig,
    resume: Option<&FitCheckpoint>,
    checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
) -> Result<IFair, FitError> {
    let workers = require_data_parallel(config)?;
    let cluster = DpCluster::spawn(spec, protected, config, workers)?;
    let (m, n) = (cluster.m(), cluster.n());
    if m == 0 || n == 0 {
        return Err(ifair_api::shape_error("empty record source"));
    }
    check_protected(protected, n)?;
    let mut source = cluster.source();
    let mut exec = cluster;
    fit_mini_batch(
        &mut source,
        protected,
        config,
        |_| FitControl::Continue,
        |_| FitControl::Continue,
        resume,
        checkpoint_sink,
        Some(&mut exec),
    )
}

impl IFair {
    /// Fits with [`crate::FitStrategy::DataParallel`]: `workers` processes
    /// each open `spec` themselves and split every mini-batch step along
    /// the kernel's fixed chunk layouts, while this coordinator samples
    /// batches, folds the partial gradients in global chunk order, and
    /// takes the Adam steps. **Bit-identical** to a single-process
    /// [`crate::FitStrategy::MiniBatch`] fit with the same schedule, at
    /// every worker count — the whole point of the chunk-fold discipline.
    ///
    /// Requires the `ifair-dp-worker` binary next to the current executable
    /// (or named by the `IFAIR_DP_WORKER` environment variable).
    pub fn fit_data_parallel(
        spec: &DpDataSpec,
        protected: &[bool],
        config: &IFairConfig,
    ) -> Result<IFair, FitError> {
        IFair::fit_data_parallel_checkpointed(spec, protected, config, |_| Ok(()))
    }

    /// [`IFair::fit_data_parallel`] with a [`FitCheckpoint`] sink invoked
    /// after every completed epoch (see [`IFair::fit_checkpointed`] for
    /// the crash-recovery contract — the data-parallel loop shares it).
    pub fn fit_data_parallel_checkpointed(
        spec: &DpDataSpec,
        protected: &[bool],
        config: &IFairConfig,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        run_data_parallel(spec, protected, config, None, checkpoint_sink)
    }

    /// Continues an interrupted data-parallel fit from `checkpoint` —
    /// bit-identical to the uninterrupted run, like
    /// [`IFair::resume_from_checkpoint`]. The checkpoint carries config and
    /// mask; `spec` must name the same dataset the fit started on.
    pub fn resume_data_parallel_from_checkpoint(
        spec: &DpDataSpec,
        checkpoint: &FitCheckpoint,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        let protected = checkpoint.protected.clone();
        let config = checkpoint.config.clone();
        run_data_parallel(spec, &protected, &config, Some(checkpoint), checkpoint_sink)
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

/// Installs a panic fault plan for this worker when [`FAULT_ENV`] names it
/// (`"<worker>:<call>[,<call>...]"`, 1-based EVAL call numbers).
#[cfg(feature = "fault-injection")]
fn install_fault_plan(worker: usize) {
    let Ok(spec) = std::env::var(FAULT_ENV) else {
        return;
    };
    let Some((who, calls)) = spec.split_once(':') else {
        return;
    };
    if who.trim().parse::<usize>() != Ok(worker) {
        return;
    }
    let calls: Vec<u64> = calls
        .split(',')
        .filter_map(|c| c.trim().parse().ok())
        .collect();
    if !calls.is_empty() {
        faults::install(faults::FaultPlan::new(0).panic_on("core.dp.worker.eval", &calls));
    }
}

/// The worker process body behind the `ifair-dp-worker` binary: handshake
/// on stdin/stdout, then serve READ / EVAL / BACK frames until SHUTDOWN
/// (or coordinator EOF). Returns a process exit code; fatal errors are
/// reported to the coordinator as an ERROR frame first.
pub fn worker_main() -> std::process::ExitCode {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    match run_worker(stdin, stdout) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            // Best-effort: the coordinator may already be gone.
            let mut out = std::io::stdout().lock();
            let _ = write_frame(&mut out, tag::ERROR, msg.as_bytes());
            std::process::ExitCode::FAILURE
        }
    }
}

fn io_msg(what: &str) -> impl Fn(std::io::Error) -> String + '_ {
    move |e| format!("{what}: {e}")
}

fn run_worker(mut input: impl Read, mut output: impl Write) -> Result<(), String> {
    let Some((t, payload)) = read_frame(&mut input).map_err(io_msg("reading HELLO"))? else {
        return Err("coordinator closed the pipe before HELLO".into());
    };
    if t != tag::HELLO {
        return Err(format!("expected HELLO, got frame tag {t}"));
    }
    let json = std::str::from_utf8(&payload).map_err(|e| format!("HELLO is not UTF-8: {e}"))?;
    let hello: DpHello =
        serde_json::from_str(json).map_err(|e| format!("cannot parse HELLO: {e}"))?;
    #[cfg(feature = "fault-injection")]
    install_fault_plan(hello.worker);

    let mut source = hello
        .spec
        .open()
        .map_err(|e| format!("cannot open data spec: {e}"))?;
    let (m, n) = (source.n_records(), source.n_features());
    if hello.protected.len() != n {
        return Err(format!(
            "protected mask has {} columns but the source has {n}",
            hello.protected.len()
        ));
    }
    let Some((batch_records, ..)) = hello.config.strategy.schedule() else {
        return Err("config strategy carries no batch schedule".into());
    };
    let b = batch_records.min(m).max(1);
    let dim = n * (hello.config.k + 1);
    let mut kernel = DpWorkerKernel::new(n, b, hello.worker, hello.workers, &hello.config);

    let mut ready = PayloadWriter::new();
    ready.put_usize(m);
    ready.put_usize(n);
    write_frame(&mut output, tag::READY, &ready.into_bytes()).map_err(io_msg("sending READY"))?;

    let mut x = Matrix::zeros(b, n);
    let mut theta = vec![0.0; dim];
    let mut pairs: Vec<FairPair> = Vec::new();
    let mut row_buf: Vec<f64> = Vec::new();
    loop {
        let Some((t, payload)) = read_frame(&mut input).map_err(io_msg("reading frame"))? else {
            // Coordinator dropped the cluster (its own error path); a plain
            // exit here is the expected teardown, not a failure.
            return Ok(());
        };
        let mut r = PayloadReader::new(&payload);
        match t {
            tag::READ => {
                let count = r.get_usize().map_err(io_msg("READ count"))?;
                let mut indices = Vec::with_capacity(count);
                for _ in 0..count {
                    indices.push(r.get_usize().map_err(io_msg("READ index"))?);
                }
                r.finish().map_err(io_msg("READ trailer"))?;
                row_buf.resize(count * n, 0.0);
                source
                    .read_rows(&indices, &mut row_buf)
                    .map_err(|e| format!("reading rows: {e}"))?;
                let mut pw = PayloadWriter::new();
                pw.put_f64s(&row_buf);
                write_frame(&mut output, tag::ROWS, &pw.into_bytes())
                    .map_err(io_msg("sending ROWS"))?;
            }
            tag::EVAL => {
                faults::check_panic("core.dp.worker.eval");
                r.get_f64s_into(&mut theta).map_err(io_msg("EVAL theta"))?;
                r.get_f64s_into(x.as_mut_slice())
                    .map_err(io_msg("EVAL batch"))?;
                let n_pairs = r.get_usize().map_err(io_msg("EVAL pair count"))?;
                pairs.clear();
                pairs.reserve(n_pairs);
                for _ in 0..n_pairs {
                    let i = r.get_usize().map_err(io_msg("EVAL pair"))?;
                    let j = r.get_usize().map_err(io_msg("EVAL pair"))?;
                    let target = r.get_f64().map_err(io_msg("EVAL pair"))?;
                    pairs.push(FairPair { i, j, target });
                }
                r.finish().map_err(io_msg("EVAL trailer"))?;
                let partials = kernel.eval_step(&x, &pairs, &theta);
                let mut pw = PayloadWriter::new();
                pw.put_usize(partials.len());
                for (chunk, part) in &partials {
                    pw.put_usize(*chunk);
                    pw.put_f64(part.loss);
                    pw.put_f64s(&part.ga);
                    pw.put_usize(part.rows.len());
                    for (row, vals) in &part.rows {
                        pw.put_usize(*row);
                        pw.put_f64s(vals);
                    }
                }
                write_frame(&mut output, tag::FAIR, &pw.into_bytes())
                    .map_err(io_msg("sending FAIR"))?;
            }
            tag::BACK => {
                let band = worker_row_band(b, hello.worker, hello.workers);
                row_buf.resize(band.len() * n, 0.0);
                r.get_f64s_into(&mut row_buf).map_err(io_msg("BACK rows"))?;
                r.finish().map_err(io_msg("BACK trailer"))?;
                let partials = kernel.back_step(&x, &theta, &row_buf);
                let mut pw = PayloadWriter::new();
                pw.put_usize(partials.len());
                for (chunk, part) in &partials {
                    pw.put_usize(*chunk);
                    pw.put_f64s(&part.gv);
                    pw.put_f64s(&part.ga);
                }
                write_frame(&mut output, tag::BACKGRAD, &pw.into_bytes())
                    .map_err(io_msg("sending BACKGRAD"))?;
            }
            tag::SHUTDOWN => return Ok(()),
            other => return Err(format!("unexpected frame tag {other}")),
        }
    }
}
