//! The estimator-contract face of iFair: [`Estimator`]/[`Transform`] impls
//! and the fluent [`IFairBuilder`].
//!
//! `IFairConfig` *is* the unfitted estimator (sklearn-style): `fit(&ds)`
//! reads the feature matrix and the per-column protected mask from the
//! [`Dataset`] and returns a trained [`IFair`]. The builder adds ergonomic
//! setters plus progress/early-stop callbacks threaded into the L-BFGS
//! restart loop.

use crate::config::{FairnessDistance, FairnessPairs, FitStrategy, IFairConfig, InitStrategy};
use crate::model::{EpochEvent, FitControl, IFair, RestartEvent};
use ifair_api::{check_width, Estimator, FitError, Transform};
use ifair_data::stream::RecordSource;
use ifair_data::Dataset;
use ifair_linalg::Matrix;

impl Estimator for IFairConfig {
    type Fitted = IFair;

    /// Fits iFair on `ds.x` with `ds.protected` as the protected mask.
    /// Labels and group membership are ignored — the representation is
    /// application-agnostic by design.
    fn fit(&self, ds: &Dataset) -> Result<IFair, FitError> {
        IFair::fit(&ds.x, &ds.protected, self)
    }
}

impl Transform for IFair {
    fn transform(&self, ds: &Dataset) -> Result<Matrix, FitError> {
        check_width(ds, self.n_features(), "iFair model")?;
        Ok(IFair::transform(self, &ds.x))
    }
}

/// Restart observer stored by the builder.
type Observer = Box<dyn FnMut(RestartEvent<'_>) -> FitControl>;

/// Epoch observer stored by the builder (mini-batch fits only).
type EpochObserver = Box<dyn FnMut(EpochEvent) -> FitControl>;

/// Fluent construction of an iFair fit:
///
/// ```
/// use ifair_core::{FitControl, IFair};
/// use ifair_data::Dataset;
/// use ifair_linalg::Matrix;
///
/// let ds = Dataset::new(
///     Matrix::from_rows(vec![
///         vec![0.9, 0.1, 1.0],
///         vec![0.8, 0.2, 0.0],
///         vec![0.2, 0.9, 1.0],
///         vec![0.1, 0.8, 0.0],
///     ]).unwrap(),
///     vec!["a".into(), "b".into(), "gender".into()],
///     vec![false, false, true],
///     None,
///     vec![1, 0, 1, 0],
/// ).unwrap();
///
/// let model = IFair::builder()
///     .n_prototypes(2)
///     .max_iters(30)
///     .n_restarts(1)
///     .seed(7)
///     .on_restart(|e| {
///         // progress callback; return Stop to skip remaining restarts
///         assert!(e.report.loss.is_finite());
///         FitControl::Continue
///     })
///     .fit(&ds)
///     .unwrap();
/// assert_eq!(model.n_prototypes(), 2);
/// ```
pub struct IFairBuilder {
    config: IFairConfig,
    observer: Option<Observer>,
    epoch_observer: Option<EpochObserver>,
}

impl Default for IFairBuilder {
    fn default() -> Self {
        IFairBuilder::new()
    }
}

impl IFairBuilder {
    /// Starts from [`IFairConfig::default`].
    pub fn new() -> IFairBuilder {
        IFairBuilder {
            config: IFairConfig::default(),
            observer: None,
            epoch_observer: None,
        }
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: IFairConfig) -> IFairBuilder {
        IFairBuilder {
            config,
            observer: None,
            epoch_observer: None,
        }
    }

    /// Number of prototypes `K`.
    pub fn n_prototypes(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Weight `λ` of the utility (reconstruction) loss.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.lambda = lambda;
        self
    }

    /// Weight `μ` of the individual-fairness loss.
    pub fn mu(mut self, mu: f64) -> Self {
        self.config.mu = mu;
        self
    }

    /// Minkowski exponent `p` of the learned distance.
    pub fn minkowski_p(mut self, p: f64) -> Self {
        self.config.p = p;
        self
    }

    /// Attribute-weight initialization (iFair-a vs iFair-b).
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.config.init = init;
        self
    }

    /// Pin protected attribute weights near zero with box constraints.
    pub fn freeze_protected_alpha(mut self, freeze: bool) -> Self {
        self.config.freeze_protected_alpha = freeze;
        self
    }

    /// Distance used between transformed records in `L_fair`.
    pub fn fairness_distance(mut self, d: FairnessDistance) -> Self {
        self.config.fairness_distance = d;
        self
    }

    /// Pair policy of the fairness loss (exact / anchored / subsampled).
    pub fn fairness_pairs(mut self, pairs: FairnessPairs) -> Self {
        self.config.fairness_pairs = pairs;
        self
    }

    /// Box constraints on every attribute weight (`None` = unconstrained).
    pub fn alpha_bounds(mut self, bounds: Option<(f64, f64)>) -> Self {
        self.config.alpha_bounds = bounds;
        self
    }

    /// Number of random restarts (best final loss wins).
    pub fn n_restarts(mut self, n: usize) -> Self {
        self.config.n_restarts = n;
        self
    }

    /// Maximum L-BFGS iterations per restart.
    pub fn max_iters(mut self, n: usize) -> Self {
        self.config.max_iters = n;
        self
    }

    /// Gradient tolerance of the optimizer.
    pub fn grad_tol(mut self, tol: f64) -> Self {
        self.config.grad_tol = tol;
        self
    }

    /// RNG seed (restart `r` uses `seed + r`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads of the trainer's pool (`0` = all hardware threads,
    /// `1` = serial).
    pub fn n_threads(mut self, n: usize) -> Self {
        self.config.n_threads = n;
        self
    }

    /// Training path: deterministic full-batch L-BFGS (default) or seeded
    /// mini-batch Adam (see [`FitStrategy`]).
    pub fn strategy(mut self, strategy: FitStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Shorthand for `strategy(FitStrategy::MiniBatch { .. })`.
    pub fn mini_batch(
        mut self,
        batch_records: usize,
        pairs_per_batch: usize,
        epochs: usize,
        learning_rate: f64,
    ) -> Self {
        self.config.strategy = FitStrategy::MiniBatch {
            batch_records,
            pairs_per_batch,
            epochs,
            learning_rate,
        };
        self
    }

    /// Registers a progress/early-stop callback invoked after every
    /// completed restart; returning [`FitControl::Stop`] skips the remaining
    /// restarts and keeps the best result so far.
    pub fn on_restart(
        mut self,
        observer: impl FnMut(RestartEvent<'_>) -> FitControl + 'static,
    ) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Registers a progress/early-stop callback invoked after every
    /// completed epoch of a mini-batch fit (never called on the full-batch
    /// path); returning [`FitControl::Stop`] ends training and keeps the
    /// best parameters found so far.
    pub fn on_epoch(mut self, observer: impl FnMut(EpochEvent) -> FitControl + 'static) -> Self {
        self.epoch_observer = Some(Box::new(observer));
        self
    }

    /// The configuration assembled so far.
    pub fn config(&self) -> &IFairConfig {
        &self.config
    }

    /// Fits on a [`Dataset`] (features + protected mask).
    pub fn fit(self, ds: &Dataset) -> Result<IFair, FitError> {
        let protected = ds.protected.clone();
        self.fit_matrix(&ds.x, &protected)
    }

    /// Fits on a raw matrix and per-column protected flags — the escape
    /// hatch for callers without a full `Dataset`.
    pub fn fit_matrix(self, x: &Matrix, protected: &[bool]) -> Result<IFair, FitError> {
        let restart = self
            .observer
            .unwrap_or_else(|| Box::new(|_| FitControl::Continue));
        let epoch = self
            .epoch_observer
            .unwrap_or_else(|| Box::new(|_| FitControl::Continue));
        IFair::fit_with_observers(x, protected, &self.config, restart, epoch)
    }

    /// Fits from a streaming [`RecordSource`] (mini-batch strategies only;
    /// see [`IFair::fit_source`]) with the builder's configuration and
    /// observers.
    pub fn fit_source(
        self,
        source: &mut dyn RecordSource,
        protected: &[bool],
    ) -> Result<IFair, FitError> {
        let restart = self
            .observer
            .unwrap_or_else(|| Box::new(|_| FitControl::Continue));
        let epoch = self
            .epoch_observer
            .unwrap_or_else(|| Box::new(|_| FitControl::Continue));
        IFair::fit_source_with_observers(source, protected, &self.config, restart, epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_dataset() -> Dataset {
        let mut rng = StdRng::seed_from_u64(5);
        let rows = (0..16)
            .map(|i| {
                vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    f64::from(i % 2),
                ]
            })
            .collect();
        Dataset::new(
            Matrix::from_rows(rows).unwrap(),
            vec!["a".into(), "b".into(), "gender".into()],
            vec![false, false, true],
            Some((0..16).map(|i| f64::from(i % 2 == 0)).collect()),
            (0..16).map(|i| (i % 2) as u8).collect(),
        )
        .unwrap()
    }

    fn quick() -> IFairConfig {
        IFairConfig {
            k: 3,
            max_iters: 30,
            n_restarts: 2,
            ..Default::default()
        }
    }

    #[test]
    fn config_estimator_matches_direct_fit() {
        let ds = toy_dataset();
        let via_trait = quick().fit(&ds).unwrap();
        let direct = IFair::fit(&ds.x, &ds.protected, &quick()).unwrap();
        assert_eq!(via_trait.prototypes(), direct.prototypes());
        assert_eq!(via_trait.alpha(), direct.alpha());
    }

    #[test]
    fn trait_transform_matches_inherent() {
        let ds = toy_dataset();
        let model = quick().fit(&ds).unwrap();
        let via_trait = Transform::transform(&model, &ds).unwrap();
        assert_eq!(via_trait, model.transform(&ds.x));
    }

    #[test]
    fn trait_transform_rejects_width_mismatch() {
        let ds = toy_dataset();
        let model = quick().fit(&ds).unwrap();
        let narrow = ds.with_features(ds.masked_x()).unwrap();
        assert!(Transform::transform(&model, &narrow).is_err());
    }

    #[test]
    fn builder_matches_config_fit() {
        let ds = toy_dataset();
        let built = IFair::builder()
            .n_prototypes(3)
            .max_iters(30)
            .n_restarts(2)
            .fit(&ds)
            .unwrap();
        let direct = quick().fit(&ds).unwrap();
        assert_eq!(built.prototypes(), direct.prototypes());
    }

    #[test]
    fn builder_callback_observes_and_stops() {
        let ds = toy_dataset();
        let model = IFair::builder()
            .n_prototypes(3)
            .max_iters(30)
            .n_restarts(4)
            .on_restart(|e| {
                if e.restart >= 1 {
                    FitControl::Stop
                } else {
                    FitControl::Continue
                }
            })
            .fit(&ds)
            .unwrap();
        assert_eq!(model.report().restarts.len(), 2);
    }

    #[test]
    fn builder_validates_through_the_same_path() {
        let ds = toy_dataset();
        assert!(matches!(
            IFair::builder().n_prototypes(0).fit(&ds),
            Err(FitError::Config(_))
        ));
    }
}
