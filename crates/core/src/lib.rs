//! # iFair — individually fair data representations
//!
//! Implementation of *Lahoti, Gummadi, Weikum: "iFair: Learning Individually
//! Fair Data Representations for Algorithmic Decision Making"* (ICDE 2019).
//!
//! iFair maps each user record `x_i` to a low-rank representation
//!
//! ```text
//! x̃_i = Σ_k u_{ik} · v_k,     u_i = softmax(-d(x_i, v_·))
//! ```
//!
//! where the `v_k` are `K` learned prototype vectors and `d` is a weighted
//! Minkowski distance with learnable attribute weights `α` (Definitions 2-8
//! of the paper). Training minimizes
//!
//! ```text
//! L = λ · L_util(X, X̃) + μ · L_fair(X, X̃)
//! ```
//!
//! with `L_util` the reconstruction loss and `L_fair` the pairwise
//! distance-preservation loss **on non-protected attributes** (Definition 9),
//! via L-BFGS (§III-C). The representation is application-agnostic: train it
//! once, then feed `x̃` to any downstream classifier or ranking model.
//!
//! # Example
//!
//! ```
//! use ifair_core::{IFair, IFairConfig};
//! use ifair_linalg::Matrix;
//!
//! // Six records, three attributes; the last attribute is protected.
//! let x = Matrix::from_rows(vec![
//!     vec![0.9, 0.2, 1.0],
//!     vec![0.8, 0.3, 0.0],
//!     vec![0.2, 0.8, 1.0],
//!     vec![0.1, 0.9, 0.0],
//!     vec![0.5, 0.5, 1.0],
//!     vec![0.4, 0.6, 0.0],
//! ]).unwrap();
//! let protected = vec![false, false, true];
//!
//! let config = IFairConfig { k: 2, lambda: 1.0, mu: 1.0, ..Default::default() };
//! let model = IFair::fit(&x, &protected, &config).unwrap();
//! let x_fair = model.transform(&x);
//! assert_eq!(x_fair.shape(), (6, 3));
//! ```

// `deny` rather than `forbid`: the persistent worker pool in [`par`] erases
// one closure lifetime behind a barrier (the scoped-threadpool pattern) and
// carries the crate's only `#[allow(unsafe_code)]`, with the soundness
// argument documented at the site.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod checkpoint;
pub mod config;
pub mod distance;
pub mod dp;
pub mod estimator;
pub mod model;
pub mod model_f32;
pub mod objective;
pub mod par;

pub use certify::{BoxCertificate, CertMethod, Certificate, DatasetCertification};
pub use checkpoint::FitCheckpoint;
pub use config::{
    FairnessDistance, FairnessPairs, FitStrategy, IFairConfig, InitStrategy, SoftmaxDistance,
};
pub use dp::DpDataSpec;
pub use estimator::IFairBuilder;
pub use ifair_api::{CertifyError, ConfigError, Estimator, FitError, Predict, Transform};
pub use ifair_linalg::{Backend, Precision};
pub use model::{EpochEvent, FitControl, IFair, RestartEvent, TrainingReport};
pub use model_f32::IFairF32;
pub use objective::{IFairObjective, MiniBatchObjective, SamplerState};
