//! The trained iFair model: fitting, transforming, persistence.

use crate::checkpoint::FitCheckpoint;
use crate::config::{FairnessPairs, FitStrategy, IFairConfig, InitStrategy, SoftmaxDistance};
use crate::distance;
use crate::objective::{DpExecutor, IFairObjective, MiniBatchObjective};
use crate::par;
use ifair_api::{shape_error, FitError};
use ifair_data::stream::RecordSource;
use ifair_linalg::Matrix;
use ifair_optim::{AdamConfig, AdamState, Lbfgs, LbfgsConfig, Objective, Termination};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Near-zero value used for protected attribute weights under
/// [`InitStrategy::NearZeroProtected`] (§V-B: "avoiding zero values to allow
/// slack for the numerical computations").
const NEAR_ZERO_ALPHA: f64 = 1e-4;

/// Kind tag of the versioned JSON envelope written by [`IFair::to_json`].
const MODEL_KIND: &str = "ifair-model";

/// Row-chunk layout of [`IFair::transform_on`]: at most this many rows per
/// chunk, capped at [`TRANSFORM_MAX_CHUNKS`] chunks. Fixed functions of the
/// row count (never the pool size), mirroring the training-kernel layouts,
/// so chunking can never perturb numerics.
pub(crate) const TRANSFORM_CHUNK_ROWS: usize = 64;
/// Upper bound on [`IFair::transform_on`] chunks (see [`TRANSFORM_CHUNK_ROWS`]).
pub(crate) const TRANSFORM_MAX_CHUNKS: usize = 64;

/// What the training loop should do after an observed restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitControl {
    /// Run the remaining restarts.
    Continue,
    /// Stop early: keep the best restart found so far and return.
    Stop,
}

/// Progress snapshot handed to a restart observer (see
/// [`IFair::fit_with_observer`]) after each completed restart.
#[derive(Debug, Clone, Copy)]
pub struct RestartEvent<'a> {
    /// Zero-based index of the restart that just finished.
    pub restart: usize,
    /// Total restarts the configuration asks for.
    pub n_restarts: usize,
    /// The finished restart's outcome.
    pub report: &'a RestartReport,
    /// Lowest loss seen across restarts so far (including this one).
    pub best_loss: f64,
}

/// Progress snapshot handed to an epoch observer (mini-batch training only;
/// see [`crate::IFairBuilder::on_epoch`]) after each completed epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochEvent {
    /// Zero-based index of the restart this epoch belongs to.
    pub restart: usize,
    /// Zero-based index of the epoch that just finished.
    pub epoch: usize,
    /// Total epochs the configuration asks for (per restart).
    pub n_epochs: usize,
    /// Adam steps taken in this epoch (`ceil(M / batch_records)`).
    pub steps: usize,
    /// Mean mini-batch loss over the epoch's steps — the stochastic
    /// analogue of the full-batch loss (per batch, not per dataset, so it is
    /// comparable across epochs but not across batch sizes).
    pub mean_batch_loss: f64,
}

/// Outcome of one random restart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestartReport {
    /// Seed that initialized this restart.
    pub seed: u64,
    /// Final objective value.
    pub loss: f64,
    /// Outer L-BFGS iterations performed.
    pub iterations: usize,
    /// Objective/gradient evaluations.
    pub n_evals: usize,
    /// Whether a tolerance criterion was met.
    pub converged: bool,
    /// The optimizer's stopping reason.
    pub termination: Termination,
}

/// Training diagnostics: one entry per restart plus the winner
/// (§V-B: "we report the results from the best of 3 runs").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Per-restart outcomes, in restart order.
    pub restarts: Vec<RestartReport>,
    /// Index into `restarts` of the run with the lowest final loss.
    pub best_restart: usize,
    /// Number of fairness pairs the objective preserved — per evaluation on
    /// the full-batch path, per batch on the mini-batch path.
    pub n_pairs: usize,
    /// The pair budget the configuration *asked* for, when it asked for one:
    /// `Some(n_pairs)` of [`FairnessPairs::Subsampled`] on the full-batch
    /// path, `Some(pairs_per_batch)` on the mini-batch path, `None`
    /// otherwise. When this exceeds [`TrainingReport::n_pairs`] the request
    /// was silently unreachable and got clamped to the distinct-pair count —
    /// surfaced here (and by [`TrainingReport::pairs_clamped`]) so callers
    /// can tell a satisfied budget from a capped one. `#[serde(default)]`
    /// so reports serialized before this field existed still load.
    #[serde(default)]
    pub n_pairs_requested: Option<usize>,
}

impl TrainingReport {
    /// The winning restart's report.
    pub fn best(&self) -> &RestartReport {
        &self.restarts[self.best_restart]
    }

    /// Whether the requested pair budget exceeded the distinct pairs
    /// available and was clamped down to [`TrainingReport::n_pairs`].
    pub fn pairs_clamped(&self) -> bool {
        self.n_pairs_requested
            .is_some_and(|requested| requested > self.n_pairs)
    }
}

/// A trained iFair model (Definitions 2-9 of the paper).
///
/// Holds the `K` learned prototype vectors and the attribute weight vector
/// `α`; [`IFair::transform`] applies the probabilistic mapping
/// `φ(x) = Σ_k softmax(-d(x, v_·))_k · v_k` to arbitrary records, so the
/// representation is trained once and reused across downstream tasks — the
/// application-agnostic property the paper emphasizes over LFR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IFair {
    prototypes: Matrix,
    alpha: Vec<f64>,
    protected: Vec<bool>,
    config: IFairConfig,
    report: TrainingReport,
}

impl IFair {
    /// Learns prototypes and attribute weights for `x` (`M x N`) by
    /// minimizing `λ·L_util + μ·L_fair` with box-constrained L-BFGS, best of
    /// `config.n_restarts` random restarts.
    ///
    /// `protected[j]` flags column `j` as protected: those columns are
    /// excluded from the fairness-loss targets, and under
    /// [`InitStrategy::NearZeroProtected`] their weights start near zero.
    pub fn fit(x: &Matrix, protected: &[bool], config: &IFairConfig) -> Result<IFair, FitError> {
        IFair::fit_with_observer(x, protected, config, |_| FitControl::Continue)
    }

    /// Like [`IFair::fit`], but invokes `observer` after every completed
    /// restart with the restart's report and the best loss so far. Returning
    /// [`FitControl::Stop`] skips the remaining restarts (the best restart
    /// found so far wins) — the hook behind the builder's progress and
    /// early-stop callbacks.
    pub fn fit_with_observer(
        x: &Matrix,
        protected: &[bool],
        config: &IFairConfig,
        observer: impl FnMut(RestartEvent<'_>) -> FitControl,
    ) -> Result<IFair, FitError> {
        IFair::fit_with_observers(x, protected, config, observer, |_| FitControl::Continue)
    }

    /// The fully-instrumented fit: `restart_observer` fires after every
    /// restart (both strategies), `epoch_observer` after every epoch of a
    /// [`FitStrategy::MiniBatch`] fit (never on the full-batch path).
    /// Either observer can return [`FitControl::Stop`] to end training early
    /// and keep the best parameters found so far.
    pub fn fit_with_observers(
        x: &Matrix,
        protected: &[bool],
        config: &IFairConfig,
        restart_observer: impl FnMut(RestartEvent<'_>) -> FitControl,
        epoch_observer: impl FnMut(EpochEvent) -> FitControl,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        let (m, n) = x.shape();
        if m == 0 || n == 0 {
            return Err(shape_error("empty training matrix"));
        }
        check_protected(protected, n)?;
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(shape_error("training matrix contains non-finite values"));
        }
        match config.strategy {
            FitStrategy::FullBatch => fit_full_batch(x, protected, config, restart_observer),
            FitStrategy::MiniBatch { .. } => {
                // The matrix itself is the record source (borrowed, not
                // copied — `&Matrix` implements `RecordSource`); batches
                // copy rows out of it.
                let mut source = x;
                fit_mini_batch(
                    &mut source,
                    protected,
                    config,
                    restart_observer,
                    epoch_observer,
                    None,
                    |_| Ok(()),
                    None,
                )
            }
            FitStrategy::DataParallel { .. } => Err(FitError::Config(ifair_api::ConfigError {
                field: "strategy",
                message: "FitStrategy::DataParallel needs a worker fleet and a shareable data \
                          spec — use IFair::fit_data_parallel instead of fit()"
                    .into(),
            })),
        }
    }

    /// Fits from a streaming [`RecordSource`] — the entry point for datasets
    /// that do not fit in memory (indexed CSV files, on-demand generators).
    /// Requires [`FitStrategy::MiniBatch`]: the full-batch L-BFGS path needs
    /// every record resident and every fairness pair materialized, which is
    /// exactly what a streaming source exists to avoid. Non-finite values
    /// are rejected batch-by-batch as they are read.
    pub fn fit_source(
        source: &mut dyn RecordSource,
        protected: &[bool],
        config: &IFairConfig,
    ) -> Result<IFair, FitError> {
        IFair::fit_source_with_observers(
            source,
            protected,
            config,
            |_| FitControl::Continue,
            |_| FitControl::Continue,
        )
    }

    /// [`IFair::fit_source`] with restart and epoch observers (see
    /// [`IFair::fit_with_observers`]).
    pub fn fit_source_with_observers(
        source: &mut dyn RecordSource,
        protected: &[bool],
        config: &IFairConfig,
        restart_observer: impl FnMut(RestartEvent<'_>) -> FitControl,
        epoch_observer: impl FnMut(EpochEvent) -> FitControl,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        match config.strategy {
            FitStrategy::MiniBatch { .. } => {}
            FitStrategy::FullBatch => {
                return Err(FitError::Config(ifair_api::ConfigError {
                    field: "strategy",
                    message: "fitting from a streaming source requires FitStrategy::MiniBatch \
                              (full-batch L-BFGS needs the whole matrix in memory — materialize \
                              the source or switch strategies)"
                        .into(),
                }));
            }
            FitStrategy::DataParallel { .. } => {
                return Err(FitError::Config(ifair_api::ConfigError {
                    field: "strategy",
                    message: "FitStrategy::DataParallel needs a worker fleet and a shareable \
                              data spec — use IFair::fit_data_parallel instead of fit_source()"
                        .into(),
                }));
            }
        }
        let (m, n) = (source.n_records(), source.n_features());
        if m == 0 || n == 0 {
            return Err(shape_error("empty record source"));
        }
        check_protected(protected, n)?;
        fit_mini_batch(
            source,
            protected,
            config,
            restart_observer,
            epoch_observer,
            None,
            |_| Ok(()),
            None,
        )
    }

    /// [`IFair::fit_with_observers`] restricted to [`FitStrategy::MiniBatch`],
    /// with `checkpoint_sink` invoked after **every completed epoch** with a
    /// [`FitCheckpoint`] capturing the loop's entire state — parameters, Adam
    /// moments, sampler RNG and shuffle state, and all completed restarts.
    /// Persist it (e.g. [`FitCheckpoint::save`], which writes atomically) and
    /// a crash loses at most one epoch: [`IFair::resume_from_checkpoint`]
    /// replays the rest of the fit **bit-identically**. A sink error aborts
    /// the fit — training past a checkpoint that failed to persist would
    /// silently widen the crash window.
    pub fn fit_checkpointed(
        x: &Matrix,
        protected: &[bool],
        config: &IFairConfig,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        require_mini_batch(config)?;
        let (m, n) = x.shape();
        if m == 0 || n == 0 {
            return Err(shape_error("empty training matrix"));
        }
        check_protected(protected, n)?;
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(shape_error("training matrix contains non-finite values"));
        }
        let mut source = x;
        fit_mini_batch(
            &mut source,
            protected,
            config,
            |_| FitControl::Continue,
            |_| FitControl::Continue,
            None,
            checkpoint_sink,
            None,
        )
    }

    /// [`IFair::fit_checkpointed`] over a streaming [`RecordSource`].
    pub fn fit_source_checkpointed(
        source: &mut dyn RecordSource,
        protected: &[bool],
        config: &IFairConfig,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        require_mini_batch(config)?;
        let (m, n) = (source.n_records(), source.n_features());
        if m == 0 || n == 0 {
            return Err(shape_error("empty record source"));
        }
        check_protected(protected, n)?;
        fit_mini_batch(
            source,
            protected,
            config,
            |_| FitControl::Continue,
            |_| FitControl::Continue,
            None,
            checkpoint_sink,
            None,
        )
    }

    /// Continues an interrupted mini-batch fit from `checkpoint`, producing a
    /// model **bit-identical** to the uninterrupted run at every thread
    /// count. The checkpoint carries its own config and protected mask; `x`
    /// must be the same training matrix the checkpoint was taken against
    /// (shape is validated, and the sampler schedule depends on the record
    /// count). `checkpoint_sink` keeps firing at the remaining epoch
    /// boundaries, so a resumed fit survives further crashes; pass
    /// `|_| Ok(())` to resume without checkpointing.
    pub fn resume_from_checkpoint(
        x: &Matrix,
        checkpoint: &FitCheckpoint,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        let (m, n) = x.shape();
        if m == 0 || n == 0 {
            return Err(shape_error("empty training matrix"));
        }
        check_protected(&checkpoint.protected, n)?;
        if x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(shape_error("training matrix contains non-finite values"));
        }
        let mut source = x;
        fit_mini_batch(
            &mut source,
            &checkpoint.protected,
            &checkpoint.config,
            |_| FitControl::Continue,
            |_| FitControl::Continue,
            Some(checkpoint),
            checkpoint_sink,
            None,
        )
    }

    /// [`IFair::resume_from_checkpoint`] over a streaming [`RecordSource`].
    pub fn resume_source_from_checkpoint(
        source: &mut dyn RecordSource,
        checkpoint: &FitCheckpoint,
        checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    ) -> Result<IFair, FitError> {
        let (m, n) = (source.n_records(), source.n_features());
        if m == 0 || n == 0 {
            return Err(shape_error("empty record source"));
        }
        check_protected(&checkpoint.protected, n)?;
        fit_mini_batch(
            source,
            &checkpoint.protected,
            &checkpoint.config,
            |_| FitControl::Continue,
            |_| FitControl::Continue,
            Some(checkpoint),
            checkpoint_sink,
            None,
        )
    }
}

/// Rejects checkpointed-fit entry points on the full-batch path: L-BFGS
/// carries optimizer-internal state (curvature history, line-search
/// bracketing) that has no stable serialized form, so only the mini-batch
/// loop is checkpointable.
fn require_mini_batch(config: &IFairConfig) -> Result<(), FitError> {
    match config.strategy {
        FitStrategy::MiniBatch { .. } => Ok(()),
        FitStrategy::FullBatch => Err(FitError::Config(ifair_api::ConfigError {
            field: "strategy",
            message: "checkpointed fitting requires FitStrategy::MiniBatch (the full-batch \
                      L-BFGS path keeps unserializable optimizer state — use fit() there)"
                .into(),
        })),
        FitStrategy::DataParallel { .. } => Err(FitError::Config(ifair_api::ConfigError {
            field: "strategy",
            message: "FitStrategy::DataParallel needs a worker fleet and a shareable data \
                      spec — use IFair::fit_data_parallel_checkpointed"
                .into(),
        })),
    }
}

/// Shared protected-mask validation of every fit entry point.
pub(crate) fn check_protected(protected: &[bool], n: usize) -> Result<(), FitError> {
    if protected.len() != n {
        return Err(shape_error(format!(
            "protected has length {} but X has {n} columns",
            protected.len()
        )));
    }
    if protected.iter().all(|&p| p) {
        return Err(shape_error(
            "all attributes are protected; the fairness target distance would be empty",
        ));
    }
    Ok(())
}

/// The deterministic full-batch path: box-constrained L-BFGS over the whole
/// matrix, best of `config.n_restarts` restarts — bit-identical to the
/// historical [`IFair::fit`] behavior.
fn fit_full_batch(
    x: &Matrix,
    protected: &[bool],
    config: &IFairConfig,
    mut observer: impl FnMut(RestartEvent<'_>) -> FitControl,
) -> Result<IFair, FitError> {
    let n = x.cols();
    // One objective for all restarts: the pair set, worker pool, and
    // evaluation workspace are built once and reused by every restart.
    let objective = IFairObjective::new(x, protected, config);
    {
        let optimizer = Lbfgs::new(LbfgsConfig {
            max_iters: config.max_iters,
            grad_tol: config.grad_tol,
            bounds: bounds_for(n, config.k, protected, config),
            ..Default::default()
        });

        let mut best: Option<(Vec<f64>, usize)> = None;
        let mut restarts = Vec::with_capacity(config.n_restarts);
        for r in 0..config.n_restarts {
            let seed = config.seed.wrapping_add(r as u64);
            let theta0 = initial_theta(n, config.k, protected, config, seed);
            let result = optimizer.minimize(&objective, theta0);
            restarts.push(RestartReport {
                seed,
                loss: result.value,
                iterations: result.iterations,
                n_evals: result.n_evals,
                converged: result.converged,
                termination: result.termination,
            });
            let better = match &best {
                None => true,
                Some((_, idx)) => result.value < restarts[*idx].loss,
            };
            if better {
                best = Some((result.x, r));
            }
            let best_idx = best.as_ref().expect("just set").1;
            let control = observer(RestartEvent {
                restart: r,
                n_restarts: config.n_restarts,
                report: &restarts[r],
                best_loss: restarts[best_idx].loss,
            });
            if control == FitControl::Stop {
                break;
            }
        }
        let (theta, best_restart) = best.expect("n_restarts >= 1 guaranteed by validate()");
        let n_pairs = objective.pairs().len();
        // Surface a clamped Subsampled budget: the build silently caps the
        // draw at the M(M-1)/2 distinct pairs.
        let n_pairs_requested = match config.fairness_pairs {
            FairnessPairs::Subsampled { n_pairs } => Some(n_pairs),
            _ => None,
        };

        let (alpha, v_flat) = theta.split_at(n);
        let prototypes = Matrix::from_vec(config.k, n, v_flat.to_vec())
            .expect("theta layout is K*N by construction");
        Ok(IFair {
            prototypes,
            alpha: alpha.to_vec(),
            protected: protected.to_vec(),
            config: config.clone(),
            report: TrainingReport {
                restarts,
                best_restart,
                n_pairs,
                n_pairs_requested,
            },
        })
    }
}

/// The stochastic mini-batch path: seeded Adam steps over resampled batches
/// and per-batch fairness pairs drawn from a [`RecordSource`], epochs as the
/// outer unit of progress, best of `config.n_restarts` restarts by final
/// mean batch loss. Per-step cost depends on the batch shape only, so `M`
/// bounds nothing but the epoch length.
#[allow(clippy::too_many_arguments)] // private plumbing; every caller is a thin public wrapper
pub(crate) fn fit_mini_batch(
    source: &mut dyn RecordSource,
    protected: &[bool],
    config: &IFairConfig,
    mut restart_observer: impl FnMut(RestartEvent<'_>) -> FitControl,
    mut epoch_observer: impl FnMut(EpochEvent) -> FitControl,
    resume: Option<&FitCheckpoint>,
    mut checkpoint_sink: impl FnMut(&FitCheckpoint) -> Result<(), FitError>,
    mut executor: Option<&mut dyn DpExecutor>,
) -> Result<IFair, FitError> {
    let Some((_, pairs_per_batch, epochs, learning_rate)) = config.strategy.schedule() else {
        unreachable!("fit_mini_batch requires a batched strategy");
    };
    let (m, n) = (source.n_records(), source.n_features());
    // One objective for all restarts: the batch buffers, worker pool, and
    // evaluation workspace are built once and reused by every step.
    let mut objective = MiniBatchObjective::new(m, protected, config);
    let dim = objective.dim();
    // The objective owns the batch-size clamp; derive the epoch length from
    // it so the two can never disagree.
    let steps_per_epoch = m.div_ceil(objective.batch_records());
    let adam = AdamConfig {
        learning_rate,
        bounds: bounds_for(n, config.k, protected, config),
        ..Default::default()
    };

    let mut best: Option<(Vec<f64>, usize)> = None;
    let mut restarts: Vec<RestartReport> = Vec::with_capacity(config.n_restarts);
    let mut grad = vec![0.0; dim];
    let mut stop_all = false;
    // A checkpoint parks the training loop mid-restart; `pending` carries the
    // restored (theta, Adam, RNG, epoch cursor, step count, last mean) into
    // the first resumed restart, after which the loop proceeds as if never
    // interrupted.
    let mut start_restart = 0usize;
    let mut pending: Option<(Vec<f64>, AdamState, StdRng, usize, usize, f64)> = None;
    if let Some(cp) = resume {
        cp.validate(m, n)?;
        restarts = cp.restarts.clone();
        if let (Some(theta), Some(idx)) = (&cp.best_theta, cp.best_restart) {
            best = Some((theta.clone(), idx));
        }
        objective.restore_sampler_state(&cp.sampler)?;
        let words = [
            cp.rng_state[0],
            cp.rng_state[1],
            cp.rng_state[2],
            cp.rng_state[3],
        ];
        start_restart = cp.restart;
        pending = Some((
            cp.theta.clone(),
            cp.adam.clone(),
            StdRng::from_state(words),
            cp.epoch,
            cp.steps_done,
            cp.last_epoch_mean,
        ));
    }
    for r in start_restart..config.n_restarts {
        let seed = config.seed.wrapping_add(r as u64);
        let (mut theta, mut adam_state, mut rng, start_epoch, mut steps_done, mut last_epoch_mean) =
            match pending.take() {
                Some(restored) => restored,
                None => {
                    let mut theta = initial_theta(n, config.k, protected, config, seed);
                    project_bounds(&mut theta, adam.bounds.as_deref());
                    // The batch sampler gets its own stream (salted so it
                    // never aliases the init draws); the whole schedule is a
                    // pure function of the seed.
                    let rng = StdRng::seed_from_u64(seed ^ 0xba7c_4e5a_11d0_57e1);
                    (theta, AdamState::new(dim), rng, 0, 0, f64::INFINITY)
                }
            };
        for e in start_epoch..epochs {
            let mut epoch_loss = 0.0;
            for _ in 0..steps_per_epoch {
                objective.resample(source, &mut rng)?;
                epoch_loss += match executor.as_deref_mut() {
                    // Data-parallel: fan the chunk sweeps out over the
                    // worker fleet; same summation tree, same bits.
                    Some(exec) => objective.value_and_gradient_dp(&theta, &mut grad, exec)?,
                    None => objective.value_and_gradient(&theta, &mut grad),
                };
                adam_state.step(&mut theta, &grad, &adam);
                steps_done += 1;
            }
            last_epoch_mean = epoch_loss / steps_per_epoch as f64;
            checkpoint_sink(&FitCheckpoint {
                config: config.clone(),
                protected: protected.to_vec(),
                n_records: m,
                restart: r,
                epoch: e + 1,
                steps_done,
                theta: theta.clone(),
                adam: adam_state.clone(),
                rng_state: rng.state().to_vec(),
                sampler: objective.sampler_state(),
                last_epoch_mean,
                restarts: restarts.clone(),
                best_theta: best.as_ref().map(|(t, _)| t.clone()),
                best_restart: best.as_ref().map(|&(_, i)| i),
            })?;
            let control = epoch_observer(EpochEvent {
                restart: r,
                epoch: e,
                n_epochs: epochs,
                steps: steps_per_epoch,
                mean_batch_loss: last_epoch_mean,
            });
            if control == FitControl::Stop {
                stop_all = true;
                break;
            }
        }
        restarts.push(RestartReport {
            seed,
            loss: last_epoch_mean,
            iterations: steps_done,
            n_evals: steps_done,
            converged: false,
            termination: Termination::MaxIterations,
        });
        let better = match &best {
            None => true,
            Some((_, idx)) => last_epoch_mean < restarts[*idx].loss,
        };
        if better {
            best = Some((theta, r));
        }
        let best_idx = best.as_ref().expect("just set").1;
        let control = restart_observer(RestartEvent {
            restart: r,
            n_restarts: config.n_restarts,
            report: &restarts[r],
            best_loss: restarts[best_idx].loss,
        });
        if stop_all || control == FitControl::Stop {
            break;
        }
    }
    let (theta, best_restart) = best.expect("n_restarts >= 1 guaranteed by validate()");
    let (alpha, v_flat) = theta.split_at(n);
    let prototypes = Matrix::from_vec(config.k, n, v_flat.to_vec())
        .expect("theta layout is K*N by construction");
    let realized = objective.realized_pairs_per_batch();
    let requested = pairs_per_batch;
    Ok(IFair {
        prototypes,
        alpha: alpha.to_vec(),
        protected: protected.to_vec(),
        config: config.clone(),
        report: TrainingReport {
            restarts,
            best_restart,
            n_pairs: realized,
            n_pairs_requested: Some(requested),
        },
    })
}

/// Clamps every coordinate into its box (the Adam path's projection; the
/// L-BFGS path projects internally).
fn project_bounds(x: &mut [f64], bounds: Option<&[(f64, f64)]>) {
    if let Some(bounds) = bounds {
        for (xi, &(lo, hi)) in x.iter_mut().zip(bounds) {
            *xi = xi.clamp(lo, hi);
        }
    }
}

impl IFair {
    /// Applies the learned probabilistic mapping to `x` (`? x N`), returning
    /// the fair representation `X̃ = U · V`.
    ///
    /// # Panics
    /// Panics if `x.cols()` differs from the training width.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        self.transform_with_probabilities(x).0
    }

    /// [`IFair::transform`] with the row loop fanned out over `pool` — the
    /// inference-serving hot path. Rows are carved into **fixed** chunks (a
    /// function of the row count only, like the training kernels) and each
    /// chunk's `U·V` product is computed independently into its disjoint
    /// slice of the output, so the result is **bit-identical** to
    /// [`IFair::transform`] for every pool size, including `pool == None`.
    ///
    /// # Panics
    /// Panics if `x.cols()` differs from the training width.
    pub fn transform_on(&self, x: &Matrix, pool: Option<&par::WorkerPool>) -> Matrix {
        assert_eq!(
            x.cols(),
            self.n_features(),
            "record width differs from the training data"
        );
        let (m, n) = (x.rows(), self.n_features());
        let mut out = Matrix::zeros(m, n);
        if m == 0 {
            return out;
        }
        let n_chunks = m.div_ceil(TRANSFORM_CHUNK_ROWS).min(TRANSFORM_MAX_CHUNKS);
        let ranges = par::chunk_ranges(m, n_chunks);
        // Pair each row range with its disjoint slice of the output buffer.
        let mut rest = out.as_mut_slice();
        let mut jobs = Vec::with_capacity(ranges.len());
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len() * n);
            rest = tail;
            jobs.push((r, chunk));
        }
        par::pool_map(pool, jobs, |(r, chunk)| {
            let mut u = Matrix::zeros(r.len(), self.config.k);
            self.responsibilities_rows_into(x, r, &mut u);
            chunk.copy_from_slice(u.matmul(&self.prototypes).as_slice());
        });
        out
    }

    /// Like [`IFair::transform`] but also returns the `? x K` responsibility
    /// matrix `U` (each row a probability distribution over prototypes).
    pub fn transform_with_probabilities(&self, x: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(
            x.cols(),
            self.n_features(),
            "record width differs from the training data"
        );
        let u = self.responsibilities(x);
        let xt = u.matmul(&self.prototypes);
        (xt, u)
    }

    /// The `? x K` responsibility matrix `U` for `x` (Definition 8).
    pub fn responsibilities(&self, x: &Matrix) -> Matrix {
        let mut u = Matrix::zeros(x.rows(), self.config.k);
        self.responsibilities_rows_into(x, 0..x.rows(), &mut u);
        u
    }

    /// Fills `u` (`rows.len() x K`) with the responsibilities of the `rows`
    /// range of `x` — the per-row kernel shared by [`IFair::responsibilities`]
    /// and the chunked [`IFair::transform_on`] path.
    fn responsibilities_rows_into(&self, x: &Matrix, rows: std::ops::Range<usize>, u: &mut Matrix) {
        let k = self.config.k;
        // One distance buffer reused across records (every entry is
        // overwritten per record), not one allocation per record.
        let mut d = vec![0.0; k];
        for (out_i, i) in rows.enumerate() {
            let xi = x.row(i);
            for (kk, dk) in d.iter_mut().enumerate() {
                let s = distance::weighted_power_sum(
                    xi,
                    self.prototypes.row(kk),
                    &self.alpha,
                    self.config.p,
                );
                *dk = match self.config.softmax_distance {
                    SoftmaxDistance::PowerSum => s,
                    SoftmaxDistance::Rooted => s.powf(1.0 / self.config.p),
                };
            }
            let d_min = d.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut z = 0.0;
            let row = u.row_mut(out_i);
            for (uu, &dk) in row.iter_mut().zip(&d) {
                *uu = (d_min - dk).exp();
                z += *uu;
            }
            for uu in row.iter_mut() {
                *uu /= z;
            }
        }
    }

    /// Mean squared reconstruction error `‖X − X̃‖² / M` on `x` — the
    /// per-record utility loss of Definition 4.
    pub fn reconstruction_error(&self, x: &Matrix) -> f64 {
        let xt = self.transform(x);
        let diff = x.sub(&xt).expect("transform preserves shape");
        let sq = diff.frobenius_norm();
        sq * sq / x.rows() as f64
    }

    /// The learned `K x N` prototype matrix `V`.
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// The learned attribute weight vector `α` (length `N`).
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The per-column protected flags the model was trained with.
    pub fn protected(&self) -> &[bool] {
        &self.protected
    }

    /// The hyper-parameters the model was trained with.
    pub fn config(&self) -> &IFairConfig {
        &self.config
    }

    /// Training diagnostics (per-restart losses, winner, pair count).
    pub fn report(&self) -> &TrainingReport {
        &self.report
    }

    /// Number of input features `N`.
    pub fn n_features(&self) -> usize {
        self.prototypes.cols()
    }

    /// Number of prototypes `K`.
    pub fn n_prototypes(&self) -> usize {
        self.prototypes.rows()
    }

    /// Serializes the model to a schema-versioned JSON string (see
    /// [`ifair_api::persist`]): the payload is wrapped in an envelope
    /// carrying `schema_version` and a kind tag, so future format changes
    /// fail loudly at load time.
    pub fn to_json(&self) -> Result<String, FitError> {
        ifair_api::to_versioned_json(MODEL_KIND, self)
    }

    /// Restores a model from [`IFair::to_json`] output, rejecting artifacts
    /// with an unknown schema version or kind.
    pub fn from_json(json: &str) -> Result<IFair, FitError> {
        ifair_api::from_versioned_json(MODEL_KIND, json)
    }

    /// Assembles a model from explicit parameters, bypassing training —
    /// the certification battery uses this to construct degenerate
    /// geometries (duplicate prototypes, zero-weight dimensions) no
    /// optimizer run would produce. Shapes and config are validated; the
    /// training report records a single synthetic zero-iteration restart.
    pub fn from_parts(
        prototypes: Matrix,
        alpha: Vec<f64>,
        protected: Vec<bool>,
        config: IFairConfig,
    ) -> Result<IFair, FitError> {
        config.validate()?;
        let (k, n) = prototypes.shape();
        if k == 0 || n == 0 {
            return Err(shape_error("prototypes must be a non-empty K x N matrix"));
        }
        if alpha.len() != n {
            return Err(shape_error(format!(
                "alpha has length {} but prototypes have {n} columns",
                alpha.len()
            )));
        }
        check_protected(&protected, n)?;
        if prototypes.as_slice().iter().any(|v| !v.is_finite())
            || alpha.iter().any(|v| !v.is_finite())
        {
            return Err(shape_error("prototypes and alpha must be finite"));
        }
        let report = TrainingReport {
            restarts: vec![RestartReport {
                seed: config.seed,
                loss: 0.0,
                iterations: 0,
                n_evals: 0,
                converged: false,
                termination: Termination::MaxIterations,
            }],
            best_restart: 0,
            n_pairs: 0,
            n_pairs_requested: None,
        };
        Ok(IFair {
            prototypes,
            alpha,
            protected,
            config,
            report,
        })
    }

    /// Creates a fluent builder over [`IFairConfig::default`] — the
    /// ergonomic front door of the estimator API:
    ///
    /// ```no_run
    /// # use ifair_core::IFair;
    /// # let ds: ifair_data::Dataset = unimplemented!();
    /// let model = IFair::builder()
    ///     .n_prototypes(10)
    ///     .seed(7)
    ///     .on_restart(|e| {
    ///         eprintln!("restart {} loss {:.4}", e.restart, e.report.loss);
    ///         ifair_core::FitControl::Continue
    ///     })
    ///     .fit(&ds)?;
    /// # Ok::<(), ifair_api::FitError>(())
    /// ```
    pub fn builder() -> crate::estimator::IFairBuilder {
        crate::estimator::IFairBuilder::new()
    }

    /// Lowers the trained model to the single-precision serving
    /// representation ([`crate::IFairF32`]): prototypes and weights cast to
    /// `f32`, negative weights clamped at conversion (the distance kernel
    /// clamps anyway; doing it here keeps the stored artifact canonical).
    /// Training always stays `f64` — this is a serving-side cast, governed
    /// by the precision contract in `docs/ARCHITECTURE.md`.
    pub fn to_f32(&self) -> crate::IFairF32 {
        crate::IFairF32::from_model(self)
    }
}

/// Initial parameter vector: `α` per the init strategy, prototypes uniform in
/// `(0, 1)` (§V-B: "initialize model parameters (vk vectors and the α vector)
/// to random values from uniform distribution in (0,1)").
fn initial_theta(
    n: usize,
    k: usize,
    protected: &[bool],
    config: &IFairConfig,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut theta = Vec::with_capacity(n * (k + 1));
    for &is_protected in protected.iter().take(n) {
        let w = match config.init {
            InitStrategy::RandomUniform => rng.gen_range(0.0..1.0),
            InitStrategy::NearZeroProtected => {
                if is_protected {
                    NEAR_ZERO_ALPHA
                } else {
                    rng.gen_range(0.0..1.0)
                }
            }
        };
        theta.push(w);
    }
    for _ in 0..n * k {
        theta.push(rng.gen_range(0.0..1.0));
    }
    theta
}

/// Box constraints for the optimizer: `α` within `config.alpha_bounds`
/// (pinned to `[0, NEAR_ZERO_ALPHA]` for protected columns when
/// `freeze_protected_alpha` is set), prototypes unconstrained.
fn bounds_for(
    n: usize,
    k: usize,
    protected: &[bool],
    config: &IFairConfig,
) -> Option<Vec<(f64, f64)>> {
    if config.alpha_bounds.is_none() && !config.freeze_protected_alpha {
        return None;
    }
    let (lo, hi) = config.alpha_bounds.unwrap_or((0.0, 1.0));
    let mut bounds = Vec::with_capacity(n * (k + 1));
    for &is_protected in protected.iter().take(n) {
        if config.freeze_protected_alpha && is_protected {
            bounds.push((0.0, NEAR_ZERO_ALPHA));
        } else {
            bounds.push((lo, hi));
        }
    }
    bounds.extend(std::iter::repeat_n(
        (f64::NEG_INFINITY, f64::INFINITY),
        n * k,
    ));
    Some(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FairnessPairs;
    use crate::objective::IFairObjective;
    use ifair_optim::Objective;

    /// Two well-separated clusters, protected bit uncorrelated with them.
    fn cluster_data() -> (Matrix, Vec<bool>) {
        let mut rows = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..20 {
            let (cx, cy) = if i % 2 == 0 { (0.2, 0.2) } else { (0.8, 0.8) };
            rows.push(vec![
                cx + rng.gen_range(-0.05..0.05),
                cy + rng.gen_range(-0.05..0.05),
                if rng.gen_bool(0.5) { 1.0 } else { 0.0 },
            ]);
        }
        (Matrix::from_rows(rows).unwrap(), vec![false, false, true])
    }

    fn quick_config() -> IFairConfig {
        IFairConfig {
            k: 4,
            max_iters: 60,
            n_restarts: 2,
            ..Default::default()
        }
    }

    #[test]
    fn fit_produces_expected_shapes() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        assert_eq!(model.prototypes().shape(), (4, 3));
        assert_eq!(model.alpha().len(), 3);
        assert_eq!(model.transform(&x).shape(), (20, 3));
        assert_eq!(model.n_features(), 3);
        assert_eq!(model.n_prototypes(), 4);
    }

    #[test]
    fn training_reduces_the_objective() {
        let (x, protected) = cluster_data();
        let config = quick_config();
        let model = IFair::fit(&x, &protected, &config).unwrap();
        // Recompute the loss of the winning parameters and compare against a
        // freshly initialized iterate.
        let objective = IFairObjective::new(&x, &protected, &config);
        let theta0 = initial_theta(3, config.k, &protected, &config, config.seed);
        let mut theta = model.alpha().to_vec();
        theta.extend_from_slice(model.prototypes().as_slice());
        assert!(objective.value(&theta) < objective.value(&theta0));
        assert!((objective.value(&theta) - model.report().best().loss).abs() < 1e-9);
    }

    #[test]
    fn responsibilities_are_probabilities() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        let (_, u) = model.transform_with_probabilities(&x);
        assert_eq!(u.shape(), (20, 4));
        for i in 0..u.rows() {
            let s: f64 = u.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
            assert!(u.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, protected) = cluster_data();
        let a = IFair::fit(&x, &protected, &quick_config()).unwrap();
        let b = IFair::fit(&x, &protected, &quick_config()).unwrap();
        assert_eq!(a.prototypes(), b.prototypes());
        assert_eq!(a.alpha(), b.alpha());
    }

    #[test]
    fn transform_on_is_bit_identical_to_transform_for_every_pool_size() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        // Stress the chunk layout: more rows than one 64-row chunk.
        let mut rows = Vec::new();
        for rep in 0..40 {
            for i in 0..x.rows() {
                let mut r = x.row(i).to_vec();
                r[0] += rep as f64 * 1e-3;
                rows.push(r);
            }
        }
        let big = Matrix::from_rows(rows).unwrap();
        let reference = model.transform(&big);
        assert_eq!(model.transform_on(&big, None), reference);
        for lanes in [1usize, 2, 4] {
            let pool = par::WorkerPool::new(lanes);
            let pooled = model.transform_on(&big, Some(&pool));
            let ref_bits: Vec<u64> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
            let got_bits: Vec<u64> = pooled.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, ref_bits, "lanes={lanes}");
        }
        // Empty input round-trips to an empty output of the right width.
        let empty = Matrix::zeros(0, model.n_features());
        assert_eq!(model.transform_on(&empty, None).shape(), (0, 3));
    }

    #[test]
    fn best_restart_has_minimal_loss() {
        let (x, protected) = cluster_data();
        let config = IFairConfig {
            n_restarts: 3,
            ..quick_config()
        };
        let model = IFair::fit(&x, &protected, &config).unwrap();
        let report = model.report();
        assert_eq!(report.restarts.len(), 3);
        let min = report
            .restarts
            .iter()
            .map(|r| r.loss)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(report.best().loss, min);
    }

    #[test]
    fn protected_attribute_has_near_zero_influence_when_frozen() {
        let (x, protected) = cluster_data();
        let config = IFairConfig {
            freeze_protected_alpha: true,
            ..quick_config()
        };
        let model = IFair::fit(&x, &protected, &config).unwrap();
        // Flip the protected bit of a record: the transported representation
        // must barely move (the paper's §IV "influence of protected group").
        let mut flipped = x.clone();
        for i in 0..flipped.rows() {
            let v = flipped.get(i, 2);
            flipped.set(i, 2, 1.0 - v);
        }
        let a = model.transform(&x);
        let b = model.transform(&flipped);
        let drift = a.sub(&b).unwrap().max_abs();
        assert!(drift < 1e-3, "flip moved representations by {drift}");
        // And the learned weight really is pinned.
        assert!(model.alpha()[2] <= NEAR_ZERO_ALPHA + 1e-12);
    }

    #[test]
    fn transform_accepts_unseen_records() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        let unseen = Matrix::from_rows(vec![vec![0.3, 0.1, 1.0], vec![0.7, 0.9, 0.0]]).unwrap();
        let t = model.transform(&unseen);
        assert_eq!(t.shape(), (2, 3));
        assert!(t.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "record width")]
    fn transform_panics_on_width_mismatch() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        let bad = Matrix::zeros(1, 2);
        model.transform(&bad);
    }

    #[test]
    fn rejects_invalid_inputs() {
        let (x, protected) = cluster_data();
        let bad_config = IFairConfig {
            k: 0,
            ..quick_config()
        };
        assert!(matches!(
            IFair::fit(&x, &protected, &bad_config),
            Err(FitError::Config(_))
        ));
        assert!(matches!(
            IFair::fit(&x, &[false, true], &quick_config()),
            Err(FitError::Data(_))
        ));
        assert!(matches!(
            IFair::fit(&x, &[true, true, true], &quick_config()),
            Err(FitError::Data(_))
        ));
        let mut nan = x.clone();
        nan.set(0, 0, f64::NAN);
        assert!(matches!(
            IFair::fit(&nan, &protected, &quick_config()),
            Err(FitError::Data(_))
        ));
    }

    #[test]
    fn observer_sees_every_restart_and_can_stop_early() {
        let (x, protected) = cluster_data();
        let config = IFairConfig {
            n_restarts: 3,
            ..quick_config()
        };
        // Passive observer: sees all restarts, best_loss is monotone.
        let mut seen = Vec::new();
        let model = IFair::fit_with_observer(&x, &protected, &config, |e| {
            seen.push((e.restart, e.report.loss, e.best_loss));
            FitControl::Continue
        })
        .unwrap();
        assert_eq!(seen.len(), 3);
        for window in seen.windows(2) {
            assert!(window[1].2 <= window[0].2, "best loss must not increase");
        }
        assert_eq!(model.report().restarts.len(), 3);

        // Early stop after the first restart: only one restart is recorded,
        // and the result matches a single-restart fit bit-for-bit.
        let stopped =
            IFair::fit_with_observer(&x, &protected, &config, |_| FitControl::Stop).unwrap();
        assert_eq!(stopped.report().restarts.len(), 1);
        let single = IFair::fit(
            &x,
            &protected,
            &IFairConfig {
                n_restarts: 1,
                ..config
            },
        )
        .unwrap();
        assert_eq!(stopped.prototypes(), single.prototypes());
        assert_eq!(stopped.alpha(), single.alpha());
    }

    #[test]
    fn serde_roundtrip_preserves_transform() {
        let (x, protected) = cluster_data();
        let model = IFair::fit(&x, &protected, &quick_config()).unwrap();
        let json = model.to_json().unwrap();
        let back = IFair::from_json(&json).unwrap();
        assert_eq!(model.transform(&x), back.transform(&x));
        assert!(IFair::from_json("{not json").is_err());
    }

    #[test]
    fn reconstruction_error_decreases_with_more_prototypes() {
        let (x, protected) = cluster_data();
        let small = IFair::fit(
            &x,
            &protected,
            &IFairConfig {
                k: 1,
                mu: 0.0,
                ..quick_config()
            },
        )
        .unwrap();
        let large = IFair::fit(
            &x,
            &protected,
            &IFairConfig {
                k: 8,
                mu: 0.0,
                ..quick_config()
            },
        )
        .unwrap();
        assert!(large.reconstruction_error(&x) <= small.reconstruction_error(&x) + 1e-9);
    }

    #[test]
    fn subsampled_pairs_still_train() {
        let (x, protected) = cluster_data();
        let config = IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 30 },
            ..quick_config()
        };
        let model = IFair::fit(&x, &protected, &config).unwrap();
        assert_eq!(model.report().n_pairs, 30);
    }
}
