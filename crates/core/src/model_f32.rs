//! Single-precision serving view of a trained [`IFair`] model.
//!
//! Training is always `f64` — the optimizer's line searches and the bitwise
//! reproducibility contract live there. Serving, by contrast, is a pile of
//! independent row transforms whose inputs went through feature scaling, so
//! `f32` keeps ~7 significant digits on unit-scale data while halving the
//! working-set bytes per row — exactly the trade the `[name=]path.json@f32`
//! flag of `ifair-serve` opts into.
//!
//! [`IFairF32`] is produced by [`IFair::to_f32`] and applies the same
//! probabilistic mapping `x̃ = Σ_k softmax(-d(x, v_·))_k · v_k` with every
//! intermediate held in `f32`, through the same generic lane-chunked
//! distance kernels the `f64` path uses (so the `simd` feature accelerates
//! both). The row-chunk layout is identical to [`IFair::transform_on`]'s —
//! fixed functions of the row count — and each output row depends only on
//! its input row, so the `f32` path is also bit-identical across pool sizes.
//! Against the `f64` transform it is tolerance-bounded, not bitwise: see
//! "Kernel backends and precision contract" in `docs/ARCHITECTURE.md`.

use crate::config::SoftmaxDistance;
use crate::distance;
use crate::model::{TRANSFORM_CHUNK_ROWS, TRANSFORM_MAX_CHUNKS};
use crate::par;
use crate::IFair;
use ifair_linalg::{Matrix, Precision};
use serde::{Deserialize, Serialize};

/// A trained iFair model lowered to `f32` for serving (see the module docs
/// for the precision contract). Holds the same `K x N` prototypes and
/// `N`-vector of attribute weights as its source [`IFair`], cast once at
/// conversion.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IFairF32 {
    /// `K x N` prototype matrix, row-major.
    prototypes: Vec<f32>,
    /// Attribute weights `α`, clamped non-negative at conversion.
    alpha: Vec<f32>,
    k: usize,
    n: usize,
    p: f32,
    softmax_distance: SoftmaxDistance,
}

impl IFairF32 {
    /// Lowers `model` to the `f32` serving representation (the back end of
    /// [`IFair::to_f32`]).
    pub fn from_model(model: &IFair) -> IFairF32 {
        IFairF32 {
            prototypes: model
                .prototypes()
                .as_slice()
                .iter()
                .map(|&v| v as f32)
                .collect(),
            alpha: model.alpha().iter().map(|&a| a.max(0.0) as f32).collect(),
            k: model.n_prototypes(),
            n: model.n_features(),
            p: model.config().p as f32,
            softmax_distance: model.config().softmax_distance,
        }
    }

    /// Number of input features `N`.
    pub fn n_features(&self) -> usize {
        self.n
    }

    /// Number of prototypes `K`.
    pub fn n_prototypes(&self) -> usize {
        self.k
    }

    /// The precision label this model serves at (always [`Precision::F32`]).
    pub fn precision(&self) -> Precision {
        Precision::F32
    }

    /// Row-major `K x N` prototype storage (for the certification kernel).
    pub(crate) fn prototypes_f32(&self) -> &[f32] {
        &self.prototypes
    }

    /// Clamped non-negative attribute weights (for the certification kernel).
    pub(crate) fn alpha_f32(&self) -> &[f32] {
        &self.alpha
    }

    /// The Minkowski order `p` as stored (for the certification kernel).
    pub(crate) fn p_f32(&self) -> f32 {
        self.p
    }

    /// Which distance feeds the softmax (for the certification kernel).
    pub(crate) fn softmax_distance(&self) -> SoftmaxDistance {
        self.softmax_distance
    }

    /// Applies the learned mapping to `x` (`? x N`) with all intermediates
    /// in `f32`, fanning the row loop out over `pool` exactly like
    /// [`IFair::transform_on`] (same fixed chunk layout; bit-identical for
    /// every pool size, including `None`). Input rows are cast `f64 → f32`
    /// on entry and the result is widened back on exit, so callers keep the
    /// crate's uniform [`Matrix`] type.
    ///
    /// # Panics
    /// Panics if `x.cols()` differs from the training width.
    pub fn transform_on(&self, x: &Matrix, pool: Option<&par::WorkerPool>) -> Matrix {
        assert_eq!(
            x.cols(),
            self.n,
            "record width differs from the training data"
        );
        let (m, n) = (x.rows(), self.n);
        let mut out = Matrix::zeros(m, n);
        if m == 0 {
            return out;
        }
        let n_chunks = m.div_ceil(TRANSFORM_CHUNK_ROWS).min(TRANSFORM_MAX_CHUNKS);
        let ranges = par::chunk_ranges(m, n_chunks);
        let mut rest = out.as_mut_slice();
        let mut jobs = Vec::with_capacity(ranges.len());
        for r in ranges {
            let (chunk, tail) = rest.split_at_mut(r.len() * n);
            rest = tail;
            jobs.push((r, chunk));
        }
        par::pool_map(pool, jobs, |(rows, chunk)| {
            let mut xi = vec![0.0f32; n];
            let mut d = vec![0.0f32; self.k];
            let mut u = vec![0.0f32; self.k];
            let mut xt = vec![0.0f32; n];
            for (row_idx, i) in rows.enumerate() {
                for (lo, &hi) in xi.iter_mut().zip(x.row(i)) {
                    *lo = hi as f32;
                }
                self.transform_row(&xi, &mut d, &mut u, &mut xt);
                for (o, &v) in chunk[row_idx * n..(row_idx + 1) * n].iter_mut().zip(&xt) {
                    *o = f64::from(v);
                }
            }
        });
        out
    }

    /// One record through distances, softmax, and reconstruction — the same
    /// math as the `f64` forward pass, instantiated at `f32`.
    fn transform_row(&self, xi: &[f32], d: &mut [f32], u: &mut [f32], xt: &mut [f32]) {
        for (kk, dk) in d.iter_mut().enumerate() {
            let vk = &self.prototypes[kk * self.n..(kk + 1) * self.n];
            let s = distance::weighted_power_sum(xi, vk, &self.alpha, self.p);
            *dk = match self.softmax_distance {
                SoftmaxDistance::PowerSum => s,
                SoftmaxDistance::Rooted => s.powf(1.0 / self.p),
            };
        }
        let d_min = d.iter().cloned().fold(f32::INFINITY, f32::min);
        let mut z = 0.0f32;
        for (uu, &dk) in u.iter_mut().zip(d.iter()) {
            *uu = (d_min - dk).exp();
            z += *uu;
        }
        xt.fill(0.0);
        for (kk, uu) in u.iter().enumerate() {
            let w = *uu / z;
            let vk = &self.prototypes[kk * self.n..(kk + 1) * self.n];
            for (o, &vkn) in xt.iter_mut().zip(vk) {
                *o += w * vkn;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IFairConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fitted() -> (Matrix, IFair) {
        let mut rng = StdRng::seed_from_u64(4);
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|_| {
                vec![
                    rng.gen_range(0.0..1.0),
                    rng.gen_range(0.0..1.0),
                    if rng.gen_bool(0.5) { 1.0 } else { 0.0 },
                ]
            })
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let config = IFairConfig {
            k: 3,
            max_iters: 40,
            n_restarts: 1,
            ..Default::default()
        };
        let model = IFair::fit(&x, &[false, false, true], &config).unwrap();
        (x, model)
    }

    #[test]
    fn f32_transform_tracks_f64_within_tolerance() {
        let (x, model) = fitted();
        let f64_out = model.transform_on(&x, None);
        let f32_out = model.to_f32().transform_on(&x, None);
        assert_eq!(f32_out.shape(), f64_out.shape());
        for (a, b) in f32_out.as_slice().iter().zip(f64_out.as_slice()) {
            // Unit-scale data: f32 keeps ~7 digits; the softmax can lose a
            // couple more. 1e-4 absolute is the documented serving bound.
            assert!((a - b).abs() < 1e-4, "f32 {a} vs f64 {b}");
        }
    }

    #[test]
    fn f32_transform_is_bit_identical_across_pool_sizes() {
        let (x, model) = fitted();
        // Enough rows to cross a 64-row chunk boundary.
        let mut rows = Vec::new();
        for rep in 0..5 {
            for i in 0..x.rows() {
                let mut r = x.row(i).to_vec();
                r[0] += rep as f64 * 1e-3;
                rows.push(r);
            }
        }
        let big = Matrix::from_rows(rows).unwrap();
        let lowered = model.to_f32();
        let reference = lowered.transform_on(&big, None);
        let ref_bits: Vec<u64> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
        for lanes in [1usize, 2, 4] {
            let pool = par::WorkerPool::new(lanes);
            let pooled = lowered.transform_on(&big, Some(&pool));
            let got: Vec<u64> = pooled.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, ref_bits, "lanes={lanes}");
        }
    }

    #[test]
    fn conversion_reports_shapes_and_precision() {
        let (_, model) = fitted();
        let lowered = model.to_f32();
        assert_eq!(lowered.n_features(), model.n_features());
        assert_eq!(lowered.n_prototypes(), model.n_prototypes());
        assert_eq!(lowered.precision(), Precision::F32);
        assert_eq!(lowered.precision().label(), "f32");
    }

    #[test]
    #[should_panic(expected = "record width")]
    fn f32_transform_panics_on_width_mismatch() {
        let (_, model) = fitted();
        model.to_f32().transform_on(&Matrix::zeros(1, 2), None);
    }

    #[test]
    fn empty_input_round_trips() {
        let (_, model) = fitted();
        let lowered = model.to_f32();
        let out = lowered.transform_on(&Matrix::zeros(0, 3), None);
        assert_eq!(out.shape(), (0, 3));
    }
}
