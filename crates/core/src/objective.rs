//! The iFair loss `L = λ·L_util + μ·L_fair` and its analytic gradient.
//!
//! The optimization variables are packed into a single flat vector
//!
//! ```text
//! θ = [ α_1 .. α_N | v_11 .. v_1N | v_21 .. v_2N | ... | v_K1 .. v_KN ]
//! ```
//!
//! of dimension `N·(K+1)`. The forward pass (Definitions 2-8 of the paper)
//! computes, for every record `x_i`,
//!
//! ```text
//! D_ik = dist(x_i, v_k)            (power sum or rooted Minkowski)
//! u_i  = softmax(-D_i·)            (probability vector, Definition 8)
//! x̃_i  = Σ_k u_ik · v_k            (transformed record, Definition 2)
//! ```
//!
//! and the loss of Definition 9. The backward pass propagates through the
//! reconstruction, the fairness pairs, the softmax, and the distance kernel —
//! all derived in closed form so training never needs the `O(dim)`-times-
//! costlier finite differences the reference implementation used
//! (`scipy.optimize.fmin_l_bfgs_b(..., approx_grad=True)`). The
//! finite-difference path is still available through
//! [`ifair_optim::NumericalObjective`] and is used in tests to validate every
//! branch of the analytic gradient.
//!
//! # Two objectives, one kernel
//!
//! The forward/backward math lives in one private `LossKernel` that takes
//! its record matrix and pair list explicitly. [`IFairObjective`] drives it
//! over the full training matrix and a fixed pair set (the deterministic
//! L-BFGS path); [`MiniBatchObjective`] drives it over a resampled batch
//! and per-batch pairs (the stochastic Adam path of
//! [`crate::FitStrategy::MiniBatch`]), so both paths share bit-exact
//! numerics and the scratch machinery below.
//!
//! # Threading model
//!
//! Every hot loop — the per-record forward pass, the pairwise `L_fair`
//! kernel, the per-record backprop, and the pair-target build — runs on one
//! persistent [`par::WorkerPool`] owned by the objective, created lazily on
//! first parallel use and reused across every evaluation (and across all
//! L-BFGS restarts of one fit). Each loop carves its index space into
//! **fixed** chunks whose layout depends only on the problem size, and folds
//! per-chunk partials in chunk order, so loss and gradient are bit-identical
//! for every `n_threads` setting. A `Workspace` (behind a mutex, since
//! evaluations are sequential) holds the forward state, `∂L/∂x̃`, the
//! per-chunk gradient accumulators and the per-chunk softmax scratch, all
//! allocated once per objective lifetime instead of once per evaluation.

use crate::config::{FairnessDistance, FairnessPairs, IFairConfig, SoftmaxDistance};
use crate::distance;
use crate::par;
use ifair_api::FitError;
use ifair_data::stream::RecordSource;
use ifair_data::DataError;
use ifair_linalg::Matrix;
use ifair_optim::{fold, Objective};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

/// Below this many fairness pairs the pair sweeps stay serial: the work is
/// then so cheap that even a pool dispatch (a channel send per lane) would
/// dominate.
const PAR_MIN_PAIRS: usize = 512;

/// Below this many records the per-record forward/backward loops stay
/// serial, for the same reason as [`PAR_MIN_PAIRS`].
const PAR_MIN_RECORDS: usize = 128;

/// Target number of fairness pairs per kernel chunk. The chunk layout is a
/// function of the pair count **only** — never the thread count — and the
/// per-chunk partials are folded in chunk order, so the loss and gradient
/// are bit-identical for every `n_threads` setting and on every machine
/// (seeded experiments stay reproducible; see `fair_chunk_layout`). The
/// target is kept small so that mid-size pair sets already split into
/// enough chunks to occupy every core.
const FAIR_CHUNK_PAIRS: usize = 512;

/// Upper bound on the fairness chunk count, which also bounds the memory of
/// the parallel gradient path (each chunk owns an `M·N + N` accumulator in
/// the workspace).
const MAX_FAIR_CHUNKS: usize = 64;

/// Target number of records per forward/backprop chunk (same fixed-layout
/// discipline as [`FAIR_CHUNK_PAIRS`]).
const REC_CHUNK_RECORDS: usize = 64;

/// Row-tile edge of the exact `O(M²)` pair enumeration. Emitting the pair
/// list in `TILE × TILE` blocks means consecutive pairs of the `L_fair`
/// sweep touch at most `2·TILE` distinct `x̃` rows, which fit in L1/L2 for
/// realistic `N` — instead of the row-major order whose `j` index streams
/// the whole matrix per `i`. The tile size is a constant of the problem
/// (never the thread count), so the summation tree stays fixed. Only the
/// `Exact` build is tiled: subsampled/anchored/mini-batch pair lists are
/// contractually `(i, j)`-sorted.
const PAIR_TILE_RECORDS: usize = 64;

/// Upper bound on the record chunk count (each backprop chunk owns a
/// `K·N + N + K` accumulator in the workspace).
const MAX_REC_CHUNKS: usize = 64;

/// A record pair entering the fairness loss, with its precomputed target
/// distance `d(x*_i, x*_j)` on the non-protected attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairPair {
    /// First record index.
    pub i: usize,
    /// Second record index.
    pub j: usize,
    /// Target distance in the masked input space.
    pub target: f64,
}

/// The objective's worker pool, created lazily on first parallel use so
/// small problems (or `n_threads = 1`) never spawn a thread.
struct LazyPool {
    n_threads: usize,
    pool: OnceLock<par::WorkerPool>,
}

impl LazyPool {
    fn new(n_threads: usize) -> LazyPool {
        LazyPool {
            n_threads: n_threads.max(1),
            pool: OnceLock::new(),
        }
    }

    /// The pool, creating its threads on first call; `None` when this
    /// objective is configured serial (`n_threads <= 1`).
    fn get(&self) -> Option<&par::WorkerPool> {
        if self.n_threads <= 1 {
            None
        } else {
            Some(
                self.pool
                    .get_or_init(|| par::WorkerPool::new(self.n_threads)),
            )
        }
    }
}

/// Intermediate state shared between the loss and its gradient.
struct ForwardState {
    /// `M x K` record-to-prototype distances (power sum or rooted).
    dist: Vec<f64>,
    /// `M x K` softmax responsibilities.
    u: Vec<f64>,
    /// `M x N` reconstruction `U · V`.
    xt: Vec<f64>,
}

impl ForwardState {
    fn new(m: usize, n: usize, k: usize) -> ForwardState {
        ForwardState {
            dist: vec![0.0; m * k],
            u: vec![0.0; m * k],
            xt: vec![0.0; m * n],
        }
    }
}

/// A bank of per-chunk scratch buffers, sized lazily on first use and then
/// reused for the rest of the objective's lifetime. Jobs zero their own
/// buffer before accumulating, so reuse never leaks state across
/// evaluations.
struct ChunkScratch {
    bufs: Vec<Vec<f64>>,
}

impl ChunkScratch {
    fn new() -> ChunkScratch {
        ChunkScratch { bufs: Vec::new() }
    }

    /// The first `count` buffers, each of length `len` (allocating or
    /// resizing only on first use / size change).
    fn take(&mut self, count: usize, len: usize) -> &mut [Vec<f64>] {
        if self.bufs.len() < count {
            self.bufs.resize_with(count, Vec::new);
        }
        for buf in &mut self.bufs[..count] {
            if buf.len() != len {
                buf.resize(len, 0.0);
            }
        }
        &mut self.bufs[..count]
    }
}

/// Per-chunk accumulators of the fairness gradient path: `∂(μ·L_fair)/∂x̃`
/// (`M·N` per chunk) and `∂/∂α` (`N` per chunk).
struct FairScratch {
    gx: ChunkScratch,
    ga: ChunkScratch,
}

/// Per-chunk accumulators and scratch of the backprop path: `∂L/∂V`
/// (`K·N` per chunk), `∂L/∂α` (`N` per chunk), and the per-record softmax
/// products `c` (`K` per chunk, reused across the chunk's records).
struct BackScratch {
    gv: ChunkScratch,
    ga: ChunkScratch,
    c: ChunkScratch,
}

/// Every buffer an objective evaluation needs, allocated once per objective
/// and reused across all evaluations (and restarts) of a fit.
struct Workspace {
    state: ForwardState,
    /// `M x N` accumulator for `∂L/∂x̃`.
    g_xt: Vec<f64>,
    fair: FairScratch,
    back: BackScratch,
}

impl Workspace {
    fn new(m: usize, n: usize, k: usize) -> Workspace {
        Workspace {
            state: ForwardState::new(m, n, k),
            g_xt: vec![0.0; m * n],
            fair: FairScratch {
                gx: ChunkScratch::new(),
                ga: ChunkScratch::new(),
            },
            back: BackScratch {
                gv: ChunkScratch::new(),
                ga: ChunkScratch::new(),
                c: ChunkScratch::new(),
            },
        }
    }
}

/// One fixed chunk of records of the parallel forward pass, owning the
/// disjoint row slices it fully (over)writes.
struct ForwardJob<'b> {
    records: Range<usize>,
    dist: &'b mut [f64],
    u: &'b mut [f64],
    xt: &'b mut [f64],
}

/// One fixed chunk of fairness pairs of the parallel gradient path, owning
/// its private accumulators from the workspace.
struct FairGradJob<'b> {
    pairs: Range<usize>,
    gx: &'b mut [f64],
    ga: &'b mut [f64],
}

/// One fixed chunk of records of the parallel backprop loop, owning its
/// private accumulators and softmax scratch from the workspace.
struct BackpropJob<'b> {
    records: Range<usize>,
    gv: &'b mut [f64],
    ga: &'b mut [f64],
    c: &'b mut [f64],
}

/// The hyper-parameters of the loss, detached from any particular record
/// block — the single source of truth for the forward/backward math, driven
/// by both [`IFairObjective`] (full data, fixed pair list) and
/// [`MiniBatchObjective`] (resampled batch, resampled pairs). Every kernel
/// takes its record matrix, pair list, and pool explicitly, so the two
/// objectives share code paths — and therefore bit-exact numerics — by
/// construction.
struct LossKernel {
    n: usize,
    k: usize,
    p: f64,
    lambda: f64,
    mu: f64,
    softmax_distance: SoftmaxDistance,
    fairness_distance: FairnessDistance,
}

impl LossKernel {
    fn from_config(n: usize, config: &IFairConfig) -> LossKernel {
        LossKernel {
            n,
            k: config.k,
            p: config.p,
            lambda: config.lambda,
            mu: config.mu,
            softmax_distance: config.softmax_distance,
            fairness_distance: config.fairness_distance,
        }
    }

    /// Dimension of the packed parameter vector `θ = [α | V]`.
    fn dim(&self) -> usize {
        self.n * (self.k + 1)
    }

    /// Splits the flat parameter vector into `(α, V)` views.
    fn unpack<'t>(&self, theta: &'t [f64]) -> (&'t [f64], &'t [f64]) {
        debug_assert_eq!(theta.len(), self.dim());
        theta.split_at(self.n)
    }

    /// Forward pass: distances `D` (`M x K`), responsibilities `U` (`M x K`)
    /// and reconstruction `X̃` (`M x N`), written into `state`, parallelized
    /// over the fixed record chunks. Each record's rows are written by
    /// exactly one chunk and no partials are folded, so the result is
    /// trivially identical for every thread count.
    fn forward_into(
        &self,
        x: &Matrix,
        alpha: &[f64],
        v: &[f64],
        state: &mut ForwardState,
        pool: Option<&par::WorkerPool>,
    ) {
        let (n, k) = (self.n, self.k);
        let layout = record_chunk_layout(x.rows());
        let dist_chunks = split_chunks(&mut state.dist, &layout, k);
        let u_chunks = split_chunks(&mut state.u, &layout, k);
        let xt_chunks = split_chunks(&mut state.xt, &layout, n);
        let jobs: Vec<ForwardJob<'_>> = layout
            .iter()
            .cloned()
            .zip(dist_chunks)
            .zip(u_chunks)
            .zip(xt_chunks)
            .map(|(((records, dist), u), xt)| ForwardJob {
                records,
                dist,
                u,
                xt,
            })
            .collect();
        par::pool_map(pool, jobs, |job| self.forward_chunk(x, alpha, v, job));
    }

    /// Serial forward pass over one contiguous chunk of records — the
    /// single source of truth for the per-record math on both the serial
    /// and the pooled path.
    fn forward_chunk(&self, x: &Matrix, alpha: &[f64], v: &[f64], job: ForwardJob<'_>) {
        let (n, k) = (self.n, self.k);
        let ForwardJob {
            records,
            dist,
            u,
            xt,
        } = job;
        xt.fill(0.0);
        for (row, i) in records.enumerate() {
            let xi = x.row(i);
            let d_row = &mut dist[row * k..(row + 1) * k];
            for (kk, d) in d_row.iter_mut().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                let s = power_sum(xi, vk, alpha, self.p);
                *d = match self.softmax_distance {
                    SoftmaxDistance::PowerSum => s,
                    SoftmaxDistance::Rooted => s.powf(1.0 / self.p),
                };
            }
            // Stable softmax of -D: shift by the smallest distance.
            let d_min = d_row.iter().cloned().fold(f64::INFINITY, f64::min);
            let u_row = &mut u[row * k..(row + 1) * k];
            let mut z = 0.0;
            for (uu, &d) in u_row.iter_mut().zip(d_row.iter()) {
                *uu = (d_min - d).exp();
                z += *uu;
            }
            for uu in u_row.iter_mut() {
                *uu /= z;
            }
            // x̃_i = Σ_k u_ik v_k.
            let xt_row = &mut xt[row * n..(row + 1) * n];
            for (kk, &uu) in u_row.iter().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                for (o, &vkn) in xt_row.iter_mut().zip(vk) {
                    *o += uu * vkn;
                }
            }
        }
    }

    /// Loss given a completed forward pass.
    fn loss(
        &self,
        x: &Matrix,
        pairs: &[FairPair],
        alpha: &[f64],
        state: &ForwardState,
        fair_pool: Option<&par::WorkerPool>,
    ) -> f64 {
        let util = if self.lambda != 0.0 {
            // Lane-chunked `Σ (x − x̃)²` over the whole flattened matrix —
            // the same kernel (and therefore the same bits) as the fused
            // loss+gradient path.
            ifair_linalg::lanes::sq_euclidean(x.as_slice(), state.xt.as_slice())
        } else {
            0.0
        };
        let fair = if self.mu != 0.0 {
            self.fair_loss(pairs, alpha, state, fair_pool)
        } else {
            0.0
        };
        self.lambda * util + self.mu * fair
    }

    /// `Σ_{(i,j)} (d(x̃_i, x̃_j) − d(x*_i, x*_j))²` — the raw `L_fair` sum
    /// (no `μ` factor), parallelized over the fixed pair chunks when the
    /// pair set is large enough. Partials are folded in chunk order on both
    /// paths, so serial and pooled results are bit-identical.
    fn fair_loss(
        &self,
        pairs: &[FairPair],
        alpha: &[f64],
        state: &ForwardState,
        pool: Option<&par::WorkerPool>,
    ) -> f64 {
        let chunks = fair_chunk_layout(pairs.len());
        let partials = par::pool_map(pool, chunks, |range| {
            self.fair_loss_chunk(pairs, alpha, state, range)
        });
        partials.into_iter().sum()
    }

    /// Serial `L_fair` sum over one contiguous chunk of the pair list.
    fn fair_loss_chunk(
        &self,
        pairs: &[FairPair],
        alpha: &[f64],
        state: &ForwardState,
        range: Range<usize>,
    ) -> f64 {
        pairs[range]
            .iter()
            .map(|pair| {
                let e = self.transformed_distance(alpha, state, pair.i, pair.j) - pair.target;
                e * e
            })
            .sum()
    }

    /// Fused `L_fair` loss + gradient: returns the raw pair sum and
    /// accumulates `∂(μ·L_fair)/∂x̃` into `g_xt` (and `∂/∂α` into `g_alpha`
    /// under the weighted metric).
    ///
    /// On the pooled path every chunk of the fixed layout owns a private
    /// `M·N + N` accumulator from the workspace (allocated once per
    /// objective); the serial path reuses a single one. Partials are folded
    /// into `g_xt` / `g_alpha` in chunk order on both paths, so the result
    /// is bit-identical for every thread count.
    #[allow(clippy::too_many_arguments)]
    fn fair_loss_and_grad(
        &self,
        pairs: &[FairPair],
        alpha: &[f64],
        state: &ForwardState,
        g_xt: &mut [f64],
        g_alpha: &mut [f64],
        scratch: &mut FairScratch,
        pool: Option<&par::WorkerPool>,
    ) -> f64 {
        let chunks = fair_chunk_layout(pairs.len());
        if pool.is_none() {
            // Serial: one reused accumulator walks the same chunk layout
            // with the same fold order as the pooled path (bit-identical),
            // at 1/chunk-count the memory.
            let gx = &mut scratch.gx.take(1, g_xt.len())[0];
            let ga = &mut scratch.ga.take(1, g_alpha.len())[0];
            let mut loss = 0.0;
            for range in chunks {
                gx.fill(0.0);
                ga.fill(0.0);
                loss += self.fair_grad_chunk(pairs, alpha, state, range, gx, ga);
                add_assign(g_xt, gx);
                add_assign(g_alpha, ga);
            }
            return loss;
        }
        let gx_bufs = scratch.gx.take(chunks.len(), g_xt.len());
        let ga_bufs = scratch.ga.take(chunks.len(), g_alpha.len());
        let jobs: Vec<FairGradJob<'_>> = chunks
            .into_iter()
            .zip(gx_bufs.iter_mut())
            .zip(ga_bufs.iter_mut())
            .map(|((pair_range, gx), ga)| FairGradJob {
                pairs: pair_range,
                gx: gx.as_mut_slice(),
                ga: ga.as_mut_slice(),
            })
            .collect();
        let partials = par::pool_map(pool, jobs, |job| {
            let FairGradJob {
                pairs: pair_range,
                gx,
                ga,
            } = job;
            gx.fill(0.0);
            ga.fill(0.0);
            self.fair_grad_chunk(pairs, alpha, state, pair_range, gx, ga)
        });
        let mut loss = 0.0;
        for ((l, gx), ga) in partials.into_iter().zip(gx_bufs.iter()).zip(ga_bufs.iter()) {
            loss += l;
            add_assign(g_xt, gx);
            add_assign(g_alpha, ga);
        }
        loss
    }

    /// Serial fused loss + gradient over one contiguous chunk of the pair
    /// list. This is the single source of truth for the per-pair math; the
    /// pooled path is exactly this function over sub-ranges.
    fn fair_grad_chunk(
        &self,
        pairs: &[FairPair],
        alpha: &[f64],
        state: &ForwardState,
        range: Range<usize>,
        g_xt: &mut [f64],
        g_alpha: &mut [f64],
    ) -> f64 {
        let (n, p) = (self.n, self.p);
        let mut loss = 0.0;
        for pair in &pairs[range] {
            let d = self.transformed_distance(alpha, state, pair.i, pair.j);
            let e = d - pair.target;
            loss += e * e;
            let coeff = 2.0 * self.mu * e;
            if coeff == 0.0 || d <= 0.0 {
                continue;
            }
            let (ri, rj) = (pair.i * n, pair.j * n);
            match self.fairness_distance {
                FairnessDistance::Unweighted => {
                    for idx in 0..n {
                        let delta = state.xt[ri + idx] - state.xt[rj + idx];
                        let g = coeff * delta / d;
                        g_xt[ri + idx] += g;
                        g_xt[rj + idx] -= g;
                    }
                }
                FairnessDistance::Weighted => {
                    for idx in 0..n {
                        let a = state.xt[ri + idx];
                        let b = state.xt[rj + idx];
                        // ∂d/∂a = -d_wrt_second(a, b) by symmetry of Δ.
                        let g = -coeff * distance::d_wrt_second(a, b, alpha[idx], p, d);
                        g_xt[ri + idx] += g;
                        g_xt[rj + idx] -= g;
                        if alpha[idx] >= 0.0 {
                            g_alpha[idx] += coeff * distance::d_wrt_alpha(a, b, p, d);
                        }
                    }
                }
            }
        }
        loss
    }

    /// Backprop through `x̃ = U·V` and the softmax into `V`, `D`, and `α`,
    /// parallelized over the fixed record chunks. On the pooled path every
    /// chunk owns a private `K·N + N` accumulator (plus a `K`-length
    /// softmax scratch reused across its records) from the workspace; the
    /// serial path reuses a single set. Partials are folded into `grad` in
    /// chunk order on both paths, so the result is bit-identical for every
    /// thread count.
    #[allow(clippy::too_many_arguments)]
    fn backprop_into(
        &self,
        x: &Matrix,
        alpha: &[f64],
        v: &[f64],
        state: &ForwardState,
        g_xt: &[f64],
        grad: &mut [f64],
        scratch: &mut BackScratch,
        pool: Option<&par::WorkerPool>,
    ) {
        let (n, k) = (self.n, self.k);
        let (g_alpha, g_v) = grad.split_at_mut(n);
        let layout = record_chunk_layout(x.rows());
        if pool.is_none() {
            // Serial: one reused accumulator set, same chunk layout and
            // fold order as the pooled path (bit-identical).
            let gv = &mut scratch.gv.take(1, k * n)[0];
            let ga = &mut scratch.ga.take(1, n)[0];
            let c = &mut scratch.c.take(1, k)[0];
            for records in layout {
                self.backprop_chunk(
                    x,
                    alpha,
                    v,
                    state,
                    g_xt,
                    BackpropJob {
                        records,
                        gv: gv.as_mut_slice(),
                        ga: ga.as_mut_slice(),
                        c: c.as_mut_slice(),
                    },
                );
                add_assign(g_v, gv);
                add_assign(g_alpha, ga);
            }
            return;
        }
        let gv_bufs = scratch.gv.take(layout.len(), k * n);
        let ga_bufs = scratch.ga.take(layout.len(), n);
        let c_bufs = scratch.c.take(layout.len(), k);
        let jobs: Vec<BackpropJob<'_>> = layout
            .into_iter()
            .zip(gv_bufs.iter_mut())
            .zip(ga_bufs.iter_mut())
            .zip(c_bufs.iter_mut())
            .map(|(((records, gv), ga), c)| BackpropJob {
                records,
                gv: gv.as_mut_slice(),
                ga: ga.as_mut_slice(),
                c: c.as_mut_slice(),
            })
            .collect();
        par::pool_map(pool, jobs, |job| {
            self.backprop_chunk(x, alpha, v, state, g_xt, job)
        });
        for (gv, ga) in gv_bufs.iter().zip(ga_bufs.iter()) {
            add_assign(g_v, gv);
            add_assign(g_alpha, ga);
        }
    }

    /// Serial backprop over one contiguous chunk of records — the single
    /// source of truth for the per-record math on both paths. `gv`/`ga` are
    /// the chunk's private accumulators; `c` is the per-record softmax
    /// product scratch, reused across the chunk's records.
    fn backprop_chunk(
        &self,
        x: &Matrix,
        alpha: &[f64],
        v: &[f64],
        state: &ForwardState,
        g_xt: &[f64],
        job: BackpropJob<'_>,
    ) {
        let (n, k, p) = (self.n, self.k, self.p);
        let BackpropJob { records, gv, ga, c } = job;
        gv.fill(0.0);
        ga.fill(0.0);
        for i in records {
            let xi = x.row(i);
            let gx_row = &g_xt[i * n..(i + 1) * n];
            let u_row = &state.u[i * k..(i + 1) * k];
            let d_row = &state.dist[i * k..(i + 1) * k];

            // c_k = ⟨∂L/∂x̃_i, v_k⟩ and the softmax Jacobian product
            // b_k = ∂L/∂z_ik = u_k (c_k − Σ_j u_j c_j), with z = −D.
            let mut c_dot_u = 0.0;
            for (kk, ck) in c.iter_mut().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                *ck = dot(gx_row, vk);
                c_dot_u += u_row[kk] * *ck;
            }

            for kk in 0..k {
                let uk = u_row[kk];
                let b_k = uk * (c[kk] - c_dot_u);
                let vk = &v[kk * n..(kk + 1) * n];
                let gv_row = &mut gv[kk * n..(kk + 1) * n];
                // Direct path: ∂x̃_in/∂v_kn = u_ik.
                for (o, &gx) in gv_row.iter_mut().zip(gx_row) {
                    *o += uk * gx;
                }
                // Distance path: ∂L/∂D_ik = −b_k.
                let gd = -b_k;
                if gd == 0.0 {
                    continue;
                }
                match self.softmax_distance {
                    SoftmaxDistance::PowerSum => {
                        for idx in 0..n {
                            let delta = xi[idx] - vk[idx];
                            // ∂S/∂v_n = −α_n p |Δ|^{p−1} sign(Δ)
                            gv_row[idx] +=
                                gd * (-alpha[idx].max(0.0) * p * pow_abs_signed(delta, p - 1.0));
                            if alpha[idx] >= 0.0 {
                                ga[idx] += gd * pow_abs(delta, p);
                            }
                        }
                    }
                    SoftmaxDistance::Rooted => {
                        let d = d_row[kk];
                        for idx in 0..n {
                            gv_row[idx] +=
                                gd * distance::d_wrt_second(xi[idx], vk[idx], alpha[idx], p, d);
                            if alpha[idx] >= 0.0 {
                                ga[idx] += gd * distance::d_wrt_alpha(xi[idx], vk[idx], p, d);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Distance between transformed records `i` and `j` per the configured
    /// [`FairnessDistance`].
    fn transformed_distance(&self, alpha: &[f64], state: &ForwardState, i: usize, j: usize) -> f64 {
        let a = &state.xt[i * self.n..(i + 1) * self.n];
        let b = &state.xt[j * self.n..(j + 1) * self.n];
        match self.fairness_distance {
            FairnessDistance::Unweighted => distance::euclidean(a, b),
            FairnessDistance::Weighted => distance::weighted_minkowski(a, b, alpha, self.p),
        }
    }

    /// The full loss at `theta` over `(x, pairs)`, through the workspace.
    fn value_into(
        &self,
        x: &Matrix,
        pairs: &[FairPair],
        theta: &[f64],
        ws: &mut Workspace,
        rec_pool: Option<&par::WorkerPool>,
        fair_pool: Option<&par::WorkerPool>,
    ) -> f64 {
        let (alpha, v) = self.unpack(theta);
        self.forward_into(x, alpha, v, &mut ws.state, rec_pool);
        self.loss(x, pairs, alpha, &ws.state, fair_pool)
    }

    /// The fused loss + analytic gradient at `theta` over `(x, pairs)`,
    /// through the workspace — the whole backward pass both objectives run.
    #[allow(clippy::too_many_arguments)]
    fn value_and_gradient_into(
        &self,
        x: &Matrix,
        pairs: &[FairPair],
        theta: &[f64],
        grad: &mut [f64],
        ws: &mut Workspace,
        rec_pool: Option<&par::WorkerPool>,
        fair_pool: Option<&par::WorkerPool>,
    ) -> f64 {
        let n = self.n;
        let (alpha, v) = self.unpack(theta);
        self.forward_into(x, alpha, v, &mut ws.state, rec_pool);

        grad.fill(0.0);

        // ∂L/∂x̃ — reconstruction term. The utility sum goes through the
        // same lane-chunked kernel as the gradient-free `loss` path so the
        // two entry points agree bitwise; the element loop then only writes
        // the gradient. The buffer is reused across evaluations, so it must
        // be fully written (the loop overwrites every entry) or zeroed.
        let util = if self.lambda != 0.0 {
            for ((g, &orig), &rec) in ws.g_xt.iter_mut().zip(x.as_slice()).zip(&ws.state.xt) {
                *g = 2.0 * self.lambda * (rec - orig);
            }
            ifair_linalg::lanes::sq_euclidean(x.as_slice(), ws.state.xt.as_slice())
        } else {
            ws.g_xt.fill(0.0);
            0.0
        };

        // ∂L/∂x̃ (and ∂L/∂α under the weighted metric) — fairness pairs,
        // fused with the pair loss and parallelized over pair chunks.
        let fair = if self.mu != 0.0 {
            let (g_alpha, _) = grad.split_at_mut(n);
            self.fair_loss_and_grad(
                pairs,
                alpha,
                &ws.state,
                &mut ws.g_xt,
                g_alpha,
                &mut ws.fair,
                fair_pool,
            )
        } else {
            0.0
        };
        let loss = self.lambda * util + self.mu * fair;

        // Backprop through x̃ = U·V and the softmax into V, D, and α,
        // parallelized over record chunks.
        self.backprop_into(
            x,
            alpha,
            v,
            &ws.state,
            &ws.g_xt,
            grad,
            &mut ws.back,
            rec_pool,
        );

        loss
    }
}

/// The fixed chunk layout of the record index space. Depends only on the
/// record count, so the summation tree — and therefore every last bit of
/// the loss and gradient — is invariant under the thread count and the
/// host's core count. The data-parallel trainer reuses the same layout to
/// partition backprop chunks across worker processes.
pub(crate) fn record_chunk_layout(m: usize) -> Vec<Range<usize>> {
    let n_chunks = m.div_ceil(REC_CHUNK_RECORDS).clamp(1, MAX_REC_CHUNKS);
    par::chunk_ranges(m, n_chunks)
}

/// The fixed chunk layout of the pair index space (a function of the pair
/// count only, like [`record_chunk_layout`]).
pub(crate) fn fair_chunk_layout(n_pairs: usize) -> Vec<Range<usize>> {
    let n_chunks = n_pairs.div_ceil(FAIR_CHUNK_PAIRS).clamp(1, MAX_FAIR_CHUNKS);
    par::chunk_ranges(n_pairs, n_chunks)
}

/// The iFair objective over a fixed training matrix.
///
/// Borrowing the data keeps restarts cheap: the pair list, target distances,
/// worker pool and workspace are built once and shared across all restarts.
pub struct IFairObjective<'a> {
    x: &'a Matrix,
    m: usize,
    kern: LossKernel,
    pairs: Vec<FairPair>,
    pool: LazyPool,
    workspace: Mutex<Workspace>,
}

impl<'a> IFairObjective<'a> {
    /// Builds the objective for `x` (`M x N`) with per-column `protected`
    /// flags and the hyper-parameters in `config`.
    ///
    /// The fairness-pair set (exact / anchored / subsampled per
    /// `config.fairness_pairs`) is drawn here with `config.seed`, so the
    /// objective is deterministic across restarts.
    ///
    /// # Panics
    /// Panics if `protected.len() != x.cols()` — callers ([`crate::IFair`])
    /// validate shapes first.
    pub fn new(x: &'a Matrix, protected: &[bool], config: &IFairConfig) -> Self {
        let (m, n) = x.shape();
        assert_eq!(
            protected.len(),
            n,
            "protected flags must match the feature count"
        );
        let nonprotected: Vec<usize> = (0..n).filter(|&j| !protected[j]).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1fa1_9a17);
        let pool = LazyPool::new(par::resolve_threads(config.n_threads));
        let pairs = build_pairs(x, &nonprotected, config.fairness_pairs, m, &mut rng, &pool);
        let workspace = Mutex::new(Workspace::new(m, n, config.k));
        IFairObjective {
            x,
            m,
            kern: LossKernel::from_config(n, config),
            pairs,
            pool,
            workspace,
        }
    }

    /// Overrides the worker-thread count of every parallel kernel (`0` =
    /// all hardware threads), replacing the objective's pool. Used by the
    /// serial-vs-parallel parity tests and the kernel benchmarks. The
    /// thread count never affects numerics (see the module docs).
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        let n_threads = par::resolve_threads(n_threads);
        if n_threads != self.pool.n_threads {
            // Replacing the pool joins any threads `new()` already spawned
            // (e.g. for the pair-target fill), so keep it when the count is
            // unchanged; callers that know the count up front should set
            // `IFairConfig::n_threads` instead.
            self.pool = LazyPool::new(n_threads);
        }
        self
    }

    /// The worker-thread count the parallel kernels will use.
    pub fn n_threads(&self) -> usize {
        self.pool.n_threads
    }

    /// The fairness pairs (and target distances) this objective preserves.
    pub fn pairs(&self) -> &[FairPair] {
        &self.pairs
    }

    /// Number of records `M`.
    pub fn n_records(&self) -> usize {
        self.m
    }

    /// The pool for pair sweeps, `None` when the pair set is too small to
    /// be worth a dispatch (or the objective is serial).
    fn fair_pool(&self) -> Option<&par::WorkerPool> {
        if self.pairs.len() >= PAR_MIN_PAIRS {
            self.pool.get()
        } else {
            None
        }
    }

    /// The pool for per-record sweeps, `None` when the record count is too
    /// small to be worth a dispatch (or the objective is serial).
    fn record_pool(&self) -> Option<&par::WorkerPool> {
        if self.m >= PAR_MIN_RECORDS {
            self.pool.get()
        } else {
            None
        }
    }
}

impl Objective for IFairObjective<'_> {
    fn dim(&self) -> usize {
        self.kern.dim()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let mut guard = self.workspace.lock().expect("workspace poisoned");
        self.kern.value_into(
            self.x,
            &self.pairs,
            theta,
            &mut guard,
            self.record_pool(),
            self.fair_pool(),
        )
    }

    fn gradient(&self, theta: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(theta, grad);
    }

    fn value_and_gradient(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let mut guard = self.workspace.lock().expect("workspace poisoned");
        self.kern.value_and_gradient_into(
            self.x,
            &self.pairs,
            theta,
            grad,
            &mut guard,
            self.record_pool(),
            self.fair_pool(),
        )
    }
}

/// Everything a mini-batch evaluation touches, behind one lock: the current
/// batch matrix and pair list, the evaluation workspace, and the sampler's
/// reusable scratch.
struct BatchState {
    /// `B x N` batch matrix, refilled by every resample.
    x: Matrix,
    /// Fairness pairs whose indices point *into the batch* (`0..B`).
    pairs: Vec<FairPair>,
    /// Source indices of the current batch, ascending.
    indices: Vec<usize>,
    /// Evaluation scratch, sized for the batch once and reused every step.
    workspace: Workspace,
    /// Persistent permutation for dense record draws (`B > M/2`).
    perm: Vec<usize>,
    /// Persistent enumeration of all `B(B−1)/2` batch pairs for dense pair
    /// draws, built once and re-shuffled in place (like `perm`).
    all_pairs: Vec<FairPair>,
}

/// The mini-batch sampler's persistent shuffle state, captured at training
/// checkpoints.
///
/// Dense record and pair draws Fisher-Yates a *persistent* permutation in
/// place ([`MiniBatchObjective::resample`]), so the sampler's output is a
/// function of the RNG state **and** the arrangement those shuffles left
/// behind. Resuming a fit from only the RNG would silently diverge from the
/// uninterrupted run; checkpoints therefore carry this state alongside it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerState {
    /// The persistent record permutation (`perm`), or empty if the dense
    /// record path has not run.
    pub perm: Vec<usize>,
    /// The persistent pair enumeration, each pair flattened as `i·B + j`,
    /// or empty if the dense pair path has not run.
    pub pair_order: Vec<usize>,
}

/// The stochastic (mini-batch) view of the iFair loss.
///
/// Each [`MiniBatchObjective::resample`] draws `batch_records` distinct
/// records from a [`RecordSource`] and up to `pairs_per_batch` distinct
/// fairness pairs **within** that batch (targets measured on the batch rows'
/// non-protected columns, exactly like the full-batch pair build), then the
/// [`Objective`] impl evaluates `λ·L_util + μ·L_fair` over the batch alone —
/// per-step cost is a function of the batch shape, never of `M`. The
/// forward/backward math is the same private loss kernel the full-batch
/// objective runs (same fixed chunk layouts, same fold order), so mini-batch training
/// is bit-identical for every thread count, and the batch workspace is
/// allocated once and reused across all steps, epochs, and restarts.
///
/// Sampling draws from the *caller's* RNG on the training thread, keeping
/// the batch sequence a pure function of the seed.
pub struct MiniBatchObjective {
    kern: LossKernel,
    /// Batch size `B` (already clamped to the source's record count).
    batch_records: usize,
    /// Requested pairs per batch (clamped per batch to `B(B−1)/2`).
    pairs_per_batch: usize,
    /// Record count `M` of the source this sampler draws from.
    n_source_records: usize,
    /// Non-protected column indices (for pair targets).
    nonprotected: Vec<usize>,
    pool: LazyPool,
    batch: Mutex<BatchState>,
}

impl MiniBatchObjective {
    /// Builds the batched view for a source of `n_source_records` rows of
    /// width `protected.len()`, with batch shape and hyper-parameters from
    /// `config` (whose `strategy` must carry a mini-batch schedule —
    /// [`crate::FitStrategy::MiniBatch`] or [`crate::FitStrategy::DataParallel`]).
    ///
    /// # Panics
    /// Panics if `config.strategy` has no batch schedule (`FullBatch`) —
    /// callers ([`crate::IFair`]) dispatch on the strategy first.
    pub fn new(n_source_records: usize, protected: &[bool], config: &IFairConfig) -> Self {
        let Some((batch_records, pairs_per_batch, _, _)) = config.strategy.schedule() else {
            panic!("MiniBatchObjective requires a batched strategy (MiniBatch or DataParallel)");
        };
        let n = protected.len();
        let b = batch_records.min(n_source_records).max(1);
        let nonprotected: Vec<usize> = (0..n).filter(|&j| !protected[j]).collect();
        MiniBatchObjective {
            kern: LossKernel::from_config(n, config),
            batch_records: b,
            pairs_per_batch,
            n_source_records,
            nonprotected,
            pool: LazyPool::new(par::resolve_threads(config.n_threads)),
            batch: Mutex::new(BatchState {
                x: Matrix::zeros(b, n),
                pairs: Vec::new(),
                indices: Vec::new(),
                workspace: Workspace::new(b, n, config.k),
                perm: Vec::new(),
                all_pairs: Vec::new(),
            }),
        }
    }

    /// Batch size `B` actually used (the configured `batch_records`, clamped
    /// to the source's record count).
    pub fn batch_records(&self) -> usize {
        self.batch_records
    }

    /// Fairness pairs each batch realizes: the configured `pairs_per_batch`
    /// clamped to the `B(B−1)/2` distinct pairs a batch contains.
    pub fn realized_pairs_per_batch(&self) -> usize {
        let total = self.batch_records * self.batch_records.saturating_sub(1) / 2;
        self.pairs_per_batch.min(total)
    }

    /// Source indices of the current batch (ascending); empty before the
    /// first resample.
    pub fn batch_indices(&self) -> Vec<usize> {
        self.batch.lock().expect("batch poisoned").indices.clone()
    }

    /// Captures the sampler's persistent shuffle state for a training
    /// checkpoint (see [`SamplerState`] for why the RNG alone is not
    /// enough).
    pub fn sampler_state(&self) -> SamplerState {
        let state = self.batch.lock().expect("batch poisoned");
        SamplerState {
            perm: state.perm.clone(),
            pair_order: state
                .all_pairs
                .iter()
                .map(|p| p.i * self.batch_records + p.j)
                .collect(),
        }
    }

    /// Restores shuffle state captured by [`MiniBatchObjective::sampler_state`]
    /// onto a freshly built objective, validating it against this sampler's
    /// shape. With the RNG restored alongside, the resumed batch sequence is
    /// bit-identical to the uninterrupted one.
    pub fn restore_sampler_state(&mut self, saved: &SamplerState) -> Result<(), DataError> {
        let (m, b) = (self.n_source_records, self.batch_records);
        if !saved.perm.is_empty() {
            if saved.perm.len() != m {
                return Err(DataError::Parse(format!(
                    "sampler permutation covers {} records, source has {m}",
                    saved.perm.len()
                )));
            }
            let mut seen = vec![false; m];
            for &i in &saved.perm {
                if i >= m || std::mem::replace(&mut seen[i], true) {
                    return Err(DataError::Parse(
                        "sampler permutation is not a permutation of the record indices".into(),
                    ));
                }
            }
        }
        let total = b * b.saturating_sub(1) / 2;
        if !saved.pair_order.is_empty() {
            if saved.pair_order.len() != total {
                return Err(DataError::Parse(format!(
                    "sampler pair order covers {} pairs, batch shape yields {total}",
                    saved.pair_order.len()
                )));
            }
            let mut seen = vec![false; b * b];
            for &flat in &saved.pair_order {
                let (i, j) = (flat / b, flat % b);
                // `i < j` bounds the flat index: `i < j < b` gives `flat < b²`.
                if i >= j || std::mem::replace(&mut seen[flat], true) {
                    return Err(DataError::Parse(
                        "sampler pair order is not a permutation of the batch pairs".into(),
                    ));
                }
            }
        }
        let state = self.batch.get_mut().expect("batch poisoned");
        state.perm = saved.perm.clone();
        state.all_pairs = saved
            .pair_order
            .iter()
            .map(|&flat| FairPair {
                i: flat / b,
                j: flat % b,
                target: 0.0,
            })
            .collect();
        Ok(())
    }

    /// Draws the next batch: `B` distinct record indices from `source`
    /// (ascending, so file-backed sources seek forward), their rows into the
    /// batch buffer, and a fresh set of distinct fairness pairs within the
    /// batch with targets on the non-protected columns.
    ///
    /// Rejects batches containing non-finite values — the streaming
    /// counterpart of the up-front matrix check of the full-batch path.
    pub fn resample(
        &mut self,
        source: &mut dyn RecordSource,
        rng: &mut StdRng,
    ) -> Result<(), DataError> {
        let (m, b) = (self.n_source_records, self.batch_records);
        let state = self.batch.get_mut().expect("batch poisoned");

        // Distinct record indices: dense draws shuffle a persistent
        // permutation (a Fisher-Yates prefix is uniform from any starting
        // arrangement), sparse draws reject duplicates.
        state.indices.clear();
        if b >= m {
            state.indices.extend(0..m);
        } else if b * 2 >= m {
            if state.perm.len() != m {
                state.perm = (0..m).collect();
            }
            for idx in 0..b {
                let other = rng.gen_range(idx..m);
                state.perm.swap(idx, other);
            }
            state.indices.extend_from_slice(&state.perm[..b]);
        } else {
            let mut seen = std::collections::HashSet::with_capacity(b);
            while state.indices.len() < b {
                let i = rng.gen_range(0..m);
                if seen.insert(i) {
                    state.indices.push(i);
                }
            }
        }
        state.indices.sort_unstable();

        source.read_rows(&state.indices, state.x.as_mut_slice())?;
        if state.x.as_slice().iter().any(|v| !v.is_finite()) {
            return Err(DataError::Parse(
                "batch contains non-finite feature values".into(),
            ));
        }

        // Distinct pairs within the batch, same dense/sparse split as the
        // full-batch `Subsampled` build.
        let total = b * b.saturating_sub(1) / 2;
        let n_pairs = self.pairs_per_batch.min(total);
        state.pairs.clear();
        if n_pairs > total / 2 {
            // Dense draw: Fisher-Yates prefix over the persistent pair
            // enumeration (built once; a prefix shuffle is uniform from any
            // starting arrangement, so re-shuffling in place stays unbiased
            // and allocation-free across steps).
            if state.all_pairs.len() != total {
                state.all_pairs.clear();
                state.all_pairs.reserve(total);
                for i in 0..b {
                    for j in (i + 1)..b {
                        state.all_pairs.push(FairPair { i, j, target: 0.0 });
                    }
                }
            }
            for idx in 0..n_pairs {
                let other = rng.gen_range(idx..total);
                state.all_pairs.swap(idx, other);
            }
            state.pairs.extend_from_slice(&state.all_pairs[..n_pairs]);
        } else {
            let mut seen = std::collections::HashSet::with_capacity(n_pairs);
            while state.pairs.len() < n_pairs {
                let i = rng.gen_range(0..b);
                let j = rng.gen_range(0..b);
                if i == j {
                    continue;
                }
                let (lo, hi) = (i.min(j), i.max(j));
                if seen.insert((lo, hi)) {
                    state.pairs.push(FairPair {
                        i: lo,
                        j: hi,
                        target: 0.0,
                    });
                }
            }
        }
        state.pairs.sort_unstable_by_key(|p| (p.i, p.j));
        for pair in &mut state.pairs {
            pair.target = masked_target(&state.x, &self.nonprotected, pair.i, pair.j);
        }
        Ok(())
    }

    /// The pool for per-record sweeps over the batch (same engagement
    /// threshold as the full-batch objective).
    fn record_pool(&self) -> Option<&par::WorkerPool> {
        if self.batch_records >= PAR_MIN_RECORDS {
            self.pool.get()
        } else {
            None
        }
    }

    /// The pool for pair sweeps over the batch.
    fn fair_pool(&self, n_pairs: usize) -> Option<&par::WorkerPool> {
        if n_pairs >= PAR_MIN_PAIRS {
            self.pool.get()
        } else {
            None
        }
    }
}

impl Objective for MiniBatchObjective {
    fn dim(&self) -> usize {
        self.kern.dim()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let mut guard = self.batch.lock().expect("batch poisoned");
        let state = &mut *guard;
        let fair_pool = self.fair_pool(state.pairs.len());
        self.kern.value_into(
            &state.x,
            &state.pairs,
            theta,
            &mut state.workspace,
            self.record_pool(),
            fair_pool,
        )
    }

    fn gradient(&self, theta: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(theta, grad);
    }

    fn value_and_gradient(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let mut guard = self.batch.lock().expect("batch poisoned");
        let state = &mut *guard;
        let fair_pool = self.fair_pool(state.pairs.len());
        self.kern.value_and_gradient_into(
            &state.x,
            &state.pairs,
            theta,
            grad,
            &mut state.workspace,
            self.record_pool(),
            fair_pool,
        )
    }
}

// ---------------------------------------------------------------------------
// Data-parallel execution
// ---------------------------------------------------------------------------
//
// The multi-process trainer (`crate::dp`) splits one mini-batch step across
// worker processes along the SAME fixed chunk layouts the in-process pools
// use. Every worker recomputes the full forward pass locally (per-record and
// fold-free, hence bit-identical to the coordinator's), evaluates only the
// fairness / backprop chunks it owns with the same chunk kernels, and ships
// per-chunk partials back; the coordinator folds them in global chunk order.
// The summation tree is therefore exactly the serial single-buffer fold —
// the fit is bit-identical for every worker count and every thread count
// inside the workers, by the same argument that covers the thread pools.

/// One fairness chunk's gradient contribution, as shipped from a
/// data-parallel worker to the coordinator.
///
/// `rows` carries only the `∂(μ·L_fair)/∂x̃` rows the chunk's pairs touch
/// (each pair writes rows `i` and `j` and nothing else), ascending; the
/// coordinator scatters them into a zeroed `B·N` buffer before folding,
/// reproducing the serial path's per-chunk accumulator bit for bit at a
/// transport cost proportional to the chunk's pair count instead of `B·N`.
pub(crate) struct FairPartial {
    /// Raw `L_fair` pair sum of the chunk (no `μ` factor).
    pub(crate) loss: f64,
    /// Touched `∂(μ·L_fair)/∂x̃` rows: `(batch row, N values)`, ascending.
    pub(crate) rows: Vec<(usize, Vec<f64>)>,
    /// The chunk's `N`-length `∂/∂α` accumulator (all zeros under the
    /// unweighted metric, exactly like the in-process chunk buffer).
    pub(crate) ga: Vec<f64>,
}

/// One backprop record chunk's gradient contribution, as shipped from a
/// data-parallel worker.
pub(crate) struct BackPartial {
    /// The chunk's `K·N` prototype-gradient accumulator.
    pub(crate) gv: Vec<f64>,
    /// The chunk's `N`-length `∂L/∂α` accumulator.
    pub(crate) ga: Vec<f64>,
}

/// The coordinator's handle on a fleet of data-parallel workers, as driven
/// by [`MiniBatchObjective::value_and_gradient_dp`]. The concrete
/// implementation ([`crate::dp::DpCluster`]) speaks the pipe protocol; the
/// trait keeps the numerics here testable against an in-process fake.
pub(crate) trait DpExecutor {
    /// Broadcasts a step (`θ`, the batch matrix, the batch pairs) to every
    /// worker, which starts computing its owned fairness chunks.
    fn start_step(&mut self, theta: &[f64], x: &Matrix, pairs: &[FairPair])
        -> Result<(), FitError>;
    /// Collects all fairness partials in global chunk order. `n_chunks` is
    /// the coordinator's expected total (zero when `μ = 0`, where workers
    /// still send an empty reply to keep the protocol in lock-step).
    fn collect_fair(&mut self, n_chunks: usize) -> Result<Vec<FairPartial>, FitError>;
    /// Sends each worker the `∂L/∂x̃` rows of the records its backprop
    /// chunks own (a contiguous row band per worker, see
    /// [`worker_row_band`]).
    fn start_back(&mut self, g_xt: &[f64]) -> Result<(), FitError>;
    /// Collects all backprop partials in global chunk order.
    fn collect_back(&mut self, n_chunks: usize) -> Result<Vec<BackPartial>, FitError>;
}

/// The contiguous run of a chunk layout's chunk *indices* owned by worker
/// `worker` of a fleet of `workers` — the single assignment rule both sides
/// of the protocol derive independently. Empty when there are more workers
/// than chunks.
pub(crate) fn owned_chunks(n_chunks: usize, worker: usize, workers: usize) -> Range<usize> {
    par::chunk_ranges(n_chunks, workers)
        .get(worker)
        .cloned()
        .unwrap_or(0..0)
}

/// The contiguous batch-row band worker `worker`'s backprop chunks cover
/// (empty when the worker owns no chunks). The coordinator slices `∂L/∂x̃`
/// along these bands; the worker validates the slice it receives against
/// the same rule.
pub(crate) fn worker_row_band(b: usize, worker: usize, workers: usize) -> Range<usize> {
    let layout = record_chunk_layout(b);
    let owned = owned_chunks(layout.len(), worker, workers);
    if owned.is_empty() {
        0..0
    } else {
        layout[owned.start].start..layout[owned.end - 1].end
    }
}

/// The sorted, deduplicated batch rows a pair slice touches — exactly the
/// `∂/∂x̃` rows its chunk accumulator can hold nonzero values in.
fn touched_rows(pairs: &[FairPair]) -> Vec<usize> {
    let mut rows: Vec<usize> = pairs.iter().flat_map(|p| [p.i, p.j]).collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

impl MiniBatchObjective {
    /// The fused loss + gradient of the current batch with the fairness and
    /// backprop chunk sweeps delegated to data-parallel workers through
    /// `exec` — the multi-process counterpart of
    /// [`Objective::value_and_gradient`].
    ///
    /// Bit-identical to the in-process path by construction: the
    /// coordinator runs the same forward pass and utility term locally,
    /// workers evaluate the same fixed chunk layouts with the same chunk
    /// kernels on a bit-identical forward state, and the partials are
    /// folded in global chunk order — the same summation tree as
    /// `value_and_gradient_into`, independent of the worker count.
    pub(crate) fn value_and_gradient_dp(
        &mut self,
        theta: &[f64],
        grad: &mut [f64],
        exec: &mut dyn DpExecutor,
    ) -> Result<f64, FitError> {
        let MiniBatchObjective {
            kern,
            batch,
            pool,
            batch_records,
            ..
        } = self;
        let state = batch.get_mut().expect("batch poisoned");
        let rec_pool = if *batch_records >= PAR_MIN_RECORDS {
            pool.get()
        } else {
            None
        };
        let n = kern.n;
        let (alpha, v) = kern.unpack(theta);

        // Ship the step first: workers compute their fairness chunks while
        // the coordinator runs its own forward pass over the same batch.
        exec.start_step(theta, &state.x, &state.pairs)?;

        let Workspace {
            state: fwd,
            g_xt,
            fair,
            ..
        } = &mut state.workspace;
        kern.forward_into(&state.x, alpha, v, fwd, rec_pool);

        grad.fill(0.0);

        // Utility term and the ∂L/∂x̃ seed — same code as the in-process
        // path, element for element.
        let util = if kern.lambda != 0.0 {
            for ((g, &orig), &rec) in g_xt.iter_mut().zip(state.x.as_slice()).zip(&fwd.xt) {
                *g = 2.0 * kern.lambda * (rec - orig);
            }
            ifair_linalg::lanes::sq_euclidean(state.x.as_slice(), fwd.xt.as_slice())
        } else {
            g_xt.fill(0.0);
            0.0
        };

        // Fairness term: fold the workers' per-chunk partials in global
        // chunk order. Scattering a chunk's sparse rows into a zeroed B·N
        // buffer and folding the whole buffer reproduces the serial path's
        // per-chunk accumulator (untouched rows contribute the same +0.0)
        // bit for bit.
        let fair_chunks = if kern.mu != 0.0 {
            fair_chunk_layout(state.pairs.len()).len()
        } else {
            0
        };
        let partials = exec.collect_fair(fair_chunks)?;
        let fair_sum = if kern.mu != 0.0 {
            let (g_alpha, _) = grad.split_at_mut(n);
            let gx = &mut fair.gx.take(1, g_xt.len())[0];
            let mut loss = 0.0;
            for part in &partials {
                gx.fill(0.0);
                for (row, vals) in &part.rows {
                    gx[row * n..(row + 1) * n].copy_from_slice(vals);
                }
                loss += part.loss;
                fold::add_assign(g_xt, gx);
                fold::add_assign(g_alpha, &part.ga);
            }
            loss
        } else {
            0.0
        };
        let loss = kern.lambda * util + kern.mu * fair_sum;

        // Backprop is sharded over the fixed record chunks; each worker
        // only needs the ∂L/∂x̃ rows of the records it owns.
        exec.start_back(g_xt)?;
        let back_parts = exec.collect_back(record_chunk_layout(*batch_records).len())?;
        let (g_alpha, g_v) = grad.split_at_mut(n);
        for part in &back_parts {
            fold::add_assign(g_v, &part.gv);
            fold::add_assign(g_alpha, &part.ga);
        }
        Ok(loss)
    }
}

/// The worker-process half of the data-parallel split: the same
/// [`LossKernel`] and workspace as an in-process objective, driven frame by
/// frame by `crate::dp::worker_main`. The worker recomputes the full
/// forward pass locally and evaluates only the fairness / backprop chunks
/// it owns, through the same chunk kernels as the in-process path (its own
/// thread pool engages with the same thresholds, so in-worker threading
/// never changes a bit either).
pub(crate) struct DpWorkerKernel {
    kern: LossKernel,
    pool: LazyPool,
    ws: Workspace,
    /// Batch size `B` (already clamped by the coordinator).
    b: usize,
    /// This worker's index in the fleet, fixing chunk ownership.
    worker: usize,
    /// Fleet size.
    workers: usize,
}

impl DpWorkerKernel {
    /// Builds the kernel for feature width `n` and coordinator-clamped
    /// batch size `batch_records`, as worker `worker` of `workers`.
    pub(crate) fn new(
        n: usize,
        batch_records: usize,
        worker: usize,
        workers: usize,
        config: &IFairConfig,
    ) -> DpWorkerKernel {
        DpWorkerKernel {
            kern: LossKernel::from_config(n, config),
            pool: LazyPool::new(par::resolve_threads(config.n_threads)),
            ws: Workspace::new(batch_records, n, config.k),
            b: batch_records,
            worker,
            workers,
        }
    }

    /// One EVAL step: full local forward pass over the broadcast batch,
    /// then this worker's owned fairness chunks. Returns the per-chunk
    /// partials paired with their *global* chunk indices, ascending (empty
    /// when `μ = 0` or the worker owns no chunks — the forward state is
    /// updated regardless, since the backprop step needs it).
    pub(crate) fn eval_step(
        &mut self,
        x: &Matrix,
        pairs: &[FairPair],
        theta: &[f64],
    ) -> Vec<(usize, FairPartial)> {
        let DpWorkerKernel {
            kern,
            pool,
            ws,
            b,
            worker,
            workers,
        } = self;
        let (alpha, v) = kern.unpack(theta);
        let n = kern.n;
        let rec_pool = if *b >= PAR_MIN_RECORDS {
            pool.get()
        } else {
            None
        };
        let Workspace { state, fair, .. } = ws;
        kern.forward_into(x, alpha, v, state, rec_pool);
        if kern.mu == 0.0 {
            return Vec::new();
        }
        let layout = fair_chunk_layout(pairs.len());
        let owned = owned_chunks(layout.len(), *worker, *workers);
        let fair_pool = if pairs.len() >= PAR_MIN_PAIRS {
            pool.get()
        } else {
            None
        };
        let gx_bufs = fair.gx.take(owned.len(), *b * n);
        let ga_bufs = fair.ga.take(owned.len(), n);
        let jobs: Vec<FairGradJob<'_>> = owned
            .clone()
            .map(|chunk| layout[chunk].clone())
            .zip(gx_bufs.iter_mut())
            .zip(ga_bufs.iter_mut())
            .map(|((pair_range, gx), ga)| FairGradJob {
                pairs: pair_range,
                gx: gx.as_mut_slice(),
                ga: ga.as_mut_slice(),
            })
            .collect();
        let state: &ForwardState = state;
        let losses = par::pool_map(fair_pool, jobs, |job| {
            let FairGradJob {
                pairs: pair_range,
                gx,
                ga,
            } = job;
            gx.fill(0.0);
            ga.fill(0.0);
            kern.fair_grad_chunk(pairs, alpha, state, pair_range, gx, ga)
        });
        owned
            .clone()
            .enumerate()
            .map(|(slot, chunk)| {
                let gx = &gx_bufs[slot];
                let rows = touched_rows(&pairs[layout[chunk].clone()])
                    .into_iter()
                    .map(|r| (r, gx[r * n..(r + 1) * n].to_vec()))
                    .collect();
                (
                    chunk,
                    FairPartial {
                        loss: losses[slot],
                        rows,
                        ga: ga_bufs[slot].clone(),
                    },
                )
            })
            .collect()
    }

    /// One BACK step: this worker's owned backprop record chunks, given the
    /// coordinator's `∂L/∂x̃` values for the row band those chunks cover
    /// (`rows` holds `band.len() · N` values starting at batch row
    /// `band.start`, per [`worker_row_band`]). Requires the forward state
    /// of the preceding [`DpWorkerKernel::eval_step`]. Returns per-chunk
    /// partials paired with their global chunk indices, ascending.
    pub(crate) fn back_step(
        &mut self,
        x: &Matrix,
        theta: &[f64],
        rows: &[f64],
    ) -> Vec<(usize, BackPartial)> {
        let DpWorkerKernel {
            kern,
            pool,
            ws,
            b,
            worker,
            workers,
        } = self;
        let (alpha, v) = kern.unpack(theta);
        let (n, k) = (kern.n, kern.k);
        let layout = record_chunk_layout(*b);
        let owned = owned_chunks(layout.len(), *worker, *workers);
        let band = worker_row_band(*b, *worker, *workers);
        assert_eq!(
            rows.len(),
            band.len() * n,
            "backprop row band length mismatch"
        );
        let rec_pool = if *b >= PAR_MIN_RECORDS {
            pool.get()
        } else {
            None
        };
        let Workspace {
            state, g_xt, back, ..
        } = ws;
        g_xt[band.start * n..band.start * n + rows.len()].copy_from_slice(rows);
        let g_xt: &[f64] = g_xt;
        let state: &ForwardState = state;
        let gv_bufs = back.gv.take(owned.len(), k * n);
        let ga_bufs = back.ga.take(owned.len(), n);
        let c_bufs = back.c.take(owned.len(), k);
        let jobs: Vec<BackpropJob<'_>> = owned
            .clone()
            .map(|chunk| layout[chunk].clone())
            .zip(gv_bufs.iter_mut())
            .zip(ga_bufs.iter_mut())
            .zip(c_bufs.iter_mut())
            .map(|(((records, gv), ga), c)| BackpropJob {
                records,
                gv: gv.as_mut_slice(),
                ga: ga.as_mut_slice(),
                c: c.as_mut_slice(),
            })
            .collect();
        par::pool_map(rec_pool, jobs, |job| {
            kern.backprop_chunk(x, alpha, v, state, g_xt, job)
        });
        owned
            .clone()
            .enumerate()
            .map(|(slot, chunk)| {
                (
                    chunk,
                    BackPartial {
                        gv: gv_bufs[slot].clone(),
                        ga: ga_bufs[slot].clone(),
                    },
                )
            })
            .collect()
    }
}

/// `Σ_n α_n |x_n − y_n|^p` with non-negativity clamping on `α`. Routes
/// through the lane-chunked kernel in [`distance`], whose `p = 2` fast path
/// (the paper's Gaussian-kernel default) is the vectorized `w·Δ²` form.
#[inline]
fn power_sum(x: &[f64], y: &[f64], alpha: &[f64], p: f64) -> f64 {
    distance::weighted_power_sum(x, y, alpha, p)
}

/// `|Δ|^q` with a fast path for `q = 2`.
#[inline]
fn pow_abs(delta: f64, q: f64) -> f64 {
    if q == 2.0 {
        delta * delta
    } else {
        delta.abs().powf(q)
    }
}

/// `|Δ|^q · sign(Δ)` with a fast path for `q = 1`.
#[inline]
fn pow_abs_signed(delta: f64, q: f64) -> f64 {
    if q == 1.0 {
        delta
    } else if delta == 0.0 {
        0.0
    } else {
        delta.abs().powf(q) * delta.signum()
    }
}

/// Lane-chunked dot product (the softmax-Jacobian reduction of backprop).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    distance::dot(a, b)
}

/// `acc += part`, element-wise. The reduction step of the parallel kernels.
#[inline]
fn add_assign(acc: &mut [f64], part: &[f64]) {
    debug_assert_eq!(acc.len(), part.len());
    for (a, &p) in acc.iter_mut().zip(part) {
        *a += p;
    }
}

/// Splits `buf` into one mutable slice per layout range, where each index of
/// the layout covers `width` consecutive elements of `buf`. The layout must
/// tile `buf` exactly.
fn split_chunks<'b, T>(
    mut buf: &'b mut [T],
    layout: &[Range<usize>],
    width: usize,
) -> Vec<&'b mut [T]> {
    let mut out = Vec::with_capacity(layout.len());
    for range in layout {
        let (head, tail) = buf.split_at_mut(range.len() * width);
        out.push(head);
        buf = tail;
    }
    debug_assert!(buf.is_empty(), "layout must tile the buffer exactly");
    out
}

/// The fairness target `d(x*_i, x*_j)`: unweighted Euclidean distance on the
/// non-protected columns (Definition 5).
fn masked_target(x: &Matrix, nonprotected: &[usize], i: usize, j: usize) -> f64 {
    let (a, b) = (x.row(i), x.row(j));
    nonprotected
        .iter()
        .map(|&col| {
            let d = a[col] - b[col];
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Fills every pair's target distance, in parallel over fixed pair chunks
/// when a pool is supplied. Each target is a pure function of its pair, so
/// the result does not depend on the chunking or thread count.
fn fill_targets(
    x: &Matrix,
    nonprotected: &[usize],
    pairs: &mut [FairPair],
    pool: Option<&par::WorkerPool>,
) {
    let n_chunks = pairs
        .len()
        .div_ceil(FAIR_CHUNK_PAIRS)
        .clamp(1, MAX_FAIR_CHUNKS);
    let layout = par::chunk_ranges(pairs.len(), n_chunks);
    let jobs = split_chunks(pairs, &layout, 1);
    par::pool_map(pool, jobs, |chunk| {
        for pair in chunk.iter_mut() {
            pair.target = masked_target(x, nonprotected, pair.i, pair.j);
        }
    });
}

/// Materializes the fairness-pair set with target distances measured by the
/// unweighted Euclidean metric on the non-protected columns (Definition 5's
/// `d(x*_i, x*_j)`). Pair indices are drawn serially from `rng` (so the set
/// is a function of the seed alone); the `O(pairs · N)` target distances are
/// then filled through the objective's pool.
fn build_pairs(
    x: &Matrix,
    nonprotected: &[usize],
    spec: FairnessPairs,
    m: usize,
    rng: &mut StdRng,
    pool: &LazyPool,
) -> Vec<FairPair> {
    let mut pairs = match spec {
        FairnessPairs::Exact => {
            // Every unordered pair exactly once, emitted tile-by-tile (see
            // [`PAIR_TILE_RECORDS`]) so the `L_fair` sweep over the list is
            // cache-blocked for free. Within a tile pairs stay `(i, j)`-
            // ascending; across tiles the order is block-major.
            let tile = PAIR_TILE_RECORDS;
            let mut pairs = Vec::with_capacity(m * m.saturating_sub(1) / 2);
            for ti in (0..m).step_by(tile) {
                for tj in (ti..m).step_by(tile) {
                    for i in ti..(ti + tile).min(m) {
                        for j in (i + 1).max(tj)..(tj + tile).min(m) {
                            pairs.push(FairPair { i, j, target: 0.0 });
                        }
                    }
                }
            }
            pairs
        }
        FairnessPairs::Anchored { n_anchors } => {
            let n_anchors = n_anchors.min(m);
            let mut anchors: Vec<usize> = (0..m).collect();
            anchors.shuffle(rng);
            anchors.truncate(n_anchors);
            anchors.sort_unstable();
            let mut pairs = Vec::with_capacity(m * n_anchors);
            for i in 0..m {
                for &a in &anchors {
                    if a == i {
                        continue;
                    }
                    let (lo, hi) = (i.min(a), i.max(a));
                    pairs.push(FairPair {
                        i: lo,
                        j: hi,
                        target: 0.0,
                    });
                }
            }
            // Anchor-anchor pairs appear twice (once from each side); records
            // must not be double-counted or their gradient doubles.
            pairs.sort_unstable_by_key(|p| (p.i, p.j));
            pairs.dedup_by_key(|p| (p.i, p.j));
            pairs
        }
        FairnessPairs::Subsampled { n_pairs } => {
            let total = m * m.saturating_sub(1) / 2;
            let n_pairs = n_pairs.min(total);
            if n_pairs == 0 {
                return Vec::new();
            }
            let mut pairs = if n_pairs > total / 2 {
                // Dense draw: rejection sampling degenerates as `n_pairs`
                // approaches `total` (the last acceptance needs ~`total`
                // tries in expectation), so enumerate every pair and keep a
                // partial Fisher-Yates prefix instead.
                let mut all = Vec::with_capacity(total);
                for i in 0..m {
                    for j in (i + 1)..m {
                        all.push(FairPair { i, j, target: 0.0 });
                    }
                }
                for idx in 0..n_pairs {
                    let other = rng.gen_range(idx..all.len());
                    all.swap(idx, other);
                }
                all.truncate(n_pairs);
                all
            } else {
                // Sparse draw: sample distinct unordered pairs by rejection;
                // below half the total pair count collisions stay rare.
                let mut seen = std::collections::HashSet::with_capacity(n_pairs);
                let mut pairs = Vec::with_capacity(n_pairs);
                while pairs.len() < n_pairs {
                    let i = rng.gen_range(0..m);
                    let j = rng.gen_range(0..m);
                    if i == j {
                        continue;
                    }
                    let (lo, hi) = (i.min(j), i.max(j));
                    if seen.insert((lo, hi)) {
                        pairs.push(FairPair {
                            i: lo,
                            j: hi,
                            target: 0.0,
                        });
                    }
                }
                pairs
            };
            pairs.sort_unstable_by_key(|p| (p.i, p.j));
            pairs
        }
    };
    let fill_pool = if pairs.len() >= PAR_MIN_PAIRS {
        pool.get()
    } else {
        None
    };
    fill_targets(x, nonprotected, &mut pairs, fill_pool);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FitStrategy, InitStrategy};
    use ifair_optim::numgrad::check_gradient;

    fn toy_matrix() -> Matrix {
        // 6 records x 4 attributes, values in general position so p=3
        // derivatives are smooth (no coincident coordinates).
        Matrix::from_rows(vec![
            vec![0.91, 0.20, 0.37, 1.00],
            vec![0.83, 0.31, 0.55, 0.00],
            vec![0.22, 0.87, 0.14, 1.00],
            vec![0.11, 0.93, 0.72, 0.00],
            vec![0.52, 0.48, 0.90, 1.00],
            vec![0.43, 0.64, 0.08, 0.00],
        ])
        .unwrap()
    }

    fn toy_protected() -> Vec<bool> {
        vec![false, false, false, true]
    }

    fn theta_at(dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..dim).map(|_| rng.gen_range(0.05..0.95)).collect()
    }

    fn config(k: usize) -> IFairConfig {
        IFairConfig {
            k,
            lambda: 0.7,
            mu: 1.3,
            init: InitStrategy::RandomUniform,
            ..Default::default()
        }
    }

    /// Runs the forward pass into a fresh state (test helper).
    fn forward_fresh(obj: &IFairObjective<'_>, theta: &[f64]) -> ForwardState {
        let (alpha, v) = obj.kern.unpack(theta);
        let mut state = ForwardState::new(obj.m, obj.kern.n, obj.kern.k);
        obj.kern
            .forward_into(obj.x, alpha, v, &mut state, obj.record_pool());
        state
    }

    #[test]
    fn dim_counts_alpha_and_prototypes() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(3));
        assert_eq!(obj.dim(), 4 * (3 + 1));
    }

    #[test]
    fn exact_pairs_cover_all_unordered_pairs() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(2));
        assert_eq!(obj.pairs().len(), 6 * 5 / 2);
        for pair in obj.pairs() {
            assert!(pair.i < pair.j);
            assert!(pair.target >= 0.0);
        }
    }

    #[test]
    fn pair_targets_ignore_protected_columns() {
        // Records 0 and 2 of this matrix differ only in the protected column.
        let x = Matrix::from_rows(vec![
            vec![0.5, 0.5, 1.0],
            vec![0.9, 0.1, 0.0],
            vec![0.5, 0.5, 0.0],
        ])
        .unwrap();
        let obj = IFairObjective::new(&x, &[false, false, true], &config(2));
        let pair02 = obj
            .pairs()
            .iter()
            .find(|p| p.i == 0 && p.j == 2)
            .expect("pair (0,2) present");
        assert!(pair02.target.abs() < 1e-12);
    }

    #[test]
    fn anchored_pairs_bounded_and_unique() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Anchored { n_anchors: 2 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        let pairs = obj.pairs();
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 2 * 6);
        let mut keys: Vec<(usize, usize)> = pairs.iter().map(|p| (p.i, p.j)).collect();
        keys.dedup();
        assert_eq!(keys.len(), pairs.len(), "anchored pairs must be distinct");
    }

    #[test]
    fn subsampled_pairs_exact_count() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 7 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        assert_eq!(obj.pairs().len(), 7);
        // Requesting more pairs than exist clamps to the total.
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 10_000 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        assert_eq!(obj.pairs().len(), 15);
    }

    #[test]
    fn subsampled_dense_draw_terminates_and_is_valid() {
        // `n_pairs` near (or at) the total pair count takes the
        // enumerate-and-partial-shuffle path, which must terminate fast and
        // still produce distinct, sorted, correctly-targeted pairs.
        let mut rng = StdRng::seed_from_u64(9);
        let m = 40;
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let total = m * (m - 1) / 2;
        for n_pairs in [total / 2 + 1, total - 1, total] {
            let cfg = IFairConfig {
                fairness_pairs: FairnessPairs::Subsampled { n_pairs },
                ..config(2)
            };
            let obj = IFairObjective::new(&x, &[false, false, true], &cfg);
            let pairs = obj.pairs();
            assert_eq!(pairs.len(), n_pairs);
            for w in pairs.windows(2) {
                assert!((w[0].i, w[0].j) < (w[1].i, w[1].j), "sorted and distinct");
            }
            for pair in pairs {
                assert!(pair.i < pair.j && pair.j < m);
                let want = masked_target(&x, &[0, 1], pair.i, pair.j);
                assert_eq!(pair.target.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn pure_utility_loss_matches_manual_reconstruction_error() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            lambda: 1.0,
            mu: 0.0,
            ..config(3)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        let theta = theta_at(obj.dim(), 7);
        let state = forward_fresh(&obj, &theta);
        let manual: f64 = x
            .as_slice()
            .iter()
            .zip(&state.xt)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        assert!((obj.value(&theta) - manual).abs() < 1e-12);
    }

    #[test]
    fn responsibilities_form_probability_distributions() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(4));
        let theta = theta_at(obj.dim(), 3);
        let state = forward_fresh(&obj, &theta);
        for i in 0..6 {
            let row = &state.u[i * 4..(i + 1) * 4];
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            assert!(row.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn softmax_survives_huge_distances() {
        // Prototype far away => exp(-1e6) underflows without max-shifting.
        let x = Matrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let cfg = IFairConfig { k: 2, ..config(2) };
        let obj = IFairObjective::new(&x, &[false, false], &cfg);
        let theta = vec![1.0, 1.0, 1e3, 1e3, 2e3, 2e3];
        let value = obj.value(&theta);
        assert!(value.is_finite());
        let mut grad = vec![0.0; theta.len()];
        let v = obj.value_and_gradient(&theta, &mut grad);
        assert!(v.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    /// Exercises the analytic gradient against central differences for every
    /// combination of kernels, fairness distances and pair sets.
    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let x = toy_matrix();
        let protected = toy_protected();
        for softmax_distance in [SoftmaxDistance::PowerSum, SoftmaxDistance::Rooted] {
            for fairness_distance in [FairnessDistance::Unweighted, FairnessDistance::Weighted] {
                for p in [2.0, 3.0] {
                    for pairs in [
                        FairnessPairs::Exact,
                        FairnessPairs::Anchored { n_anchors: 3 },
                        FairnessPairs::Subsampled { n_pairs: 5 },
                    ] {
                        let cfg = IFairConfig {
                            p,
                            softmax_distance,
                            fairness_distance,
                            fairness_pairs: pairs,
                            ..config(3)
                        };
                        let obj = IFairObjective::new(&x, &protected, &cfg);
                        let theta = theta_at(obj.dim(), 11);
                        let report = check_gradient(&obj, &theta, 1e-6);
                        assert!(
                            report.passes(2e-5),
                            "sm={softmax_distance:?} fd={fairness_distance:?} p={p} \
                             pairs={pairs:?}: {report:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gradient_matches_for_pure_losses() {
        let x = toy_matrix();
        let protected = toy_protected();
        for (lambda, mu) in [(1.0, 0.0), (0.0, 1.0)] {
            let cfg = IFairConfig {
                lambda,
                mu,
                ..config(2)
            };
            let obj = IFairObjective::new(&x, &protected, &cfg);
            let theta = theta_at(obj.dim(), 23);
            let report = check_gradient(&obj, &theta, 1e-6);
            assert!(report.passes(2e-5), "λ={lambda} μ={mu}: {report:?}");
        }
    }

    #[test]
    fn value_and_gradient_agree_with_value() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(3));
        let theta = theta_at(obj.dim(), 5);
        let mut grad = vec![0.0; obj.dim()];
        let v1 = obj.value_and_gradient(&theta, &mut grad);
        let v2 = obj.value(&theta);
        assert!((v1 - v2).abs() < 1e-12);
    }

    fn minibatch_config(batch_records: usize, pairs_per_batch: usize) -> IFairConfig {
        IFairConfig {
            strategy: FitStrategy::MiniBatch {
                batch_records,
                pairs_per_batch,
                epochs: 1,
                learning_rate: 0.05,
            },
            ..config(3)
        }
    }

    #[test]
    fn minibatch_resample_draws_distinct_records_and_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let mut x = Matrix::from_rows(rows).unwrap();
        let cfg = minibatch_config(8, 12);
        let mut obj = MiniBatchObjective::new(x.rows(), &toy_protected(), &cfg);
        assert_eq!(obj.batch_records(), 8);
        assert_eq!(obj.realized_pairs_per_batch(), 12);
        let mut sample_rng = StdRng::seed_from_u64(cfg.seed);
        for _ in 0..5 {
            obj.resample(&mut x, &mut sample_rng).unwrap();
            let indices = obj.batch_indices();
            assert_eq!(indices.len(), 8);
            for w in indices.windows(2) {
                assert!(w[0] < w[1], "batch indices ascending and distinct");
            }
            let state = obj.batch.lock().unwrap();
            assert_eq!(state.pairs.len(), 12);
            for w in state.pairs.windows(2) {
                assert!(
                    (w[0].i, w[0].j) < (w[1].i, w[1].j),
                    "pairs sorted, distinct"
                );
            }
            for pair in &state.pairs {
                assert!(pair.i < pair.j && pair.j < 8);
                let want = masked_target(&state.x, &[0, 1, 2], pair.i, pair.j);
                assert_eq!(pair.target.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn minibatch_clamps_batch_and_pairs_to_source() {
        let mut x = toy_matrix(); // 6 records -> 15 distinct pairs
        let cfg = minibatch_config(64, 10_000);
        let mut obj = MiniBatchObjective::new(x.rows(), &toy_protected(), &cfg);
        assert_eq!(obj.batch_records(), 6);
        assert_eq!(obj.realized_pairs_per_batch(), 15);
        let mut rng = StdRng::seed_from_u64(1);
        obj.resample(&mut x, &mut rng).unwrap();
        assert_eq!(obj.batch_indices(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(obj.batch.lock().unwrap().pairs.len(), 15);
    }

    #[test]
    fn minibatch_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(19);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..4).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let mut x = Matrix::from_rows(rows).unwrap();
        for fairness_distance in [FairnessDistance::Unweighted, FairnessDistance::Weighted] {
            let cfg = IFairConfig {
                fairness_distance,
                ..minibatch_config(12, 30)
            };
            let mut obj = MiniBatchObjective::new(x.rows(), &toy_protected(), &cfg);
            let mut sample_rng = StdRng::seed_from_u64(5);
            obj.resample(&mut x, &mut sample_rng).unwrap();
            let theta = theta_at(obj.dim(), 11);
            let report = check_gradient(&obj, &theta, 1e-6);
            assert!(report.passes(2e-5), "fd={fairness_distance:?}: {report:?}");
        }
    }

    #[test]
    fn minibatch_rejects_non_finite_batches() {
        let mut x = toy_matrix();
        x.set(2, 1, f64::NAN);
        let cfg = minibatch_config(6, 5);
        let mut obj = MiniBatchObjective::new(x.rows(), &toy_protected(), &cfg);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(obj.resample(&mut x, &mut rng).is_err());
    }

    #[test]
    fn minibatch_thread_count_never_changes_bits() {
        // Pool thresholds engage at 128 records / 512 pairs; same seed must
        // give the same batch, loss, and gradient for 1, 2, and 4 threads.
        let mut rng = StdRng::seed_from_u64(23);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut reference: Option<(u64, Vec<u64>)> = None;
        for threads in [1usize, 2, 4] {
            let cfg = IFairConfig {
                n_threads: threads,
                ..minibatch_config(128, 600)
            };
            let mut obj = MiniBatchObjective::new(x.rows(), &toy_protected(), &cfg);
            let mut src = x.clone();
            let mut sample_rng = StdRng::seed_from_u64(7);
            obj.resample(&mut src, &mut sample_rng).unwrap();
            let theta = theta_at(obj.dim(), 31);
            let mut grad = vec![0.0; obj.dim()];
            let value = obj.value_and_gradient(&theta, &mut grad);
            let bits: Vec<u64> = grad.iter().map(|g| g.to_bits()).collect();
            match &reference {
                None => reference = Some((value.to_bits(), bits)),
                Some((v, g)) => {
                    assert_eq!(*v, value.to_bits(), "loss differs at {threads} threads");
                    assert_eq!(*g, bits, "gradient differs at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_never_leaks_state_across_evaluations() {
        // Consecutive evaluations on ONE objective reuse the workspace and
        // pool; results must be bit-identical to a fresh objective's.
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(3));
        let ta = theta_at(obj.dim(), 5);
        let tb = theta_at(obj.dim(), 6);
        let mut first = vec![0.0; obj.dim()];
        let va1 = obj.value_and_gradient(&ta, &mut first);
        // Interleave a different point, then come back.
        let mut scratch = vec![0.0; obj.dim()];
        obj.value_and_gradient(&tb, &mut scratch);
        obj.value(&tb);
        let mut second = vec![0.0; obj.dim()];
        let va2 = obj.value_and_gradient(&ta, &mut second);
        assert_eq!(va1.to_bits(), va2.to_bits());
        let first_bits: Vec<u64> = first.iter().map(|g| g.to_bits()).collect();
        let second_bits: Vec<u64> = second.iter().map(|g| g.to_bits()).collect();
        assert_eq!(first_bits, second_bits);
    }
}
