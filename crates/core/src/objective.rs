//! The iFair loss `L = λ·L_util + μ·L_fair` and its analytic gradient.
//!
//! The optimization variables are packed into a single flat vector
//!
//! ```text
//! θ = [ α_1 .. α_N | v_11 .. v_1N | v_21 .. v_2N | ... | v_K1 .. v_KN ]
//! ```
//!
//! of dimension `N·(K+1)`. The forward pass (Definitions 2-8 of the paper)
//! computes, for every record `x_i`,
//!
//! ```text
//! D_ik = dist(x_i, v_k)            (power sum or rooted Minkowski)
//! u_i  = softmax(-D_i·)            (probability vector, Definition 8)
//! x̃_i  = Σ_k u_ik · v_k            (transformed record, Definition 2)
//! ```
//!
//! and the loss of Definition 9. The backward pass propagates through the
//! reconstruction, the fairness pairs, the softmax, and the distance kernel —
//! all derived in closed form so training never needs the `O(dim)`-times-
//! costlier finite differences the reference implementation used
//! (`scipy.optimize.fmin_l_bfgs_b(..., approx_grad=True)`). The
//! finite-difference path is still available through
//! [`ifair_optim::NumericalObjective`] and is used in tests to validate every
//! branch of the analytic gradient.

use crate::config::{FairnessDistance, FairnessPairs, IFairConfig, SoftmaxDistance};
use crate::distance;
use crate::par;
use ifair_linalg::Matrix;
use ifair_optim::Objective;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Below this many fairness pairs the parallel kernel falls back to the
/// serial loop: the pair sweep is then so cheap that scoped-thread spawns
/// (O(10µs) each, once per L-BFGS iteration) would dominate.
const PAR_MIN_PAIRS: usize = 512;

/// Target number of fairness pairs per kernel chunk. The chunk layout is a
/// function of the pair count **only** — never the thread count — and the
/// per-chunk partials are folded in chunk order, so the loss and gradient
/// are bit-identical for every `n_threads` setting and on every machine
/// (seeded experiments stay reproducible; see `fair_chunk_layout`). The
/// target is kept small so that mid-size pair sets already split into
/// enough chunks to occupy every core.
const FAIR_CHUNK_PAIRS: usize = 512;

/// Upper bound on the chunk count, which also bounds the transient memory of
/// the parallel gradient path (each chunk owns an `M·N + N` accumulator
/// while its partial is alive).
const MAX_FAIR_CHUNKS: usize = 64;

/// A record pair entering the fairness loss, with its precomputed target
/// distance `d(x*_i, x*_j)` on the non-protected attributes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairPair {
    /// First record index.
    pub i: usize,
    /// Second record index.
    pub j: usize,
    /// Target distance in the masked input space.
    pub target: f64,
}

/// The iFair objective over a fixed training matrix.
///
/// Borrowing the data keeps restarts cheap: the pair list and target
/// distances are computed once and shared across all restarts.
pub struct IFairObjective<'a> {
    x: &'a Matrix,
    m: usize,
    n: usize,
    k: usize,
    p: f64,
    lambda: f64,
    mu: f64,
    softmax_distance: SoftmaxDistance,
    fairness_distance: FairnessDistance,
    pairs: Vec<FairPair>,
    n_threads: usize,
}

impl<'a> IFairObjective<'a> {
    /// Builds the objective for `x` (`M x N`) with per-column `protected`
    /// flags and the hyper-parameters in `config`.
    ///
    /// The fairness-pair set (exact / anchored / subsampled per
    /// `config.fairness_pairs`) is drawn here with `config.seed`, so the
    /// objective is deterministic across restarts.
    ///
    /// # Panics
    /// Panics if `protected.len() != x.cols()` — callers ([`crate::IFair`])
    /// validate shapes first.
    pub fn new(x: &'a Matrix, protected: &[bool], config: &IFairConfig) -> Self {
        let (m, n) = x.shape();
        assert_eq!(
            protected.len(),
            n,
            "protected flags must match the feature count"
        );
        let nonprotected: Vec<usize> = (0..n).filter(|&j| !protected[j]).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x1fa1_9a17);
        let pairs = build_pairs(x, &nonprotected, config.fairness_pairs, m, &mut rng);
        IFairObjective {
            x,
            m,
            n,
            k: config.k,
            p: config.p,
            lambda: config.lambda,
            mu: config.mu,
            softmax_distance: config.softmax_distance,
            fairness_distance: config.fairness_distance,
            pairs,
            n_threads: par::resolve_threads(config.n_threads),
        }
    }

    /// Overrides the worker-thread count of the pairwise `L_fair` kernel
    /// (`0` = all hardware threads). Used by the serial-vs-parallel parity
    /// tests and the kernel benchmarks.
    pub fn with_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = par::resolve_threads(n_threads);
        self
    }

    /// The worker-thread count the `L_fair` kernel will use.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// The fairness pairs (and target distances) this objective preserves.
    pub fn pairs(&self) -> &[FairPair] {
        &self.pairs
    }

    /// Number of records `M`.
    pub fn n_records(&self) -> usize {
        self.m
    }

    /// Splits the flat parameter vector into `(α, V)` views.
    fn unpack<'t>(&self, theta: &'t [f64]) -> (&'t [f64], &'t [f64]) {
        debug_assert_eq!(theta.len(), self.dim());
        theta.split_at(self.n)
    }

    /// Forward pass: distances `D` (`M x K`), responsibilities `U` (`M x K`)
    /// and reconstruction `X̃` (`M x N`), all as flat row-major buffers.
    fn forward(&self, alpha: &[f64], v: &[f64]) -> ForwardState {
        let (m, n, k) = (self.m, self.n, self.k);
        let mut dist = vec![0.0; m * k];
        let mut u = vec![0.0; m * k];
        let mut xt = vec![0.0; m * n];
        for i in 0..m {
            let xi = self.x.row(i);
            let d_row = &mut dist[i * k..(i + 1) * k];
            for (kk, d) in d_row.iter_mut().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                let s = power_sum(xi, vk, alpha, self.p);
                *d = match self.softmax_distance {
                    SoftmaxDistance::PowerSum => s,
                    SoftmaxDistance::Rooted => s.powf(1.0 / self.p),
                };
            }
            // Stable softmax of -D: shift by the smallest distance.
            let d_min = d_row.iter().cloned().fold(f64::INFINITY, f64::min);
            let u_row = &mut u[i * k..(i + 1) * k];
            let mut z = 0.0;
            for (uu, &d) in u_row.iter_mut().zip(d_row.iter()) {
                *uu = (d_min - d).exp();
                z += *uu;
            }
            for uu in u_row.iter_mut() {
                *uu /= z;
            }
            // x̃_i = Σ_k u_ik v_k.
            let xt_row = &mut xt[i * n..(i + 1) * n];
            for (kk, &uu) in u_row.iter().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                for (o, &vkn) in xt_row.iter_mut().zip(vk) {
                    *o += uu * vkn;
                }
            }
        }
        ForwardState { dist, u, xt }
    }

    /// Loss given a completed forward pass.
    fn loss(&self, alpha: &[f64], state: &ForwardState) -> f64 {
        let util = if self.lambda != 0.0 {
            self.x
                .as_slice()
                .iter()
                .zip(&state.xt)
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
        } else {
            0.0
        };
        let fair = if self.mu != 0.0 {
            self.fair_loss(alpha, state)
        } else {
            0.0
        };
        self.lambda * util + self.mu * fair
    }

    /// The fixed chunk layout of the pair index space. Depends only on the
    /// pair count, so the summation tree — and therefore every last bit of
    /// the loss and gradient — is invariant under the thread count and the
    /// host's core count.
    fn fair_chunk_layout(&self) -> Vec<Range<usize>> {
        let n_pairs = self.pairs.len();
        let n_chunks = n_pairs.div_ceil(FAIR_CHUNK_PAIRS).clamp(1, MAX_FAIR_CHUNKS);
        par::chunk_ranges(n_pairs, n_chunks)
    }

    /// Whether the pair sweep is worth fanning out over threads.
    fn fair_parallel(&self) -> bool {
        self.n_threads > 1 && self.pairs.len() >= PAR_MIN_PAIRS
    }

    /// `Σ_{(i,j)} (d(x̃_i, x̃_j) − d(x*_i, x*_j))²` — the raw `L_fair` sum
    /// (no `μ` factor), parallelized over the fixed pair chunks when the
    /// pair set is large enough. Partials are folded in chunk order on both
    /// paths, so serial and parallel results are bit-identical.
    fn fair_loss(&self, alpha: &[f64], state: &ForwardState) -> f64 {
        let chunks = self.fair_chunk_layout();
        let partials: Vec<f64> = if self.fair_parallel() {
            par::parallel_map_with_threads(chunks, self.n_threads, |range| {
                self.fair_loss_chunk(alpha, state, range)
            })
        } else {
            chunks
                .into_iter()
                .map(|range| self.fair_loss_chunk(alpha, state, range))
                .collect()
        };
        partials.into_iter().sum()
    }

    /// Serial `L_fair` sum over one contiguous chunk of the pair list.
    fn fair_loss_chunk(&self, alpha: &[f64], state: &ForwardState, range: Range<usize>) -> f64 {
        self.pairs[range]
            .iter()
            .map(|pair| {
                let e = self.transformed_distance(alpha, state, pair.i, pair.j) - pair.target;
                e * e
            })
            .sum()
    }

    /// Fused `L_fair` loss + gradient: returns the raw pair sum and
    /// accumulates `∂(μ·L_fair)/∂x̃` into `g_xt` (and `∂/∂α` into `g_alpha`
    /// under the weighted metric).
    ///
    /// Every chunk of the fixed layout owns a private `M·N + N` gradient
    /// accumulator; the partials are folded into `g_xt` / `g_alpha` in chunk
    /// order on both the serial and the threaded path, so the result is
    /// bit-identical for every thread count (at most [`MAX_FAIR_CHUNKS`]
    /// accumulators are alive at once on the threaded path).
    fn fair_loss_and_grad(
        &self,
        alpha: &[f64],
        state: &ForwardState,
        g_xt: &mut [f64],
        g_alpha: &mut [f64],
    ) -> f64 {
        let chunks = self.fair_chunk_layout();
        let (gx_len, ga_len) = (g_xt.len(), g_alpha.len());
        let chunk_grad = |range: Range<usize>| {
            let mut gx = vec![0.0; gx_len];
            let mut ga = vec![0.0; ga_len];
            let l = self.fair_grad_chunk(alpha, state, range, &mut gx, &mut ga);
            (l, gx, ga)
        };
        let mut loss = 0.0;
        if self.fair_parallel() {
            let partials = par::parallel_map_with_threads(chunks, self.n_threads, chunk_grad);
            for (l, gx, ga) in partials {
                loss += l;
                add_assign(g_xt, &gx);
                add_assign(g_alpha, &ga);
            }
        } else {
            // Same chunked fold as the threaded path (bit-identical), but
            // with one reused scratch accumulator instead of per-chunk
            // allocations.
            let mut gx = vec![0.0; gx_len];
            let mut ga = vec![0.0; ga_len];
            for range in chunks {
                gx.fill(0.0);
                ga.fill(0.0);
                loss += self.fair_grad_chunk(alpha, state, range, &mut gx, &mut ga);
                add_assign(g_xt, &gx);
                add_assign(g_alpha, &ga);
            }
        }
        loss
    }

    /// Serial fused loss + gradient over one contiguous chunk of the pair
    /// list. This is the single source of truth for the per-pair math; the
    /// parallel path is exactly this function over sub-ranges.
    fn fair_grad_chunk(
        &self,
        alpha: &[f64],
        state: &ForwardState,
        range: Range<usize>,
        g_xt: &mut [f64],
        g_alpha: &mut [f64],
    ) -> f64 {
        let (n, p) = (self.n, self.p);
        let mut loss = 0.0;
        for pair in &self.pairs[range] {
            let d = self.transformed_distance(alpha, state, pair.i, pair.j);
            let e = d - pair.target;
            loss += e * e;
            let coeff = 2.0 * self.mu * e;
            if coeff == 0.0 || d <= 0.0 {
                continue;
            }
            let (ri, rj) = (pair.i * n, pair.j * n);
            match self.fairness_distance {
                FairnessDistance::Unweighted => {
                    for idx in 0..n {
                        let delta = state.xt[ri + idx] - state.xt[rj + idx];
                        let g = coeff * delta / d;
                        g_xt[ri + idx] += g;
                        g_xt[rj + idx] -= g;
                    }
                }
                FairnessDistance::Weighted => {
                    for idx in 0..n {
                        let a = state.xt[ri + idx];
                        let b = state.xt[rj + idx];
                        // ∂d/∂a = -d_wrt_second(a, b) by symmetry of Δ.
                        let g = -coeff * distance::d_wrt_second(a, b, alpha[idx], p, d);
                        g_xt[ri + idx] += g;
                        g_xt[rj + idx] -= g;
                        if alpha[idx] >= 0.0 {
                            g_alpha[idx] += coeff * distance::d_wrt_alpha(a, b, p, d);
                        }
                    }
                }
            }
        }
        loss
    }

    /// Distance between transformed records `i` and `j` per the configured
    /// [`FairnessDistance`].
    fn transformed_distance(&self, alpha: &[f64], state: &ForwardState, i: usize, j: usize) -> f64 {
        let a = &state.xt[i * self.n..(i + 1) * self.n];
        let b = &state.xt[j * self.n..(j + 1) * self.n];
        match self.fairness_distance {
            FairnessDistance::Unweighted => distance::euclidean(a, b),
            FairnessDistance::Weighted => distance::weighted_minkowski(a, b, alpha, self.p),
        }
    }
}

/// Intermediate state shared between the loss and its gradient.
struct ForwardState {
    /// `M x K` record-to-prototype distances (power sum or rooted).
    dist: Vec<f64>,
    /// `M x K` softmax responsibilities.
    u: Vec<f64>,
    /// `M x N` reconstruction `U · V`.
    xt: Vec<f64>,
}

impl Objective for IFairObjective<'_> {
    fn dim(&self) -> usize {
        self.n * (self.k + 1)
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let (alpha, v) = self.unpack(theta);
        let state = self.forward(alpha, v);
        self.loss(alpha, &state)
    }

    fn gradient(&self, theta: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(theta, grad);
    }

    fn value_and_gradient(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let (m, n, k, p) = (self.m, self.n, self.k, self.p);
        let (alpha, v) = self.unpack(theta);
        let state = self.forward(alpha, v);

        grad.fill(0.0);
        let (g_alpha, g_v) = grad.split_at_mut(n);

        // ∂L/∂x̃ — reconstruction term, fused with the utility loss.
        let mut util = 0.0;
        let mut g_xt = vec![0.0; m * n];
        if self.lambda != 0.0 {
            for ((g, &orig), &rec) in g_xt.iter_mut().zip(self.x.as_slice()).zip(&state.xt) {
                let diff = rec - orig;
                util += diff * diff;
                *g = 2.0 * self.lambda * diff;
            }
        }

        // ∂L/∂x̃ (and ∂L/∂α under the weighted metric) — fairness pairs,
        // fused with the pair loss and parallelized over pair chunks.
        let fair = if self.mu != 0.0 {
            self.fair_loss_and_grad(alpha, &state, &mut g_xt, g_alpha)
        } else {
            0.0
        };
        let loss = self.lambda * util + self.mu * fair;

        // Backprop through x̃ = U·V and the softmax into V, D, and α.
        for i in 0..m {
            let xi = self.x.row(i);
            let gx_row = &g_xt[i * n..(i + 1) * n];
            let u_row = &state.u[i * k..(i + 1) * k];
            let d_row = &state.dist[i * k..(i + 1) * k];

            // c_k = ⟨∂L/∂x̃_i, v_k⟩ and the softmax Jacobian product
            // b_k = ∂L/∂z_ik = u_k (c_k − Σ_j u_j c_j), with z = −D.
            let mut c = vec![0.0; k];
            let mut c_dot_u = 0.0;
            for (kk, ck) in c.iter_mut().enumerate() {
                let vk = &v[kk * n..(kk + 1) * n];
                *ck = dot(gx_row, vk);
                c_dot_u += u_row[kk] * *ck;
            }

            for kk in 0..k {
                let uk = u_row[kk];
                let b_k = uk * (c[kk] - c_dot_u);
                let vk = &v[kk * n..(kk + 1) * n];
                let gv_row = &mut g_v[kk * n..(kk + 1) * n];
                // Direct path: ∂x̃_in/∂v_kn = u_ik.
                for (gv, &gx) in gv_row.iter_mut().zip(gx_row) {
                    *gv += uk * gx;
                }
                // Distance path: ∂L/∂D_ik = −b_k.
                let gd = -b_k;
                if gd == 0.0 {
                    continue;
                }
                match self.softmax_distance {
                    SoftmaxDistance::PowerSum => {
                        for idx in 0..n {
                            let delta = xi[idx] - vk[idx];
                            // ∂S/∂v_n = −α_n p |Δ|^{p−1} sign(Δ)
                            gv_row[idx] +=
                                gd * (-alpha[idx].max(0.0) * p * pow_abs_signed(delta, p - 1.0));
                            if alpha[idx] >= 0.0 {
                                g_alpha[idx] += gd * pow_abs(delta, p);
                            }
                        }
                    }
                    SoftmaxDistance::Rooted => {
                        let d = d_row[kk];
                        for idx in 0..n {
                            gv_row[idx] +=
                                gd * distance::d_wrt_second(xi[idx], vk[idx], alpha[idx], p, d);
                            if alpha[idx] >= 0.0 {
                                g_alpha[idx] += gd * distance::d_wrt_alpha(xi[idx], vk[idx], p, d);
                            }
                        }
                    }
                }
            }
        }

        loss
    }
}

/// `Σ_n α_n |x_n − y_n|^p` with non-negativity clamping on `α`, specialized
/// for the common `p = 2` (the Gaussian kernel of the paper).
#[inline]
fn power_sum(x: &[f64], y: &[f64], alpha: &[f64], p: f64) -> f64 {
    if p == 2.0 {
        x.iter()
            .zip(y)
            .zip(alpha)
            .map(|((&a, &b), &w)| {
                let d = a - b;
                w.max(0.0) * d * d
            })
            .sum()
    } else {
        distance::weighted_power_sum(x, y, alpha, p)
    }
}

/// `|Δ|^q` with a fast path for `q = 2`.
#[inline]
fn pow_abs(delta: f64, q: f64) -> f64 {
    if q == 2.0 {
        delta * delta
    } else {
        delta.abs().powf(q)
    }
}

/// `|Δ|^q · sign(Δ)` with a fast path for `q = 1`.
#[inline]
fn pow_abs_signed(delta: f64, q: f64) -> f64 {
    if q == 1.0 {
        delta
    } else if delta == 0.0 {
        0.0
    } else {
        delta.abs().powf(q) * delta.signum()
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `acc += part`, element-wise. The reduction step of the parallel kernel.
#[inline]
fn add_assign(acc: &mut [f64], part: &[f64]) {
    debug_assert_eq!(acc.len(), part.len());
    for (a, &p) in acc.iter_mut().zip(part) {
        *a += p;
    }
}

/// Materializes the fairness-pair set with target distances measured by the
/// unweighted Euclidean metric on the non-protected columns (Definition 5's
/// `d(x*_i, x*_j)`).
fn build_pairs(
    x: &Matrix,
    nonprotected: &[usize],
    spec: FairnessPairs,
    m: usize,
    rng: &mut StdRng,
) -> Vec<FairPair> {
    let target = |i: usize, j: usize| -> f64 {
        let (a, b) = (x.row(i), x.row(j));
        nonprotected
            .iter()
            .map(|&col| {
                let d = a[col] - b[col];
                d * d
            })
            .sum::<f64>()
            .sqrt()
    };
    match spec {
        FairnessPairs::Exact => {
            let mut pairs = Vec::with_capacity(m * m.saturating_sub(1) / 2);
            for i in 0..m {
                for j in (i + 1)..m {
                    pairs.push(FairPair {
                        i,
                        j,
                        target: target(i, j),
                    });
                }
            }
            pairs
        }
        FairnessPairs::Anchored { n_anchors } => {
            let n_anchors = n_anchors.min(m);
            let mut anchors: Vec<usize> = (0..m).collect();
            anchors.shuffle(rng);
            anchors.truncate(n_anchors);
            anchors.sort_unstable();
            let mut pairs = Vec::with_capacity(m * n_anchors);
            for i in 0..m {
                for &a in &anchors {
                    if a == i {
                        continue;
                    }
                    let (lo, hi) = (i.min(a), i.max(a));
                    pairs.push(FairPair {
                        i: lo,
                        j: hi,
                        target: target(lo, hi),
                    });
                }
            }
            // Anchor-anchor pairs appear twice (once from each side); records
            // must not be double-counted or their gradient doubles.
            pairs.sort_unstable_by_key(|p| (p.i, p.j));
            pairs.dedup_by_key(|p| (p.i, p.j));
            pairs
        }
        FairnessPairs::Subsampled { n_pairs } => {
            let total = m * m.saturating_sub(1) / 2;
            let n_pairs = n_pairs.min(total);
            if n_pairs == 0 {
                return Vec::new();
            }
            // Sample distinct unordered pairs by rejection; the pair count in
            // practice is far below `total` so collisions are rare.
            let mut seen = std::collections::HashSet::with_capacity(n_pairs);
            let mut pairs = Vec::with_capacity(n_pairs);
            while pairs.len() < n_pairs {
                let i = rng.gen_range(0..m);
                let j = rng.gen_range(0..m);
                if i == j {
                    continue;
                }
                let (lo, hi) = (i.min(j), i.max(j));
                if seen.insert((lo, hi)) {
                    pairs.push(FairPair {
                        i: lo,
                        j: hi,
                        target: target(lo, hi),
                    });
                }
            }
            pairs.sort_unstable_by_key(|p| (p.i, p.j));
            pairs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InitStrategy;
    use ifair_optim::numgrad::check_gradient;

    fn toy_matrix() -> Matrix {
        // 6 records x 4 attributes, values in general position so p=3
        // derivatives are smooth (no coincident coordinates).
        Matrix::from_rows(vec![
            vec![0.91, 0.20, 0.37, 1.00],
            vec![0.83, 0.31, 0.55, 0.00],
            vec![0.22, 0.87, 0.14, 1.00],
            vec![0.11, 0.93, 0.72, 0.00],
            vec![0.52, 0.48, 0.90, 1.00],
            vec![0.43, 0.64, 0.08, 0.00],
        ])
        .unwrap()
    }

    fn toy_protected() -> Vec<bool> {
        vec![false, false, false, true]
    }

    fn theta_at(dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..dim).map(|_| rng.gen_range(0.05..0.95)).collect()
    }

    fn config(k: usize) -> IFairConfig {
        IFairConfig {
            k,
            lambda: 0.7,
            mu: 1.3,
            init: InitStrategy::RandomUniform,
            ..Default::default()
        }
    }

    #[test]
    fn dim_counts_alpha_and_prototypes() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(3));
        assert_eq!(obj.dim(), 4 * (3 + 1));
    }

    #[test]
    fn exact_pairs_cover_all_unordered_pairs() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(2));
        assert_eq!(obj.pairs().len(), 6 * 5 / 2);
        for pair in obj.pairs() {
            assert!(pair.i < pair.j);
            assert!(pair.target >= 0.0);
        }
    }

    #[test]
    fn pair_targets_ignore_protected_columns() {
        // Records 0 and 2 of this matrix differ only in the protected column.
        let x = Matrix::from_rows(vec![
            vec![0.5, 0.5, 1.0],
            vec![0.9, 0.1, 0.0],
            vec![0.5, 0.5, 0.0],
        ])
        .unwrap();
        let obj = IFairObjective::new(&x, &[false, false, true], &config(2));
        let pair02 = obj
            .pairs()
            .iter()
            .find(|p| p.i == 0 && p.j == 2)
            .expect("pair (0,2) present");
        assert!(pair02.target.abs() < 1e-12);
    }

    #[test]
    fn anchored_pairs_bounded_and_unique() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Anchored { n_anchors: 2 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        let pairs = obj.pairs();
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 2 * 6);
        let mut keys: Vec<(usize, usize)> = pairs.iter().map(|p| (p.i, p.j)).collect();
        keys.dedup();
        assert_eq!(keys.len(), pairs.len(), "anchored pairs must be distinct");
    }

    #[test]
    fn subsampled_pairs_exact_count() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 7 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        assert_eq!(obj.pairs().len(), 7);
        // Requesting more pairs than exist clamps to the total.
        let cfg = IFairConfig {
            fairness_pairs: FairnessPairs::Subsampled { n_pairs: 10_000 },
            ..config(2)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        assert_eq!(obj.pairs().len(), 15);
    }

    #[test]
    fn pure_utility_loss_matches_manual_reconstruction_error() {
        let x = toy_matrix();
        let cfg = IFairConfig {
            lambda: 1.0,
            mu: 0.0,
            ..config(3)
        };
        let obj = IFairObjective::new(&x, &toy_protected(), &cfg);
        let theta = theta_at(obj.dim(), 7);
        let (alpha, v) = obj.unpack(&theta);
        let state = obj.forward(alpha, v);
        let manual: f64 = x
            .as_slice()
            .iter()
            .zip(&state.xt)
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        assert!((obj.value(&theta) - manual).abs() < 1e-12);
    }

    #[test]
    fn responsibilities_form_probability_distributions() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(4));
        let theta = theta_at(obj.dim(), 3);
        let (alpha, v) = obj.unpack(&theta);
        let state = obj.forward(alpha, v);
        for i in 0..6 {
            let row = &state.u[i * 4..(i + 1) * 4];
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            assert!(row.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn softmax_survives_huge_distances() {
        // Prototype far away => exp(-1e6) underflows without max-shifting.
        let x = Matrix::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let cfg = IFairConfig { k: 2, ..config(2) };
        let obj = IFairObjective::new(&x, &[false, false], &cfg);
        let theta = vec![1.0, 1.0, 1e3, 1e3, 2e3, 2e3];
        let value = obj.value(&theta);
        assert!(value.is_finite());
        let mut grad = vec![0.0; theta.len()];
        let v = obj.value_and_gradient(&theta, &mut grad);
        assert!(v.is_finite());
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    /// Exercises the analytic gradient against central differences for every
    /// combination of kernels, fairness distances and pair sets.
    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let x = toy_matrix();
        let protected = toy_protected();
        for softmax_distance in [SoftmaxDistance::PowerSum, SoftmaxDistance::Rooted] {
            for fairness_distance in [FairnessDistance::Unweighted, FairnessDistance::Weighted] {
                for p in [2.0, 3.0] {
                    for pairs in [
                        FairnessPairs::Exact,
                        FairnessPairs::Anchored { n_anchors: 3 },
                        FairnessPairs::Subsampled { n_pairs: 5 },
                    ] {
                        let cfg = IFairConfig {
                            p,
                            softmax_distance,
                            fairness_distance,
                            fairness_pairs: pairs,
                            ..config(3)
                        };
                        let obj = IFairObjective::new(&x, &protected, &cfg);
                        let theta = theta_at(obj.dim(), 11);
                        let report = check_gradient(&obj, &theta, 1e-6);
                        assert!(
                            report.passes(2e-5),
                            "sm={softmax_distance:?} fd={fairness_distance:?} p={p} \
                             pairs={pairs:?}: {report:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gradient_matches_for_pure_losses() {
        let x = toy_matrix();
        let protected = toy_protected();
        for (lambda, mu) in [(1.0, 0.0), (0.0, 1.0)] {
            let cfg = IFairConfig {
                lambda,
                mu,
                ..config(2)
            };
            let obj = IFairObjective::new(&x, &protected, &cfg);
            let theta = theta_at(obj.dim(), 23);
            let report = check_gradient(&obj, &theta, 1e-6);
            assert!(report.passes(2e-5), "λ={lambda} μ={mu}: {report:?}");
        }
    }

    #[test]
    fn value_and_gradient_agree_with_value() {
        let x = toy_matrix();
        let obj = IFairObjective::new(&x, &toy_protected(), &config(3));
        let theta = theta_at(obj.dim(), 5);
        let mut grad = vec![0.0; obj.dim()];
        let v1 = obj.value_and_gradient(&theta, &mut grad);
        let v2 = obj.value(&theta);
        assert!((v1 - v2).abs() < 1e-12);
    }
}
