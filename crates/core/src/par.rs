//! Scoped-thread parallel primitives shared across the workspace.
//!
//! Two consumers drive the design:
//!
//! * the `O(M²)` pairwise `L_fair` kernel in [`crate::objective`], which
//!   carves the pair index space into fixed chunks ([`chunk_ranges`]) and
//!   fans them out with [`parallel_map_with_threads`], folding the per-chunk
//!   partials in chunk order so results are thread-count-invariant,
//! * the experiment grid searches in `ifair-bench`, which need an
//!   *order-preserving parallel map* over independent jobs that may borrow
//!   prepared data ([`parallel_map`]).
//!
//! Everything is built on [`std::thread::scope`], so closures can borrow from
//! the caller's stack and no external runtime is required. On a single
//! hardware thread the helpers degrade to plain sequential execution with no
//! thread spawns.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads, falling back to 1 when detection fails.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count setting: `0` means "use all hardware
/// threads", anything else is taken literally (it may exceed the core count,
/// which is useful for determinism tests).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `0..n` into `n_chunks` contiguous ranges whose lengths differ by at
/// most one. Empty ranges are omitted, so fewer than `n_chunks` ranges are
/// returned when `n < n_chunks`.
pub fn chunk_ranges(n: usize, n_chunks: usize) -> Vec<Range<usize>> {
    let n_chunks = n_chunks.max(1);
    let base = n / n_chunks;
    let extra = n % n_chunks;
    let mut out = Vec::with_capacity(n_chunks.min(n));
    let mut start = 0;
    for c in 0..n_chunks {
        let len = base + usize::from(c < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Applies `f` to every item, in parallel, preserving input order.
///
/// Jobs are pulled from a shared atomic cursor, so threads that finish early
/// steal remaining work — the right shape for experiment grids whose cells
/// have wildly different costs. The closure may borrow from the caller
/// (scoped threads impose no `'static` bound).
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with_threads(items, available_threads(), f)
}

/// [`parallel_map`] with an explicit worker-thread count.
///
/// Because the output order is the input order regardless of scheduling, the
/// result is **independent of `n_threads`** — callers that fold the results
/// in order get thread-count-invariant (and machine-invariant) numerics.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, n_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n_threads = n_threads.max(1).min(items.len().max(1));
    if n_threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = jobs[idx]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("each job taken once");
                *results[idx].lock().expect("result slot poisoned") = Some(f(item));
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for n in [0usize, 1, 7, 100] {
            for t in [1usize, 2, 3, 8, 200] {
                let chunks = chunk_ranges(n, t);
                let mut covered = vec![0u32; n];
                for r in &chunks {
                    for i in r.clone() {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "n={n} t={t}");
                // Balanced: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    chunks.iter().map(|r| r.len()).min(),
                    chunks.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} t={t}");
                }
            }
        }
    }

    #[test]
    fn chunked_fold_is_thread_count_invariant() {
        // The L_fair kernel's shape: fixed chunks, ordered fold. The result
        // must not depend on how many workers computed the chunk partials.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let chunks = chunk_ranges(data.len(), 16);
        let reference: f64 = chunks
            .iter()
            .map(|r| data[r.clone()].iter().sum::<f64>())
            .sum();
        for t in [1, 2, 3, 4, 7] {
            let partials =
                parallel_map_with_threads(chunks.clone(), t, |r| data[r].iter().sum::<f64>());
            let total: f64 = partials.into_iter().sum();
            assert_eq!(total.to_bits(), reference.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, |i: usize| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn parallel_map_closures_can_borrow() {
        let base = vec![10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], |i| base[i]);
        assert_eq!(out, base);
    }
}
