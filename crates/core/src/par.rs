//! Persistent worker-pool parallel primitives shared across the workspace.
//!
//! The centerpiece is [`WorkerPool`]: a set of long-lived worker threads,
//! created once and fed batches over channels, so the training hot loops pay
//! a channel send (~hundreds of nanoseconds) per parallel section instead of
//! a `std::thread::scope` spawn (~10µs × threads) per objective evaluation.
//! Three consumers drive the design:
//!
//! * the per-record forward/backward passes and the `O(M²)` pairwise
//!   `L_fair` kernel in [`crate::objective`], which carve their index spaces
//!   into **fixed** chunks ([`chunk_ranges`]) — a function of the problem
//!   size only, never the thread count — and fold the per-chunk partials in
//!   chunk order, so every result is bit-identical for any `n_threads`,
//! * the experiment grid searches in `ifair-bench`, which need an
//!   *order-preserving parallel map* over independent jobs of wildly
//!   different cost ([`parallel_map`], on a process-wide [`shared_pool`]).
//!
//! # Pool architecture
//!
//! A pool of `n` lanes owns `n - 1` persistent threads; the calling thread
//! is always the last lane, so `WorkerPool::new(1)` spawns nothing and every
//! primitive degrades to plain sequential execution. [`WorkerPool::broadcast`]
//! hands one shared closure to every lane and blocks on a latch until all
//! lanes finish; the closure is guaranteed to have run its last call **and
//! its drop glue** before the call returns — that barrier is what makes it
//! sound for jobs to borrow from the caller's stack even though the workers
//! are `'static` threads (the lifetime is erased in exactly one place, see
//! `broadcast_lanes`).
//! [`WorkerPool::map`] builds on it: items are handed out in order from a
//! single shared cursor (work stealing, for uneven jobs), results are
//! reassembled in input order, so the output never depends on scheduling.
//!
//! Worker panics are caught, the latch is still released, and the panic is
//! re-raised on the caller — a poisoned batch can never leave a borrowed
//! buffer in use after `broadcast` returns. A pool is **not** re-entrant by
//! design, but nested use degrades gracefully: a `broadcast` issued *from* a
//! pool's own worker runs the batch inline on that worker instead of
//! deadlocking on its own queue.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{JoinHandle, ThreadId};

/// Number of hardware threads, falling back to 1 when detection fails.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count setting: `0` means "use all hardware
/// threads", anything else is taken literally (it may exceed the core count,
/// which is useful for determinism tests).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Splits `0..n` into `n_chunks` contiguous ranges whose lengths differ by at
/// most one. Empty ranges are omitted, so fewer than `n_chunks` ranges are
/// returned when `n < n_chunks`.
pub fn chunk_ranges(n: usize, n_chunks: usize) -> Vec<Range<usize>> {
    let n_chunks = n_chunks.max(1);
    let base = n / n_chunks;
    let extra = n % n_chunks;
    let mut out = Vec::with_capacity(n_chunks.min(n));
    let mut start = 0;
    for c in 0..n_chunks {
        let len = base + usize::from(c < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The closure every lane of a batch runs, lifetime-erased to `'static` so
/// it can travel through the worker channels (see `WorkerPool::broadcast`
/// for the soundness argument).
type BatchBody = Box<dyn Fn(usize) + Send + Sync + 'static>;

/// The barrier a batch's caller blocks on until every lane is done. Kept
/// **outside** [`Batch`] (its own `Arc`) so a worker can drop its batch
/// handle — and with it any claim on the lifetime-erased body — strictly
/// before signalling; see the ordering argument in `broadcast_lanes`.
struct Latch {
    /// Lanes that have not yet arrived.
    pending: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    /// Marks one lane done, waking the waiter when it is the last.
    fn arrive(&self) {
        let mut pending = self.pending.lock().expect("batch latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every lane has arrived.
    fn wait(&self) {
        let mut pending = self.pending.lock().expect("batch latch poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("batch latch poisoned");
        }
    }
}

/// One unit of work fanned out to the lanes of a batch.
struct Batch {
    body: BatchBody,
    latch: Arc<Latch>,
    /// The first panic payload raised by any lane's body; resumed on the
    /// caller after the barrier, so original messages and locations survive
    /// the trip through the pool.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    /// Runs the batch body for `lane`, trapping panics (an unwinding lane
    /// must still arrive at the latch, or the caller would deadlock and,
    /// worse, borrowed buffers could escape the `broadcast` barrier).
    ///
    /// Deliberately does NOT signal the latch: workers must drop their
    /// `Arc<Batch>` first and only then arrive, so the caller provably
    /// holds the last batch handle once its wait returns.
    fn run_lane(&self, lane: usize) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(lane))) {
            let mut slot = self.panic_payload.lock().expect("panic slot poisoned");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// A persistent, deterministic worker pool (see the module docs).
///
/// Threads are created once, in [`WorkerPool::new`], and live until the pool
/// is dropped; every parallel section afterwards costs only channel sends
/// and a latch wait. Determinism is the caller's contract — the pool's
/// [`WorkerPool::map`] preserves input order, so chunk layouts computed with
/// [`chunk_ranges`] and folded in order give bit-identical results for every
/// pool size.
pub struct WorkerPool {
    lanes: usize,
    senders: Vec<Sender<Arc<Batch>>>,
    handles: Vec<JoinHandle<()>>,
    worker_ids: Vec<ThreadId>,
}

impl WorkerPool {
    /// Creates a pool with `n_threads` lanes (clamped to at least 1),
    /// spawning `n_threads - 1` persistent worker threads — the calling
    /// thread always acts as the last lane, so a 1-lane pool spawns nothing
    /// and runs everything inline.
    pub fn new(n_threads: usize) -> WorkerPool {
        let lanes = n_threads.max(1);
        let mut senders = Vec::with_capacity(lanes - 1);
        let mut handles = Vec::with_capacity(lanes - 1);
        for lane in 0..lanes - 1 {
            let (tx, rx) = channel::<Arc<Batch>>();
            let handle = std::thread::Builder::new()
                .name(format!("ifair-pool-{lane}"))
                .spawn(move || {
                    // Exits when the pool drops its senders.
                    while let Ok(batch) = rx.recv() {
                        let latch = Arc::clone(&batch.latch);
                        batch.run_lane(lane);
                        // Release our claim on the batch (and its
                        // lifetime-erased body) BEFORE signalling: the
                        // caller frees the body's borrows as soon as the
                        // latch opens.
                        drop(batch);
                        latch.arrive();
                    }
                })
                .expect("spawning a worker-pool thread");
            senders.push(tx);
            handles.push(handle);
        }
        let worker_ids = handles.iter().map(|h| h.thread().id()).collect();
        WorkerPool {
            lanes,
            senders,
            handles,
            worker_ids,
        }
    }

    /// Number of lanes (the `n_threads` this pool was created with).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `body(lane)` once for every lane `0..lanes()`, in parallel,
    /// blocking until **all** lanes have finished. A panic in any lane is
    /// resumed here after the barrier, original payload intact.
    ///
    /// This is the pool's only dispatch primitive; everything else is built
    /// on it. The closure may borrow from the caller's stack: the barrier
    /// guarantees no lane outlives this call.
    pub fn broadcast<'env, F>(&self, body: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        self.broadcast_lanes(self.lanes, body);
    }

    /// [`WorkerPool::broadcast`] over the first `lanes_used` lanes only
    /// (clamped to `1..=lanes()`), so batches with fewer jobs than lanes
    /// don't wake — and then wait on — workers that would only run an empty
    /// body.
    fn broadcast_lanes<'env, F>(&self, lanes_used: usize, body: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        let lanes_used = lanes_used.clamp(1, self.lanes);
        if lanes_used <= 1 || self.worker_ids.contains(&std::thread::current().id()) {
            // Single lane, or a nested broadcast issued from one of this
            // pool's own workers (which could never drain its own queue):
            // run every lane inline. Results are identical by construction.
            for lane in 0..lanes_used {
                body(lane);
            }
            return;
        }

        let body: Box<dyn Fn(usize) + Send + Sync + 'env> = Box::new(body);
        // SAFETY: `Batch` requires a `'static` body because the worker
        // threads outlive this call, but the body neither runs nor drops
        // past it:
        //
        // * runs — the latch wait below is unconditional (lane panics are
        //   trapped in `run_lane`, including the caller's own lane, and the
        //   workers still arrive), so this function cannot return until
        //   every lane has finished running `body`;
        // * drops — every worker drops its `Arc<Batch>` BEFORE arriving at
        //   the latch (see the worker loop), and the latch mutex orders
        //   those drops before the caller's wake-up, so after `wait()` the
        //   caller holds the only remaining handle and the body's drop glue
        //   runs here, on this stack frame (`Arc::into_inner` below both
        //   relies on and asserts that uniqueness).
        //
        // No reference captured by `body` is therefore ever used — by call
        // or by drop — after its lifetime `'env` ends.
        #[allow(unsafe_code)]
        let body: BatchBody = unsafe {
            std::mem::transmute::<Box<dyn Fn(usize) + Send + Sync + 'env>, BatchBody>(body)
        };
        let latch = Arc::new(Latch {
            pending: Mutex::new(lanes_used),
            done: Condvar::new(),
        });
        let batch = Arc::new(Batch {
            body,
            latch: Arc::clone(&latch),
            panic_payload: Mutex::new(None),
        });
        // Worker `w` always runs lane `w`; the caller takes the last lane.
        for tx in &self.senders[..lanes_used - 1] {
            if tx.send(Arc::clone(&batch)).is_err() {
                // A worker thread died (unreachable today — the worker loop
                // cannot panic — but any future edit could change that).
                // Unwinding here would skip the latch wait and free borrows
                // that already-dispatched lanes may still be using, turning
                // a dead worker into use-after-free; there is no safe
                // recovery, so fail without unwinding.
                eprintln!("ifair worker pool: a worker thread died mid-dispatch; aborting");
                std::process::abort();
            }
        }
        batch.run_lane(lanes_used - 1);
        latch.arrive();
        latch.wait();
        let Batch {
            body,
            latch: _,
            panic_payload,
        } = Arc::into_inner(batch).expect("workers drop their batch handle before arriving");
        // The erased body's drop glue runs here, inside `'env`.
        drop(body);
        if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
            resume_unwind(payload);
        }
    }

    /// Applies `f` to every item, in parallel on this pool, preserving input
    /// order.
    ///
    /// Items are handed out one at a time from a single shared cursor, so
    /// lanes that finish early steal remaining work — the right shape for
    /// jobs of uneven cost — while each lane collects `(index, result)`
    /// pairs that are reassembled in input order afterwards. The output is
    /// therefore **independent of the pool size and of scheduling**; callers
    /// that fold the results in order get thread-count-invariant numerics.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Send + Sync,
    {
        if self.lanes <= 1 || items.len() <= 1 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        // No point waking more lanes than there are items.
        let lanes_used = self.lanes.min(n);
        let queue = Mutex::new(items.into_iter().enumerate());
        let buckets: Vec<Mutex<Vec<(usize, R)>>> =
            (0..lanes_used).map(|_| Mutex::new(Vec::new())).collect();
        self.broadcast_lanes(lanes_used, |lane| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                // The guard drops before `f` runs, so a panicking job
                // cannot poison the queue for the other lanes.
                let job = queue.lock().expect("job queue poisoned").next();
                match job {
                    Some((idx, item)) => local.push((idx, f(item))),
                    None => break,
                }
            }
            *buckets[lane].lock().expect("result bucket poisoned") = local;
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for bucket in buckets {
            for (idx, r) in bucket.into_inner().expect("result bucket poisoned") {
                slots[idx] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every job completed"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels is the shutdown signal; then reap.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs `jobs` through `pool` when one is available, serially otherwise.
///
/// This keeps serial and parallel callers on literally the same job
/// construction and fold code: a caller that builds fixed chunk jobs and
/// folds the returned partials in order gets bit-identical results whether
/// `pool` is `None`, a 1-lane pool, or a 64-lane pool.
pub fn pool_map<T, R, F>(pool: Option<&WorkerPool>, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    match pool {
        Some(pool) => pool.map(jobs, f),
        None => jobs.into_iter().map(f).collect(),
    }
}

/// The process-wide shared pool, sized to the hardware thread count and
/// created lazily on first use. Grid searches and other coarse one-shot
/// fan-outs should use this instead of spawning private pools.
pub fn shared_pool() -> &'static WorkerPool {
    static SHARED: OnceLock<WorkerPool> = OnceLock::new();
    SHARED.get_or_init(|| WorkerPool::new(available_threads()))
}

/// Applies `f` to every item, in parallel on the [`shared_pool`], preserving
/// input order. See [`WorkerPool::map`] for the scheduling contract.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    shared_pool().map(items, f)
}

/// [`parallel_map`] on a transient pool with an explicit lane count.
///
/// This spawns (and joins) `n_threads - 1` threads per call, so it is for
/// one-off fan-outs and determinism tests — hot loops should hold a
/// [`WorkerPool`] and call [`WorkerPool::map`] on it instead.
pub fn parallel_map_with_threads<T, R, F>(items: Vec<T>, n_threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    if n_threads.max(1) <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    // No point spawning more lanes than there are items.
    WorkerPool::new(n_threads.min(items.len())).map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for n in [0usize, 1, 7, 100] {
            for t in [1usize, 2, 3, 8, 200] {
                let chunks = chunk_ranges(n, t);
                let mut covered = vec![0u32; n];
                for r in &chunks {
                    for i in r.clone() {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "n={n} t={t}");
                // Balanced: lengths differ by at most one.
                if let (Some(min), Some(max)) = (
                    chunks.iter().map(|r| r.len()).min(),
                    chunks.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1, "n={n} t={t}");
                }
            }
        }
    }

    #[test]
    fn chunked_fold_is_thread_count_invariant() {
        // The kernel shape: fixed chunks, ordered fold. The result must not
        // depend on how many lanes computed the chunk partials.
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let chunks = chunk_ranges(data.len(), 16);
        let reference: f64 = chunks
            .iter()
            .map(|r| data[r.clone()].iter().sum::<f64>())
            .sum();
        for t in [1, 2, 3, 4, 7] {
            let partials =
                parallel_map_with_threads(chunks.clone(), t, |r| data[r].iter().sum::<f64>());
            let total: f64 = partials.into_iter().sum();
            assert_eq!(total.to_bits(), reference.to_bits(), "threads={t}");
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        // The whole point of the persistent pool: many dispatches, one set
        // of threads. Mix broadcast and map batches on one pool.
        let pool = WorkerPool::new(4);
        assert_eq!(pool.lanes(), 4);
        for round in 0..50u64 {
            let out = pool.map((0..97u64).collect(), |i| i * i + round);
            assert_eq!(out, (0..97u64).map(|i| i * i + round).collect::<Vec<_>>());
        }
        let hits = Mutex::new(vec![0u32; 4]);
        pool.broadcast(|lane| hits.lock().unwrap()[lane] += 1);
        assert_eq!(*hits.lock().unwrap(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn map_preserves_order_at_every_lane_count() {
        for lanes in [1usize, 2, 3, 8] {
            let pool = WorkerPool::new(lanes);
            let out = pool.map((0..100).collect(), |i: usize| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>(), "{lanes}");
        }
    }

    #[test]
    fn map_jobs_may_carry_mutable_borrows() {
        // The objective's forward/backward jobs own disjoint `&mut` slices
        // of one caller-side buffer; the barrier makes that sound.
        let mut buf = vec![0.0f64; 12];
        let pool = WorkerPool::new(3);
        let jobs: Vec<(usize, &mut [f64])> = buf.chunks_mut(4).enumerate().collect();
        pool.map(jobs, |(idx, chunk)| {
            for (o, v) in chunk.iter_mut().enumerate() {
                *v = (idx * 4 + o) as f64;
            }
        });
        assert_eq!(buf, (0..12).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_after_the_barrier() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..32).collect(), |i: usize| {
                assert!(i != 17, "boom at {i}");
                i
            })
        }));
        // The original payload survives the trip through the pool.
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_default();
        assert!(msg.contains("boom at 17"), "payload lost: {msg:?}");
        // The pool survives a poisoned batch and keeps serving.
        let out = pool.map(vec![1, 2, 3], |i: i32| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn batch_body_drops_before_broadcast_returns() {
        // A guard whose Drop writes through a borrow of caller-stack data:
        // the body's drop glue must run inside `broadcast` (the soundness
        // contract of the lifetime erasure), never later on a worker.
        struct DropProbe<'a>(&'a Mutex<bool>);
        impl Drop for DropProbe<'_> {
            fn drop(&mut self) {
                *self.0.lock().unwrap() = true;
            }
        }
        let pool = WorkerPool::new(4);
        for _ in 0..100 {
            let dropped = Mutex::new(false);
            let probe = DropProbe(&dropped);
            pool.broadcast(move |_lane| {
                let _keep = &probe;
            });
            assert!(*dropped.lock().unwrap(), "body dropped after broadcast");
        }
    }

    #[test]
    fn nested_use_degrades_to_inline_execution() {
        // A map dispatched from inside one of the pool's own workers must
        // not deadlock on its own queue.
        let pool = WorkerPool::new(2);
        let out = pool.map(vec![0usize, 1], |i| {
            let inner: usize = pool.map(vec![10usize, 20], |j| j + i).into_iter().sum();
            inner
        });
        assert_eq!(out, vec![30, 32]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, |i: usize| i).is_empty());
        assert_eq!(parallel_map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn parallel_map_closures_can_borrow() {
        let base = vec![10, 20, 30];
        let out = parallel_map(vec![0usize, 1, 2], |i| base[i]);
        assert_eq!(out, base);
    }

    #[test]
    fn pool_map_serial_and_pooled_agree() {
        let pool = WorkerPool::new(3);
        let serial = pool_map(None, (0..40).collect(), |i: u64| (i as f64).sqrt());
        let pooled = pool_map(Some(&pool), (0..40).collect(), |i: u64| (i as f64).sqrt());
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let pooled_bits: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
        assert_eq!(serial_bits, pooled_bits);
    }
}
