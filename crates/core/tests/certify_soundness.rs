//! The certification soundness oracle battery.
//!
//! A certificate `(ε, δ)` is a *promise*: no input inside the L∞ box
//! `[x − ε, x + ε]` maps farther than δ (L2) from `x`'s representation.
//! These tests attack that promise empirically — ≥ 10 000 seeded samples
//! per certified ball, including every box corner — and treat a **single**
//! violation as a hard failure, on both the f64 and the f32 forward pass,
//! with certificates produced at 1, 2 and 4 pool threads. The battery also
//! rejects vacuous bounds (certified δ must stay within a constant factor
//! of the sampled maximum), pins certificates bit-identical across pool
//! sizes and JSON round-trips, and fuzzes degenerate geometries no
//! optimizer would produce (ε = 0, duplicate prototypes, zero-weight
//! dimensions).

use ifair_core::par::WorkerPool;
use ifair_core::{CertMethod, Certificate, IFair, IFairConfig};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded samples drawn inside every certified ball (corners included).
const SAMPLES_PER_BALL: usize = 10_000;

/// Anti-vacuity cap: a certified δ may exceed the sampled maximum
/// displacement by at most this factor on the small models below. The box
/// diagonal alone costs ~2x over the center displacement; interval slop
/// through softmax costs a few x more. A bound past this is useless, not
/// just conservative.
const VACUITY_FACTOR: f64 = 25.0;

fn fitted(seed: u64, m: usize) -> (Matrix, IFair) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                if rng.gen_bool(0.5) { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    let x = Matrix::from_rows(rows).unwrap();
    let protected = vec![false, false, true];
    let config = IFairConfig {
        k: 3,
        max_iters: 30,
        n_restarts: 1,
        ..IFairConfig::default()
    };
    let model = IFair::fit(&x, &protected, &config).unwrap();
    (x, model)
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt()
}

/// `SAMPLES_PER_BALL` points inside `[x − ε, x + ε]`: the center first,
/// then every box corner (the extremes interval arithmetic must cover),
/// then seeded uniform fill.
fn ball_samples(rng: &mut StdRng, x: &[f64], eps: f64) -> Matrix {
    let n = x.len();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(SAMPLES_PER_BALL);
    rows.push(x.to_vec());
    for corner in 0..(1usize << n) {
        rows.push(
            (0..n)
                .map(|j| {
                    if corner >> j & 1 == 1 {
                        x[j] + eps
                    } else {
                        x[j] - eps
                    }
                })
                .collect(),
        );
    }
    while rows.len() < SAMPLES_PER_BALL {
        rows.push(
            (0..n)
                .map(|j| x[j] + eps * rng.gen_range(-1.0..1.0))
                .collect(),
        );
    }
    Matrix::from_rows(rows).unwrap()
}

/// The shared oracle: certify every row of `x` at `eps` (at 1/2/4 pool
/// threads, asserting bit-identical certificates), then hammer each ball
/// with samples and fail on any δ violation. `transform` abstracts over
/// the f64 and f32 forward passes. Returns (violations, worst vacuity
/// ratio) so callers can add their own anti-vacuity assertions.
type CertifyFn<'a> = &'a dyn Fn(&Matrix, f64, Option<&WorkerPool>) -> Vec<Certificate>;

fn assault_certificates(
    x: &Matrix,
    eps: f64,
    seed: u64,
    certify: CertifyFn,
    transform: &dyn Fn(&Matrix) -> Matrix,
) -> f64 {
    let reference = certify(x, eps, None);
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        let certs = certify(x, eps, Some(&pool));
        assert_eq!(certs.len(), reference.len());
        for (a, b) in certs.iter().zip(&reference) {
            assert_eq!(
                a.delta.to_bits(),
                b.delta.to_bits(),
                "certificates must be bit-identical at {threads} threads"
            );
            assert_eq!(a.method, b.method);
        }
    }
    let centers = transform(x);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut worst_ratio = 0.0f64;
    for (i, cert) in reference.iter().enumerate() {
        let samples = ball_samples(&mut rng, x.row(i), eps);
        let images = transform(&samples);
        let mut sampled_max = 0.0f64;
        for s in 0..images.rows() {
            let d = euclid(images.row(s), centers.row(i));
            assert!(
                d <= cert.delta,
                "SOUNDNESS VIOLATION: row {i} sample {s} moved {d:.17} \
                 but the certificate promised {:.17} (eps {eps})",
                cert.delta
            );
            sampled_max = sampled_max.max(d);
        }
        if sampled_max > 0.0 {
            worst_ratio = worst_ratio.max(cert.delta / sampled_max);
        }
    }
    worst_ratio
}

#[test]
fn f64_certificates_survive_ten_thousand_samples_per_ball() {
    let (x, model) = fitted(1301, 12);
    for (eps, seed) in [(1e-3, 9000u64), (0.05, 9001), (0.25, 9002)] {
        let ratio = assault_certificates(
            &x,
            eps,
            seed,
            &|rows, e, pool| model.certify_rows(rows, e, pool).unwrap(),
            &|rows| model.transform_on(rows, None),
        );
        assert!(
            ratio <= VACUITY_FACTOR,
            "eps {eps}: certified bound is {ratio:.1}x the sampled max — vacuous"
        );
    }
}

#[test]
fn f32_certificates_survive_ten_thousand_samples_per_ball() {
    let (x, model) = fitted(1302, 12);
    let lowered = model.to_f32();
    for (eps, seed) in [(1e-3, 9100u64), (0.05, 9101), (0.25, 9102)] {
        let ratio = assault_certificates(
            &x,
            eps,
            seed,
            &|rows, e, pool| lowered.certify_rows(rows, e, pool).unwrap(),
            &|rows| lowered.transform_on(rows, None),
        );
        assert!(
            ratio <= VACUITY_FACTOR,
            "eps {eps}: certified f32 bound is {ratio:.1}x the sampled max — vacuous"
        );
    }
}

#[test]
fn certificates_round_trip_json_bit_exactly() {
    let (x, model) = fitted(1303, 8);
    let pool = WorkerPool::new(2);
    for eps in [0.0, 1e-3, 0.1, 2.0] {
        for cert in model.certify_rows(&x, eps, Some(&pool)).unwrap() {
            let json = cert.to_json().unwrap();
            let back = Certificate::from_json(&json).unwrap();
            assert_eq!(back.eps.to_bits(), cert.eps.to_bits());
            assert_eq!(back.delta.to_bits(), cert.delta.to_bits());
            assert_eq!(back.method, cert.method);
        }
    }
}

#[test]
fn zero_radius_certifies_zero_displacement() {
    let (x, model) = fitted(1304, 8);
    let certs = model.certify_rows(&x, 0.0, None).unwrap();
    for cert in &certs {
        // The box is a point: only directed-rounding slack remains.
        assert!(
            cert.delta < 1e-9,
            "eps 0 certified delta {} — should collapse to rounding slack",
            cert.delta
        );
    }
    // And the promise still holds trivially: transform is within delta of
    // itself.
    let y = model.transform_on(&x, None);
    for (i, cert) in certs.iter().enumerate() {
        assert!(euclid(y.row(i), y.row(i)) <= cert.delta);
    }
}

#[test]
fn duplicate_prototypes_stay_sound() {
    // Two identical prototypes: softmax mass splits between them but the
    // mixture is unchanged — a geometry no optimizer converges to, and a
    // classic division-of-responsibility edge case for interval code.
    let protos = Matrix::from_rows(vec![
        vec![0.2, 0.8, 0.5],
        vec![0.2, 0.8, 0.5],
        vec![0.9, 0.1, 0.0],
    ])
    .unwrap();
    let config = IFairConfig {
        k: 3,
        max_iters: 1,
        n_restarts: 1,
        ..IFairConfig::default()
    };
    let model = IFair::from_parts(
        protos,
        vec![1.0, 0.5, 2.0],
        vec![false, false, true],
        config,
    )
    .unwrap();
    let x = Matrix::from_rows(vec![vec![0.3, 0.6, 1.0], vec![0.8, 0.2, 0.0]]).unwrap();
    for (eps, seed) in [(0.02, 9300u64), (0.2, 9301)] {
        assault_certificates(
            &x,
            eps,
            seed,
            &|rows, e, pool| model.certify_rows(rows, e, pool).unwrap(),
            &|rows| model.transform_on(rows, None),
        );
    }
}

#[test]
fn zero_weight_dimensions_certify_tightly_and_soundly() {
    // alpha = [1, 0, 0]: only the first coordinate matters. Perturbing the
    // dead coordinates must not move the representation, and the interval
    // pass must notice (a box varying only dead dimensions certifies ~0).
    let protos = Matrix::from_rows(vec![vec![0.0, 0.3, 0.7], vec![1.0, 0.6, 0.1]]).unwrap();
    let config = IFairConfig {
        k: 2,
        max_iters: 1,
        n_restarts: 1,
        ..IFairConfig::default()
    };
    let model = IFair::from_parts(
        protos,
        vec![1.0, 0.0, 0.0],
        vec![false, false, true],
        config,
    )
    .unwrap();
    let x = Matrix::from_rows(vec![vec![0.4, 0.5, 0.5]]).unwrap();
    // Soundness under a full-box assault.
    assault_certificates(
        &x,
        0.1,
        9400,
        &|rows, e, pool| model.certify_rows(rows, e, pool).unwrap(),
        &|rows| model.transform_on(rows, None),
    );
    // Tightness: a box that only moves the zero-weight coordinates is a
    // fixed point of the map — the certificate must collapse.
    let lo = Matrix::from_rows(vec![vec![0.4, 0.0, 0.0]]).unwrap();
    let hi = Matrix::from_rows(vec![vec![0.4, 1.0, 1.0]]).unwrap();
    let certs = model.certify_boxes(&lo, &hi, None).unwrap();
    assert_eq!(certs.len(), 1);
    assert!(
        certs[0].delta < 1e-9,
        "dead-dimension box certified delta {} — interval pass missed \
         the zero weights",
        certs[0].delta
    );
}

#[test]
fn f32_certificates_widen_never_narrow() {
    // Lowering to f32 loses information; its certificates must pay for
    // that with slack, never claim a tighter bound than the f64 pass.
    let (x, model) = fitted(1305, 10);
    let lowered = model.to_f32();
    for eps in [1e-3, 0.05, 0.25] {
        let f64_certs = model.certify_rows(&x, eps, None).unwrap();
        let f32_certs = lowered.certify_rows(&x, eps, None).unwrap();
        for (i, (a, b)) in f64_certs.iter().zip(&f32_certs).enumerate() {
            assert!(
                b.delta >= a.delta,
                "row {i} eps {eps}: f32 delta {} narrower than f64 delta {}",
                b.delta,
                a.delta
            );
        }
    }
}

#[test]
fn huge_radius_caps_at_the_hull_diameter() {
    let (x, model) = fitted(1306, 8);
    let hull = model.certification_hull_diameter();
    let certs = model.certify_rows(&x, 1e6, None).unwrap();
    for cert in &certs {
        assert_eq!(cert.method, CertMethod::GlobalDiameter);
        // The cap plus the terminal soundness slack, nothing more.
        assert!(cert.delta <= hull * (1.0 + 1e-9) + 1e-9);
    }
    // The cap is itself sound: every output lies in the prototype hull, so
    // no two images can be farther apart than its diameter. Sample wildly.
    let mut rng = StdRng::seed_from_u64(9500);
    let wild: Vec<Vec<f64>> = (0..SAMPLES_PER_BALL)
        .map(|_| (0..3).map(|_| rng.gen_range(-1e5..1e5)).collect())
        .collect();
    let images = model.transform_on(&Matrix::from_rows(wild).unwrap(), None);
    let center = model.transform_on(&x, None);
    for s in 0..images.rows() {
        let d = euclid(images.row(s), center.row(0));
        assert!(
            d <= certs[0].delta,
            "wild sample {s} moved {d} past the hull-diameter certificate {}",
            certs[0].delta
        );
    }
}
