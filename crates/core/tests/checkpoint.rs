//! Crash-safe training contract: a mini-batch fit resumed from any
//! epoch-boundary checkpoint — including one that took a round trip through
//! its JSON artifact — must be **bit-identical** to the uninterrupted fit,
//! at every thread count.

use ifair_core::{FitCheckpoint, FitStrategy, IFair, IFairConfig};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 120 records x 4 features (last protected), dense enough to exercise the
/// persistent-permutation sampler paths on both records and pairs.
fn training_data() -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(23);
    let rows: Vec<Vec<f64>> = (0..120)
        .map(|_| {
            let mut row: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..1.0)).collect();
            row.push(f64::from(rng.gen_bool(0.5)));
            row
        })
        .collect();
    (
        Matrix::from_rows(rows).unwrap(),
        vec![false, false, false, true],
    )
}

fn config(n_threads: usize) -> IFairConfig {
    IFairConfig {
        k: 3,
        n_restarts: 2,
        n_threads,
        strategy: FitStrategy::MiniBatch {
            // 48 of 120 records and 200 of 1128 pairs: the record draw takes
            // the rejection path, the pair draw takes the dense persistent-
            // shuffle path, so both sampler states matter to the outcome.
            batch_records: 48,
            pairs_per_batch: 200,
            epochs: 3,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

fn model_bits(model: &IFair) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    (
        model.alpha().iter().map(|v| v.to_bits()).collect(),
        model
            .prototypes()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        model
            .report()
            .restarts
            .iter()
            .map(|r| r.loss.to_bits())
            .collect(),
    )
}

/// Runs an uninterrupted checkpointed fit, returning the model and every
/// checkpoint the sink saw.
fn fit_collecting(
    x: &Matrix,
    protected: &[bool],
    config: &IFairConfig,
) -> (IFair, Vec<FitCheckpoint>) {
    let mut checkpoints = Vec::new();
    let model = IFair::fit_checkpointed(x, protected, config, |cp| {
        checkpoints.push(cp.clone());
        Ok(())
    })
    .unwrap();
    (model, checkpoints)
}

#[test]
fn resume_from_every_boundary_is_bit_identical() {
    let (x, protected) = training_data();
    let config = config(1);
    let (reference, checkpoints) = fit_collecting(&x, &protected, &config);
    let ref_bits = model_bits(&reference);
    // 2 restarts x 3 epochs = 6 boundaries, every one a valid resume point.
    assert_eq!(checkpoints.len(), 6);
    for (i, cp) in checkpoints.iter().enumerate() {
        let resumed = IFair::resume_from_checkpoint(&x, cp, |_| Ok(())).unwrap();
        assert_eq!(
            ref_bits,
            model_bits(&resumed),
            "resume from checkpoint {i} (restart {}, epoch {}) diverged",
            cp.restart(),
            cp.epoch()
        );
        assert_eq!(
            resumed.report().best_restart,
            reference.report().best_restart
        );
    }
}

#[test]
fn resume_survives_the_json_artifact_roundtrip() {
    // The crash scenario end to end: checkpoint -> atomic save -> process
    // dies -> load -> resume. Must still be bit-identical.
    let (x, protected) = training_data();
    let config = config(1);
    let (reference, checkpoints) = fit_collecting(&x, &protected, &config);
    let cp = &checkpoints[2]; // mid-fit: restart 0 done 3 epochs? index 2 = restart 0, epoch 3
    let path = std::env::temp_dir().join(format!(
        "ifair-resume-roundtrip-{}.json",
        std::process::id()
    ));
    cp.save(&path).unwrap();
    let loaded = FitCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let resumed = IFair::resume_from_checkpoint(&x, &loaded, |_| Ok(())).unwrap();
    assert_eq!(model_bits(&reference), model_bits(&resumed));
}

#[test]
fn resume_is_thread_count_invariant() {
    // Checkpoints taken at any thread count resume to the same bits at any
    // other thread count: the chunk layouts are functions of the problem
    // size, and the sampler state lives on the training thread.
    let (x, protected) = training_data();
    let (reference, _) = fit_collecting(&x, &protected, &config(1));
    let ref_bits = model_bits(&reference);
    for take_threads in [1usize, 2, 4] {
        let (_, checkpoints) = fit_collecting(&x, &protected, &config(take_threads));
        // Resume from the mid-restart-1 boundary under a different pool size.
        let mut cp = checkpoints[4].clone();
        assert_eq!((cp.restart(), cp.epoch()), (1, 2));
        for resume_threads in [1usize, 2, 4] {
            cp = {
                // Rewriting n_threads through the JSON artifact mirrors a
                // real migration to a host with a different core count.
                let mut json = cp.to_json().unwrap();
                json = json.replace(
                    &format!("\"n_threads\":{take_threads}"),
                    &format!("\"n_threads\":{resume_threads}"),
                );
                FitCheckpoint::from_json(&json).unwrap()
            };
            let resumed = IFair::resume_from_checkpoint(&x, &cp, |_| Ok(())).unwrap();
            assert_eq!(
                ref_bits,
                model_bits(&resumed),
                "checkpoint from {take_threads} threads resumed on {resume_threads} diverged"
            );
        }
    }
}

#[test]
fn resumed_fit_keeps_checkpointing_the_remaining_epochs() {
    let (x, protected) = training_data();
    let config = config(1);
    let (_, checkpoints) = fit_collecting(&x, &protected, &config);
    let cp = &checkpoints[1]; // restart 0, epoch 2 of 3
    let mut seen = Vec::new();
    IFair::resume_from_checkpoint(&x, cp, |c| {
        seen.push((c.restart(), c.epoch()));
        Ok(())
    })
    .unwrap();
    // One epoch left in restart 0, then all of restart 1.
    assert_eq!(seen, vec![(0, 3), (1, 1), (1, 2), (1, 3)]);
}

#[test]
fn sink_failure_aborts_the_fit() {
    // Training past a checkpoint that failed to persist would silently widen
    // the crash window, so a sink error is a fit error.
    let (x, protected) = training_data();
    let err = IFair::fit_checkpointed(&x, &protected, &config(1), |_| {
        Err(ifair_core::FitError::Serialization("disk full".into()))
    })
    .unwrap_err();
    assert!(err.to_string().contains("disk full"));
}

#[test]
fn checkpointing_requires_mini_batch() {
    let (x, protected) = training_data();
    let config = IFairConfig {
        strategy: FitStrategy::FullBatch,
        ..config(1)
    };
    assert!(matches!(
        IFair::fit_checkpointed(&x, &protected, &config, |_| Ok(())),
        Err(ifair_core::FitError::Config(_))
    ));
}

#[test]
fn resume_rejects_mismatched_data() {
    let (x, protected) = training_data();
    let (_, checkpoints) = fit_collecting(&x, &protected, &config(1));
    let cp = &checkpoints[0];
    // Record count drifted: the sampler schedule would silently diverge.
    let fewer = Matrix::from_rows((0..100).map(|i| x.row(i).to_vec()).collect()).unwrap();
    assert!(IFair::resume_from_checkpoint(&fewer, cp, |_| Ok(())).is_err());
    // Feature width drifted.
    let narrower = Matrix::from_rows((0..120).map(|i| x.row(i)[..3].to_vec()).collect()).unwrap();
    assert!(IFair::resume_from_checkpoint(&narrower, cp, |_| Ok(())).is_err());
}
