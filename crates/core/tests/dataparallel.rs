//! Parity contract of the multi-process data-parallel trainer: a
//! [`FitStrategy::DataParallel`] fit must be **bit-identical** to the
//! single-process [`FitStrategy::MiniBatch`] fit with the same schedule —
//! at every worker count, at every thread count inside the workers, from
//! every data spec (generator, sharded `.ifb`), and across
//! checkpoint/resume boundaries. Any divergence means the coordinator's
//! fold order or the workers' chunk ownership drifted from the in-process
//! summation tree.

use ifair_core::{DpDataSpec, FitCheckpoint, FitStrategy, IFair, IFairConfig};
use ifair_data::binfmt::BinDatasetWriter;
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};
use ifair_data::stream::RecordSource;
use std::path::PathBuf;

/// Points the coordinator at the Cargo-built worker binary: integration
/// tests run from `target/*/deps/`, where the sibling-discovery fallback
/// does not apply.
fn set_worker_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("IFAIR_DP_WORKER", env!("CARGO_BIN_EXE_ifair-dp-worker"));
    });
}

fn gen_config(n_records: usize) -> LargeScaleConfig {
    LargeScaleConfig {
        n_records,
        n_numeric: 6,
        seed: 3,
        ..Default::default()
    }
}

/// A schedule big enough to engage multiple fairness and record chunks
/// (so chunk ownership actually splits across workers) but small enough
/// to keep the fleet tests fast.
fn config(strategy: FitStrategy, n_threads: usize) -> IFairConfig {
    IFairConfig {
        k: 3,
        n_restarts: 2,
        n_threads,
        strategy,
        ..Default::default()
    }
}

fn mini_batch(epochs: usize) -> FitStrategy {
    FitStrategy::MiniBatch {
        batch_records: 64,
        pairs_per_batch: 128,
        epochs,
        learning_rate: 0.05,
    }
}

fn data_parallel(workers: usize, epochs: usize) -> FitStrategy {
    FitStrategy::DataParallel {
        workers,
        batch_records: 64,
        pairs_per_batch: 128,
        epochs,
        learning_rate: 0.05,
    }
}

fn model_bits(model: &IFair) -> (Vec<u64>, Vec<u64>) {
    (
        model.alpha().iter().map(|v| v.to_bits()).collect(),
        model
            .prototypes()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

/// The single-process reference fit over the same generator and schedule.
fn reference_bits(n_records: usize, epochs: usize) -> (Vec<u64>, Vec<u64>) {
    let gen = LargeScale::new(gen_config(n_records));
    let protected = gen.protected_flags();
    let mut source = gen;
    let model = IFair::fit_source(&mut source, &protected, &config(mini_batch(epochs), 1)).unwrap();
    model_bits(&model)
}

#[test]
fn data_parallel_fit_is_bit_identical_to_single_process_at_every_worker_count() {
    set_worker_env();
    let spec = DpDataSpec::LargeScale {
        config: gen_config(400),
    };
    let protected = LargeScale::new(gen_config(400)).protected_flags();
    let reference = reference_bits(400, 2);
    for workers in [1usize, 2, 4] {
        let model =
            IFair::fit_data_parallel(&spec, &protected, &config(data_parallel(workers, 2), 1))
                .unwrap();
        assert_eq!(
            reference,
            model_bits(&model),
            "data-parallel fit diverged at {workers} workers"
        );
    }
}

#[test]
fn data_parallel_fit_is_thread_count_invariant_inside_workers() {
    set_worker_env();
    let spec = DpDataSpec::LargeScale {
        config: gen_config(400),
    };
    let protected = LargeScale::new(gen_config(400)).protected_flags();
    let reference = reference_bits(400, 2);
    for threads in [1usize, 2, 4] {
        let model =
            IFair::fit_data_parallel(&spec, &protected, &config(data_parallel(2, 2), threads))
                .unwrap();
        assert_eq!(
            reference,
            model_bits(&model),
            "data-parallel fit diverged at {threads} threads per worker"
        );
    }
}

#[test]
fn sharded_binary_dataset_trains_to_the_same_bits_as_the_generator() {
    set_worker_env();
    // Materialize the generator into three .ifb shards, then train from
    // the files: the data plane must be invisible to the numerics.
    let gen = LargeScale::new(gen_config(400));
    let protected = gen.protected_flags();
    let n = gen.n_features();
    let stem = std::env::temp_dir().join(format!("ifair-dp-shards-{}", std::process::id()));
    let names = (0..n).map(|j| format!("f{j}")).collect();
    let mut writer = BinDatasetWriter::create(&stem, names, 150).unwrap();
    let mut row = vec![0.0; n];
    for i in 0..gen.n_records() {
        gen.row_into(i, &mut row);
        writer.push_row(&row).unwrap();
    }
    let shards = writer.finish().unwrap();
    assert_eq!(shards.len(), 3, "400 rows at 150/shard should be 3 shards");

    let spec = DpDataSpec::Bin {
        paths: shards
            .iter()
            .map(|p| p.to_string_lossy().into_owned())
            .collect(),
    };
    let result = IFair::fit_data_parallel(&spec, &protected, &config(data_parallel(2, 2), 1));
    for p in &shards {
        std::fs::remove_file(p).ok();
    }
    assert_eq!(reference_bits(400, 2), model_bits(&result.unwrap()));
}

#[test]
fn checkpointed_data_parallel_fit_resumes_bit_identically() {
    set_worker_env();
    let spec = DpDataSpec::LargeScale {
        config: gen_config(400),
    };
    let protected = LargeScale::new(gen_config(400)).protected_flags();
    let cfg = config(data_parallel(2, 3), 1);

    let mut checkpoints: Vec<FitCheckpoint> = Vec::new();
    let uninterrupted = IFair::fit_data_parallel_checkpointed(&spec, &protected, &cfg, |cp| {
        checkpoints.push(cp.clone());
        Ok(())
    })
    .unwrap();
    // 2 restarts x 3 epochs.
    assert_eq!(checkpoints.len(), 6);

    // Resume from a mid-fit snapshot (restart 0, epoch 2 of 3) and from a
    // mid-second-restart one; both must land on the uninterrupted bits.
    for idx in [1usize, 4] {
        let resumed =
            IFair::resume_data_parallel_from_checkpoint(&spec, &checkpoints[idx], |_| Ok(()))
                .unwrap();
        assert_eq!(
            model_bits(&uninterrupted),
            model_bits(&resumed),
            "resume from checkpoint {idx} diverged"
        );
    }

    // And the data-parallel checkpoints replay in-process too: the loop
    // state is strategy-agnostic, so a fleetless resume is the ultimate
    // escape hatch (and one more parity witness).
    let gen = LargeScale::new(gen_config(400));
    let mut source = gen;
    let resumed_local =
        IFair::resume_source_from_checkpoint(&mut source, &checkpoints[1], |_| Ok(())).unwrap();
    assert_eq!(model_bits(&uninterrupted), model_bits(&resumed_local));
}

#[test]
fn fit_rejects_data_parallel_strategy_with_a_pointer_at_the_right_entry_point() {
    let gen = LargeScale::new(gen_config(100));
    let protected = gen.protected_flags();
    let x = gen.materialize(0, 100).unwrap().x;
    let err = IFair::fit(&x, &protected, &config(data_parallel(2, 1), 1)).unwrap_err();
    assert!(
        err.to_string().contains("fit_data_parallel"),
        "error should name the data-parallel entry point, got: {err}"
    );
    let mut source = LargeScale::new(gen_config(100));
    assert!(IFair::fit_source(&mut source, &protected, &config(data_parallel(2, 1), 1)).is_err());
}

#[test]
fn missing_worker_binary_is_a_typed_worker_error() {
    // An unlocatable worker must fail fast with a build hint, not hang.
    let spec = DpDataSpec::LargeScale {
        config: gen_config(100),
    };
    let protected = LargeScale::new(gen_config(100)).protected_flags();
    let bogus: PathBuf = std::env::temp_dir().join("ifair-no-such-worker-binary");
    let prev = std::env::var_os("IFAIR_DP_WORKER");
    std::env::set_var("IFAIR_DP_WORKER", &bogus);
    let result = IFair::fit_data_parallel(&spec, &protected, &config(data_parallel(2, 1), 1));
    match prev {
        Some(v) => std::env::set_var("IFAIR_DP_WORKER", v),
        None => std::env::remove_var("IFAIR_DP_WORKER"),
    }
    assert!(matches!(result, Err(ifair_core::FitError::Worker(_))));
}

/// The CI `scale-smoke` parity point: 100k generated records, 2 workers,
/// one epoch — big enough to exercise many batches and the full chunk
/// fan-out, small enough for a CI runner. `--ignored` opts in.
#[test]
#[ignore = "scale smoke: ~100k records; run with --ignored (CI scale-smoke job)"]
fn hundred_thousand_record_fit_matches_single_process() {
    set_worker_env();
    let gc = LargeScaleConfig {
        n_records: 100_000,
        n_numeric: 6,
        seed: 3,
        ..Default::default()
    };
    let mb = FitStrategy::MiniBatch {
        batch_records: 4096,
        pairs_per_batch: 1024,
        epochs: 1,
        learning_rate: 0.05,
    };
    let dp = FitStrategy::DataParallel {
        workers: 2,
        batch_records: 4096,
        pairs_per_batch: 1024,
        epochs: 1,
        learning_rate: 0.05,
    };
    let protected = LargeScale::new(gc.clone()).protected_flags();
    let mut source = LargeScale::new(gc.clone());
    let reference = IFair::fit_source(
        &mut source,
        &protected,
        &IFairConfig {
            k: 4,
            n_restarts: 1,
            n_threads: 1,
            strategy: mb,
            ..Default::default()
        },
    )
    .unwrap();
    let spec = DpDataSpec::LargeScale { config: gc };
    let model = IFair::fit_data_parallel(
        &spec,
        &protected,
        &IFairConfig {
            k: 4,
            n_restarts: 1,
            n_threads: 1,
            strategy: dp,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(model_bits(&reference), model_bits(&model));
}
