//! Worker-crash contract of the data-parallel trainer
//! (`--features fault-injection`): killing one worker mid-epoch must
//! surface as a typed [`FitError::Worker`], leave no zombie processes
//! behind, and leave the checkpoint directory clean — completed epochs'
//! checkpoints intact, no half-written temp files.

#![cfg(feature = "fault-injection")]

use ifair_core::{DpDataSpec, FitError, FitStrategy, IFair, IFairConfig};
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};
use std::path::{Path, PathBuf};

fn gen_config() -> LargeScaleConfig {
    LargeScaleConfig {
        n_records: 400,
        n_numeric: 6,
        seed: 3,
        ..Default::default()
    }
}

fn dp_config() -> IFairConfig {
    IFairConfig {
        k: 3,
        n_restarts: 1,
        n_threads: 1,
        strategy: FitStrategy::DataParallel {
            workers: 2,
            batch_records: 64,
            pairs_per_batch: 128,
            epochs: 3,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

/// Counts zombie children of this process by scanning `/proc/<pid>/stat`
/// for entries with our pid as parent and state `Z` — a reaped fleet
/// leaves none, however it died.
#[cfg(target_os = "linux")]
fn zombie_children() -> Vec<u32> {
    let me = std::process::id();
    let mut zombies = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return zombies;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        // comm may contain spaces; state is the field after the last ')'.
        let Some(rest) = stat.rsplit_once(')').map(|(_, r)| r) else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let state = fields.next().unwrap_or("");
        let ppid = fields.next().and_then(|p| p.parse::<u32>().ok());
        if state == "Z" && ppid == Some(me) {
            zombies.push(pid);
        }
    }
    zombies
}

fn temp_checkpoint_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ifair-dp-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Checkpoint files in `dir` plus any `.`-prefixed droppings (the atomic
/// writer's temp names) — the latter must never survive a crash.
fn dir_listing(dir: &Path) -> (Vec<String>, Vec<String>) {
    let mut finished = Vec::new();
    let mut droppings = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') {
            droppings.push(name);
        } else {
            finished.push(name);
        }
    }
    finished.sort();
    (finished, droppings)
}

#[test]
fn killed_worker_surfaces_as_a_typed_error_without_zombies_or_torn_checkpoints() {
    std::env::set_var("IFAIR_DP_WORKER", env!("CARGO_BIN_EXE_ifair-dp-worker"));
    // Worker 1 panics at its 11th EVAL step: with ceil(400/64) = 7 steps
    // per epoch that lands in epoch 2, after epoch 1's checkpoint is on
    // disk — the coordinator is blocked collecting fairness partials when
    // the pipe dies.
    std::env::set_var("IFAIR_DP_FAULT_PANIC", "1:11");
    let dir = temp_checkpoint_dir("kill");
    let spec = DpDataSpec::LargeScale {
        config: gen_config(),
    };
    let protected = LargeScale::new(gen_config()).protected_flags();
    let mut saved = 0usize;
    let result = IFair::fit_data_parallel_checkpointed(&spec, &protected, &dp_config(), |cp| {
        saved += 1;
        cp.save(&dir.join(format!("epoch-{saved}.json")))?;
        Ok(())
    });
    std::env::remove_var("IFAIR_DP_FAULT_PANIC");

    let err = result.expect_err("a killed worker must fail the fit");
    assert!(
        matches!(err, FitError::Worker(_)),
        "expected FitError::Worker, got: {err}"
    );
    assert!(
        err.to_string().contains("worker 1"),
        "error should name the dead worker, got: {err}"
    );

    // Exactly the pre-crash epoch checkpoint survives, loadable, with no
    // atomic-writer droppings next to it.
    let (finished, droppings) = dir_listing(&dir);
    assert_eq!(finished, vec!["epoch-1.json".to_string()]);
    assert!(
        droppings.is_empty(),
        "half-written checkpoint temp files left behind: {droppings:?}"
    );
    let cp = ifair_core::FitCheckpoint::load(&dir.join("epoch-1.json")).unwrap();

    // The fleet is fully reaped: no zombie children linger.
    #[cfg(target_os = "linux")]
    {
        let zombies = zombie_children();
        assert!(
            zombies.is_empty(),
            "zombie workers left behind: {zombies:?}"
        );
    }

    // And the surviving checkpoint resumes to the same bits as an
    // uninterrupted healthy run — the crash cost one epoch, nothing else.
    let healthy = IFair::fit_data_parallel(&spec, &protected, &dp_config()).expect("healthy rerun");
    let resumed = IFair::resume_data_parallel_from_checkpoint(&spec, &cp, |_| Ok(()))
        .expect("resume from the surviving checkpoint");
    assert_eq!(healthy.alpha(), resumed.alpha());
    assert_eq!(healthy.prototypes(), resumed.prototypes());

    std::fs::remove_dir_all(&dir).ok();
}
