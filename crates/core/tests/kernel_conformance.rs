//! Kernel conformance battery: every `(backend × precision)` variant of the
//! lane-chunked math kernels is pinned against the others.
//!
//! The contract (see `docs/ARCHITECTURE.md`, "Kernel backends and precision
//! contract"):
//!
//! 1. The dispatched kernel (`ifair_linalg::lanes::*`) is **bit-identical**
//!    to the portable lane-structured scalar kernel (`lanes::scalar::*`)
//!    for f64 — whichever backend `Backend::active()` resolved to. The
//!    intrinsics backend is a different instruction encoding of the *same*
//!    rounded-operation sequence, never a different reduction.
//! 2. Both agree with the naive single-accumulator reference
//!    (`distance::reference::*`) to ~1e-12 relative — the lane fold only
//!    reassociates the sum.
//! 3. The f32 instantiation tracks f64 within single-precision tolerance
//!    on unit-scale data, and `IFair::to_f32()` serving transforms stay
//!    within 1e-4 absolute of the f64 transform while remaining pool-size
//!    invariant.
//! 4. The tiled backward pass (gradients through the restructured forward)
//!    agrees with central finite differences.
//!
//! Shapes are seeded-random and deliberately include non-multiples of the
//! lane width (LANES = 4) and chunk widths, zero rows, and the degenerate
//! K = 1 single-prototype model.

use ifair_core::distance;
use ifair_core::{Backend, FairnessPairs, IFairConfig, IFairObjective, Precision};
use ifair_linalg::{lanes, Matrix};
use ifair_optim::numgrad::check_gradient;
use ifair_optim::Objective;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative error against the larger magnitude (floored at 1 so zeros and
/// tiny sums compare absolutely).
fn rel(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0)
}

/// Vector lengths that straddle the lane width and its multiples: a zero-
/// length slice, sub-lane, exact lanes, lanes+tail, and larger odd sizes.
const LENGTHS: [usize; 9] = [0, 1, 2, 3, 4, 5, 7, 63, 101];

fn random_vec(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn dispatched_f64_kernels_are_bit_identical_to_the_scalar_lane_kernel() {
    let mut rng = StdRng::seed_from_u64(401);
    for &n in &LENGTHS {
        for case in 0..8 {
            let a = random_vec(&mut rng, n, -2.0, 2.0);
            let b = random_vec(&mut rng, n, -2.0, 2.0);
            // Mix in negative weights: the kernels clamp them to zero and
            // the backends must clamp identically.
            let w = random_vec(&mut rng, n, -0.5, 2.0);
            let p = [1.0, 1.5, 2.0, 3.0][case % 4];

            assert_eq!(
                lanes::dot(&a, &b).to_bits(),
                lanes::scalar::dot(&a, &b).to_bits(),
                "dot n={n} backend={}",
                Backend::active().label()
            );
            assert_eq!(
                lanes::sq_euclidean(&a, &b).to_bits(),
                lanes::scalar::sq_euclidean(&a, &b).to_bits(),
                "sq_euclidean n={n}"
            );
            assert_eq!(
                lanes::weighted_power_sum(&a, &b, &w, p).to_bits(),
                if p == 2.0 {
                    lanes::scalar::weighted_sq_sum(&a, &b, &w)
                } else {
                    lanes::scalar::weighted_power_sum(&a, &b, &w, p)
                }
                .to_bits(),
                "weighted_power_sum n={n} p={p}"
            );
        }
    }
}

#[test]
fn lane_kernels_agree_with_the_naive_reference_to_1e12() {
    let mut rng = StdRng::seed_from_u64(402);
    for &n in &LENGTHS {
        for case in 0..8 {
            let a = random_vec(&mut rng, n, -2.0, 2.0);
            let b = random_vec(&mut rng, n, -2.0, 2.0);
            let w = random_vec(&mut rng, n, 0.0, 2.0);
            let p = [1.0, 2.0, 3.0][case % 3];

            assert!(rel(distance::dot(&a, &b), distance::reference::dot(&a, &b)) < 1e-12);
            assert!(
                rel(
                    distance::euclidean(&a, &b),
                    distance::reference::euclidean(&a, &b)
                ) < 1e-12
            );
            assert!(
                rel(
                    distance::weighted_power_sum(&a, &b, &w, p),
                    distance::reference::weighted_power_sum(&a, &b, &w, p)
                ) < 1e-12,
                "n={n} p={p}"
            );
            assert!(
                rel(
                    distance::weighted_minkowski(&a, &b, &w, p),
                    distance::reference::weighted_minkowski(&a, &b, &w, p)
                ) < 1e-12
            );
        }
    }
}

#[test]
fn f32_kernels_track_f64_within_single_precision_tolerance() {
    let mut rng = StdRng::seed_from_u64(403);
    for &n in &LENGTHS {
        for case in 0..8 {
            let a = random_vec(&mut rng, n, 0.0, 1.0);
            let b = random_vec(&mut rng, n, 0.0, 1.0);
            let w = random_vec(&mut rng, n, 0.0, 1.0);
            let p = [1.0, 2.0, 3.0][case % 3];
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let w32: Vec<f32> = w.iter().map(|&v| v as f32).collect();

            // Unit-scale data, ≤ 101 terms: f32 keeps ~6-7 significant
            // digits, so 1e-4 relative is a conservative envelope.
            let tol = 1e-4 * (n.max(1) as f64);
            assert!(rel(f64::from(lanes::dot(&a32, &b32)), lanes::dot(&a, &b)) < tol);
            assert!(
                rel(
                    f64::from(lanes::sq_euclidean(&a32, &b32)),
                    lanes::sq_euclidean(&a, &b)
                ) < tol
            );
            assert!(
                rel(
                    f64::from(lanes::weighted_power_sum(&a32, &b32, &w32, p as f32)),
                    lanes::weighted_power_sum(&a, &b, &w, p)
                ) < tol,
                "n={n} p={p}"
            );
        }
    }
}

#[test]
fn zero_rows_and_identical_inputs_are_exact_across_all_variants() {
    let mut rng = StdRng::seed_from_u64(404);
    for &n in &LENGTHS {
        let zero = vec![0.0f64; n];
        let x = random_vec(&mut rng, n, -1.0, 1.0);
        let w = random_vec(&mut rng, n, 0.0, 1.0);
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let z32 = vec![0.0f32; n];

        // d(x, x) = 0 exactly — the fused (a−b) term is an exact zero in
        // every lane, so no rounding can leak in, in either precision.
        assert_eq!(lanes::sq_euclidean(&x, &x), 0.0);
        assert_eq!(lanes::sq_euclidean(&x32, &x32), 0.0f32);
        assert_eq!(lanes::weighted_power_sum(&x, &x, &w, 2.0), 0.0);
        assert_eq!(distance::weighted_minkowski(&x, &x, &w, 3.0), 0.0);
        // Zero against zero, and dot with a zero row, are exact zeros too.
        assert_eq!(lanes::dot(&zero, &x), 0.0);
        assert_eq!(lanes::dot(&z32, &x32), 0.0f32);
        assert_eq!(lanes::sq_euclidean(&zero, &zero), 0.0);
    }
}

/// The tiled backward pass: analytic gradients through the restructured
/// forward (lane-chunked distances, tile-blocked Exact pairs) must match
/// central differences on shapes that straddle the chunk and tile widths —
/// including the degenerate single-prototype model.
#[test]
fn tiled_backward_matches_numeric_gradients_on_awkward_shapes() {
    let mut rng = StdRng::seed_from_u64(405);
    // (M, N, K): non-multiple-of-4 widths, M crossing the 64-record pair
    // tile, and K = 1 (single prototype — softmax weight is exactly 1).
    for &(m, n, k) in &[(7usize, 3usize, 2usize), (11, 5, 1), (66, 4, 3)] {
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.05..0.95)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut protected = vec![false; n];
        protected[n - 1] = true;
        let config = IFairConfig {
            k,
            lambda: 0.8,
            mu: 1.2,
            fairness_pairs: FairnessPairs::Exact,
            ..Default::default()
        };
        let obj = IFairObjective::new(&x, &protected, &config);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.1..0.9)).collect();
        let report = check_gradient(&obj, &theta, 1e-6);
        assert!(report.passes(5e-5), "m={m} n={n} k={k}: {report:?}");
    }
}

/// The f32 serving transform: tolerance-bounded against f64 and bit-
/// identical across pool sizes, on shapes straddling the 64-row transform
/// chunk — including a zero row and a single-prototype model.
#[test]
fn f32_serving_transform_conforms_on_random_shapes() {
    use ifair_core::par::WorkerPool;
    use ifair_core::IFair;

    let mut rng = StdRng::seed_from_u64(406);
    for &(m, n, k) in &[(9usize, 3usize, 2usize), (65, 4, 1), (130, 5, 4)] {
        let mut rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        rows[m / 2] = vec![0.0; n]; // an all-zero record must not NaN
        let x = Matrix::from_rows(rows).unwrap();
        let mut protected = vec![false; n];
        protected[n - 1] = true;
        let config = IFairConfig {
            k,
            max_iters: 10,
            n_restarts: 1,
            ..Default::default()
        };
        let model = IFair::fit(&x, &protected, &config).unwrap();
        let low = model.to_f32();
        assert_eq!(low.precision(), Precision::F32);
        assert_eq!((low.n_prototypes(), low.n_features()), (k, n));

        let full = model.transform(&x);
        let half = low.transform_on(&x, None);
        assert_eq!(half.shape(), full.shape());
        for (a, b) in half.as_slice().iter().zip(full.as_slice()) {
            assert!(a.is_finite());
            assert!((a - b).abs() < 1e-4, "m={m} k={k}: {a} vs {b}");
        }

        let baseline: Vec<u64> = half.as_slice().iter().map(|v| v.to_bits()).collect();
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = low.transform_on(&x, Some(&pool));
            let bits: Vec<u64> = pooled.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits, baseline,
                "m={m} threads={threads}: f32 not pool-invariant"
            );
        }
    }
}
