//! Determinism and contract tests of the mini-batch training path:
//! thread-count invariance of whole fits, streaming-vs-in-memory equality,
//! epoch observation and early stop, and pair-budget clamp surfacing.

use ifair_core::{FairnessPairs, FitControl, FitStrategy, IFair, IFairConfig};
use ifair_data::generators::large::{LargeScale, LargeScaleConfig};
use ifair_data::stream::RecordSource;
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 300 records x 5 features (last protected): big enough to clear both pool
/// engagement thresholds with a 128-record, 600-pair batch.
fn training_data() -> (Matrix, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(11);
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|_| {
            let mut row: Vec<f64> = (0..4).map(|_| rng.gen_range(0.0..1.0)).collect();
            row.push(f64::from(rng.gen_bool(0.4)));
            row
        })
        .collect();
    let protected = vec![false, false, false, false, true];
    (Matrix::from_rows(rows).unwrap(), protected)
}

fn minibatch_config(n_threads: usize) -> IFairConfig {
    IFairConfig {
        k: 4,
        n_restarts: 2,
        n_threads,
        strategy: FitStrategy::MiniBatch {
            batch_records: 128,
            pairs_per_batch: 600,
            epochs: 2,
            learning_rate: 0.05,
        },
        ..Default::default()
    }
}

fn model_bits(model: &IFair) -> (Vec<u64>, Vec<u64>) {
    (
        model.alpha().iter().map(|v| v.to_bits()).collect(),
        model
            .prototypes()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
    )
}

#[test]
fn same_seed_same_model_across_thread_counts() {
    let (x, protected) = training_data();
    let reference = IFair::fit(&x, &protected, &minibatch_config(1)).unwrap();
    let ref_bits = model_bits(&reference);
    for threads in [2usize, 4] {
        let model = IFair::fit(&x, &protected, &minibatch_config(threads)).unwrap();
        assert_eq!(
            ref_bits,
            model_bits(&model),
            "mini-batch fit differs at {threads} threads"
        );
    }
}

#[test]
fn same_seed_same_model_across_runs() {
    let (x, protected) = training_data();
    let a = IFair::fit(&x, &protected, &minibatch_config(0)).unwrap();
    let b = IFair::fit(&x, &protected, &minibatch_config(0)).unwrap();
    assert_eq!(model_bits(&a), model_bits(&b));
    assert_eq!(
        a.report().best().loss.to_bits(),
        b.report().best().loss.to_bits()
    );
}

#[test]
fn streaming_source_matches_in_memory_fit_bitwise() {
    // Fitting from the on-demand generator must equal fitting the
    // materialized matrix: the sampler sees the same rows either way.
    let gen = LargeScale::new(LargeScaleConfig {
        n_records: 400,
        n_numeric: 6,
        seed: 3,
        ..Default::default()
    });
    let protected = gen.protected_flags();
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 64,
            pairs_per_batch: 200,
            epochs: 2,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let mut source = gen.clone();
    let streamed = IFair::fit_source(&mut source, &protected, &config).unwrap();
    let materialized = gen.materialize(0, 400).unwrap();
    let in_memory = IFair::fit(&materialized.x, &protected, &config).unwrap();
    assert_eq!(model_bits(&streamed), model_bits(&in_memory));
}

#[test]
fn fit_source_rejects_full_batch_strategy() {
    let gen = LargeScale::new(LargeScaleConfig {
        n_records: 100,
        n_numeric: 4,
        ..Default::default()
    });
    let protected = gen.protected_flags();
    let config = IFairConfig {
        strategy: FitStrategy::FullBatch,
        ..Default::default()
    };
    let mut source = gen;
    assert!(matches!(
        IFair::fit_source(&mut source, &protected, &config),
        Err(ifair_core::FitError::Config(_))
    ));
}

#[test]
fn epoch_observer_sees_every_epoch_and_can_stop() {
    let (x, protected) = training_data();
    let config = IFairConfig {
        n_restarts: 2,
        ..minibatch_config(1)
    };

    // Builder path: the on_epoch callback fires with finite losses.
    let model = IFair::builder()
        .n_prototypes(4)
        .n_threads(1)
        .n_restarts(2)
        .strategy(config.strategy)
        .on_epoch(|e| {
            assert!(e.mean_batch_loss.is_finite());
            FitControl::Continue
        })
        .fit_matrix(&x, &protected)
        .unwrap();
    assert_eq!(model.report().restarts.len(), 2);

    let mut events = Vec::new();
    IFair::fit_with_observers(
        &x,
        &protected,
        &config,
        |_| FitControl::Continue,
        |e| {
            events.push((e.restart, e.epoch, e.n_epochs, e.steps));
            FitControl::Continue
        },
    )
    .unwrap();
    // 300 records / 128-record batches -> 3 steps per epoch.
    assert_eq!(
        events,
        vec![(0, 0, 2, 3), (0, 1, 2, 3), (1, 0, 2, 3), (1, 1, 2, 3)]
    );

    // Early stop after the very first epoch ends the whole fit.
    let mut n_events = 0usize;
    let stopped = IFair::fit_with_observers(
        &x,
        &protected,
        &config,
        |_| FitControl::Continue,
        |_| {
            n_events += 1;
            FitControl::Stop
        },
    )
    .unwrap();
    assert_eq!(n_events, 1);
    assert_eq!(stopped.report().restarts.len(), 1);
}

#[test]
fn minibatch_training_improves_over_initialization() {
    let (x, protected) = training_data();
    let mut first = f64::NAN;
    let mut last = f64::NAN;
    let config = IFairConfig {
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 128,
            pairs_per_batch: 600,
            epochs: 8,
            learning_rate: 0.05,
        },
        ..minibatch_config(0)
    };
    IFair::fit_with_observers(
        &x,
        &protected,
        &config,
        |_| FitControl::Continue,
        |e| {
            if e.epoch == 0 {
                first = e.mean_batch_loss;
            }
            last = e.mean_batch_loss;
            FitControl::Continue
        },
    )
    .unwrap();
    assert!(
        last < first,
        "mean batch loss should fall: first epoch {first}, last epoch {last}"
    );
}

#[test]
fn subsampled_clamp_is_surfaced_in_the_report() {
    let (x, protected) = training_data();
    let total = 300 * 299 / 2;

    // Full-batch: ask for more pairs than exist -> clamped and flagged.
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        max_iters: 5,
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: total + 1 },
        ..Default::default()
    };
    let model = IFair::fit(&x, &protected, &config).unwrap();
    assert_eq!(model.report().n_pairs, total);
    assert_eq!(model.report().n_pairs_requested, Some(total + 1));
    assert!(model.report().pairs_clamped());

    // A satisfiable budget is recorded but not flagged.
    let config = IFairConfig {
        fairness_pairs: FairnessPairs::Subsampled { n_pairs: 500 },
        ..config
    };
    let model = IFair::fit(&x, &protected, &config).unwrap();
    assert_eq!(model.report().n_pairs, 500);
    assert_eq!(model.report().n_pairs_requested, Some(500));
    assert!(!model.report().pairs_clamped());

    // Exact pairs: no budget was requested, nothing to flag.
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        max_iters: 5,
        ..Default::default()
    };
    let model = IFair::fit(&x, &protected, &config).unwrap();
    assert_eq!(model.report().n_pairs_requested, None);
    assert!(!model.report().pairs_clamped());

    // Mini-batch: a per-batch budget above B(B-1)/2 clamps and is flagged.
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 16,
            pairs_per_batch: 10_000,
            epochs: 1,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let model = IFair::fit(&x, &protected, &config).unwrap();
    assert_eq!(model.report().n_pairs, 16 * 15 / 2);
    assert_eq!(model.report().n_pairs_requested, Some(10_000));
    assert!(model.report().pairs_clamped());
}

#[test]
fn csv_source_feeds_the_trainer() {
    // End to end: write a numeric CSV, stream it back, fit mini-batch on it,
    // and match the in-memory fit bit for bit.
    let (x, protected) = training_data();
    let mut csv = String::from("a,b,c,d,p\n");
    for i in 0..x.rows() {
        // Rust's float Display is shortest-round-trip, so parsing the CSV
        // recovers every value bit-exactly.
        let row: Vec<String> = x.row(i).iter().map(f64::to_string).collect();
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    let mut source =
        ifair_data::CsvRecordSource::from_reader(std::io::Cursor::new(csv.into_bytes())).unwrap();
    assert_eq!(source.n_records(), x.rows());
    let config = IFairConfig {
        k: 3,
        n_restarts: 1,
        strategy: FitStrategy::MiniBatch {
            batch_records: 64,
            pairs_per_batch: 200,
            epochs: 1,
            learning_rate: 0.05,
        },
        ..Default::default()
    };
    let streamed = IFair::fit_source(&mut source, &protected, &config).unwrap();
    let in_memory = IFair::fit(&x, &protected, &config).unwrap();
    assert_eq!(model_bits(&streamed), model_bits(&in_memory));
}
