//! Property-style tests of the iFair core over seeded random instances (the
//! offline toolchain has no proptest): metric axioms of the weighted
//! Minkowski distance, analytic-gradient correctness, and serial-vs-parallel
//! kernel parity.

use ifair_core::distance::{weighted_minkowski, weighted_power_sum};
use ifair_core::{FairnessDistance, FairnessPairs, IFairConfig, IFairObjective, SoftmaxDistance};
use ifair_linalg::Matrix;
use ifair_optim::numgrad::check_gradient;
use ifair_optim::{Lbfgs, LbfgsConfig, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn vec3(rng: &mut StdRng) -> Vec<f64> {
    (0..3).map(|_| rng.gen_range(-3.0..3.0)).collect()
}

fn weights3(rng: &mut StdRng) -> Vec<f64> {
    (0..3).map(|_| rng.gen_range(0.01..2.0)).collect()
}

#[test]
fn minkowski_metric_axioms() {
    let mut rng = StdRng::seed_from_u64(301);
    for case in 0..128 {
        let (x, y, z) = (vec3(&mut rng), vec3(&mut rng), vec3(&mut rng));
        let alpha = weights3(&mut rng);
        let p = [1.0, 1.5, 2.0, 3.0][case % 4];
        let d = |a: &[f64], b: &[f64]| weighted_minkowski(a, b, &alpha, p);
        // Identity of indiscernibles (one direction) and non-negativity.
        assert!(d(&x, &x).abs() < 1e-12);
        assert!(d(&x, &y) >= 0.0);
        // Symmetry.
        assert!((d(&x, &y) - d(&y, &x)).abs() < 1e-12);
        // Triangle inequality (Minkowski is a metric for p >= 1).
        assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z) + 1e-9, "p={p}");
    }
}

#[test]
fn power_sum_consistent_with_distance() {
    let mut rng = StdRng::seed_from_u64(302);
    for case in 0..128 {
        let (x, y) = (vec3(&mut rng), vec3(&mut rng));
        let alpha = weights3(&mut rng);
        let p = [1.0, 2.0, 3.0][case % 3];
        let s = weighted_power_sum(&x, &y, &alpha, p);
        let d = weighted_minkowski(&x, &y, &alpha, p);
        assert!((s.powf(1.0 / p) - d).abs() < 1e-9, "p={p}");
    }
}

#[test]
fn distance_monotone_in_weights() {
    let mut rng = StdRng::seed_from_u64(303);
    for _ in 0..128 {
        let (x, y) = (vec3(&mut rng), vec3(&mut rng));
        let alpha = weights3(&mut rng);
        let scale = rng.gen_range(1.0..4.0);
        // Scaling all weights up cannot shrink the distance.
        let bigger: Vec<f64> = alpha.iter().map(|w| w * scale).collect();
        let d1 = weighted_minkowski(&x, &y, &alpha, 2.0);
        let d2 = weighted_minkowski(&x, &y, &bigger, 2.0);
        assert!(d2 + 1e-12 >= d1);
    }
}

/// Random 5–8 × 4 matrix with entries in (0.05, 0.95) plus a seed.
fn small_instance(rng: &mut StdRng) -> (Matrix, u64) {
    let m = rng.gen_range(5..9usize);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..4).map(|_| rng.gen_range(0.05..0.95)).collect())
        .collect();
    let seed = rng.gen_range(0..10_000u64);
    (Matrix::from_rows(rows).unwrap(), seed)
}

/// The analytic gradient must agree with central differences on random
/// instances — not just the hand-picked unit-test points.
#[test]
fn analytic_gradient_correct_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(304);
    let mut case = 0;
    for softmax in [SoftmaxDistance::PowerSum, SoftmaxDistance::Rooted] {
        for fairness in [FairnessDistance::Unweighted, FairnessDistance::Weighted] {
            for _ in 0..6 {
                case += 1;
                let (x, seed) = small_instance(&mut rng);
                let config = IFairConfig {
                    k: 3,
                    lambda: 0.8,
                    mu: 1.2,
                    softmax_distance: softmax,
                    fairness_distance: fairness,
                    fairness_pairs: FairnessPairs::Exact,
                    seed,
                    ..Default::default()
                };
                let obj = IFairObjective::new(&x, &[false, false, false, true], &config);
                let mut trng = StdRng::seed_from_u64(seed);
                let theta: Vec<f64> = (0..obj.dim()).map(|_| trng.gen_range(0.1..0.9)).collect();
                let report = check_gradient(&obj, &theta, 1e-6);
                assert!(
                    report.passes(5e-5),
                    "case {case} sm={softmax:?} fd={fairness:?}: {report:?}"
                );
            }
        }
    }
}

/// Numeric-gradient cross-check at a single random point with the paper's
/// default configuration, to a tight 1e-5 relative tolerance.
#[test]
fn numgrad_cross_check_at_random_point() {
    let mut rng = StdRng::seed_from_u64(305);
    let m = 12;
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..5).map(|_| rng.gen_range(0.05..0.95)).collect())
        .collect();
    let x = Matrix::from_rows(rows).unwrap();
    let config = IFairConfig {
        k: 4,
        ..Default::default()
    };
    let obj = IFairObjective::new(&x, &[false, false, false, false, true], &config);
    let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.1..0.9)).collect();
    let report = check_gradient(&obj, &theta, 1e-6);
    assert!(report.passes(1e-5), "{report:?}");
}

/// The objective is non-negative and zero only in degenerate cases.
#[test]
fn objective_is_non_negative() {
    let mut rng = StdRng::seed_from_u64(306);
    for _ in 0..24 {
        let (x, seed) = small_instance(&mut rng);
        let config = IFairConfig {
            k: 2,
            seed,
            ..Default::default()
        };
        let obj = IFairObjective::new(&x, &[false, false, false, true], &config);
        let mut trng = StdRng::seed_from_u64(seed ^ 1);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| trng.gen_range(0.0..1.0)).collect();
        assert!(obj.value(&theta) >= 0.0);
    }
}

/// Serial-vs-parallel parity for the full objective evaluation — forward
/// pass, pairwise `L_fair` kernel, and backprop all run through the worker
/// pool at this size (M = 200 ≥ the record threshold, 19 900 pairs ≥ the
/// pair threshold) — for 1, 2 and 4 worker threads. The issue's contract is
/// agreement to ≤ 1e-10; the implementation guarantees bit-identity.
#[test]
fn parallel_kernel_matches_serial() {
    let mut rng = StdRng::seed_from_u64(307);
    let (m, n) = (200, 10);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let x = Matrix::from_rows(rows).unwrap();
    let mut protected = vec![false; n];
    protected[n - 1] = true;

    for fairness in [FairnessDistance::Unweighted, FairnessDistance::Weighted] {
        let config = IFairConfig {
            k: 5,
            lambda: 0.7,
            mu: 1.3,
            fairness_distance: fairness,
            fairness_pairs: FairnessPairs::Exact, // 19900 pairs — parallel path engages
            n_threads: 1,
            ..Default::default()
        };
        let serial = IFairObjective::new(&x, &protected, &config);
        assert_eq!(serial.n_threads(), 1);
        let theta: Vec<f64> = (0..serial.dim()).map(|_| rng.gen_range(0.1..0.9)).collect();

        let v_serial = serial.value(&theta);
        let mut g_serial = vec![0.0; serial.dim()];
        let vg_serial = serial.value_and_gradient(&theta, &mut g_serial);
        assert!((v_serial - vg_serial).abs() < 1e-12);

        for threads in [1usize, 2, 4] {
            let par = IFairObjective::new(&x, &protected, &config).with_threads(threads);
            assert_eq!(par.n_threads(), threads);
            let v_par = par.value(&theta);
            let mut g_par = vec![0.0; par.dim()];
            let vg_par = par.value_and_gradient(&theta, &mut g_par);

            // The issue's contract: agreement to ≤ 1e-10.
            let tol = 1e-10;
            let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1.0);
            assert!(
                rel(v_serial, v_par) <= tol,
                "{fairness:?} threads={threads}: loss {v_serial} vs {v_par}"
            );
            assert!(rel(vg_serial, vg_par) <= tol);
            for (i, (gs, gp)) in g_serial.iter().zip(&g_par).enumerate() {
                assert!(
                    rel(*gs, *gp) <= tol,
                    "{fairness:?} threads={threads}: grad[{i}] {gs} vs {gp}"
                );
            }

            // The implementation actually guarantees more: the chunk layout
            // and fold order are thread-count-invariant, so the results are
            // bit-identical. Pin that so reproducibility regressions fail
            // loudly rather than hiding under the tolerance.
            assert_eq!(
                v_serial.to_bits(),
                v_par.to_bits(),
                "{fairness:?} threads={threads}: loss not bit-identical"
            );
            assert_eq!(
                g_serial.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                g_par.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                "{fairness:?} threads={threads}: gradient not bit-identical"
            );
        }
    }
}

/// `build_pairs` target distances are filled through the pool for
/// `Exact`/`Anchored` pair sets at this size; the pair list (indices *and*
/// target bits) must be identical for every thread count.
#[test]
fn pair_building_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(308);
    let (m, n) = (200, 10);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let x = Matrix::from_rows(rows).unwrap();
    let mut protected = vec![false; n];
    protected[n - 1] = true;

    for pairs_spec in [
        FairnessPairs::Exact,
        FairnessPairs::Anchored { n_anchors: 5 },
        FairnessPairs::Subsampled { n_pairs: 2_000 },
    ] {
        let config = IFairConfig {
            k: 4,
            fairness_pairs: pairs_spec,
            n_threads: 1,
            ..Default::default()
        };
        let serial = IFairObjective::new(&x, &protected, &config);
        assert!(
            serial.pairs().len() >= 512,
            "{pairs_spec:?}: pair set too small to engage the pool"
        );
        for threads in [2usize, 4] {
            let threaded_config = IFairConfig {
                n_threads: threads,
                ..config.clone()
            };
            let threaded = IFairObjective::new(&x, &protected, &threaded_config);
            assert_eq!(
                serial.pairs().len(),
                threaded.pairs().len(),
                "{pairs_spec:?}"
            );
            for (a, b) in serial.pairs().iter().zip(threaded.pairs()) {
                assert_eq!((a.i, a.j), (b.i, b.j), "{pairs_spec:?} threads={threads}");
                assert_eq!(
                    a.target.to_bits(),
                    b.target.to_bits(),
                    "{pairs_spec:?} threads={threads}: target not bit-identical"
                );
            }
        }
    }
}

/// Seeded fuzz over random problem shapes: whatever chunk layout the
/// tiled `L_fair` kernel picks for a given `(M, pair count)` — including
/// shapes that straddle the record-chunk, pair-chunk, and pair-tile
/// boundaries — the pooled loss *and* gradient must be bit-identical to
/// the serial kernel at 1, 2 and 4 threads.
#[test]
fn fuzz_random_chunk_layouts_keep_loss_and_gradient_bit_identical() {
    let mut rng = StdRng::seed_from_u64(310);
    for round in 0..8 {
        // Sizes straddle 64-record chunks / 64-record pair tiles (63..194)
        // and swing the Exact pair count across the 512-pair chunk width.
        let m = rng.gen_range(63..195usize);
        let n = rng.gen_range(3..7usize);
        let k = rng.gen_range(2..5usize);
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut protected = vec![false; n];
        protected[n - 1] = true;
        let config = IFairConfig {
            k,
            lambda: 0.9,
            mu: 1.1,
            fairness_pairs: FairnessPairs::Exact,
            n_threads: 1,
            ..Default::default()
        };
        let serial = IFairObjective::new(&x, &protected, &config);
        let theta: Vec<f64> = (0..serial.dim()).map(|_| rng.gen_range(0.1..0.9)).collect();
        let v_serial = serial.value(&theta);
        let mut g_serial = vec![0.0; serial.dim()];
        serial.value_and_gradient(&theta, &mut g_serial);

        for threads in [1usize, 2, 4] {
            let par = IFairObjective::new(&x, &protected, &config).with_threads(threads);
            let v_par = par.value(&theta);
            let mut g_par = vec![0.0; par.dim()];
            par.value_and_gradient(&theta, &mut g_par);
            assert_eq!(
                v_serial.to_bits(),
                v_par.to_bits(),
                "round {round} m={m} n={n} k={k} threads={threads}: loss drifted"
            );
            assert_eq!(
                g_serial.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                g_par.iter().map(|g| g.to_bits()).collect::<Vec<_>>(),
                "round {round} m={m} n={n} k={k} threads={threads}: gradient drifted"
            );
        }
    }
}

/// The persistent pool and workspace are reused across everything a fit
/// does: two consecutive L-BFGS runs on ONE objective (the shape of two
/// restarts, or two `fit()` calls sharing an objective) must land on
/// bit-identical iterates — reuse may never leak state between runs.
#[test]
fn consecutive_optimizer_runs_on_one_objective_are_identical() {
    let mut rng = StdRng::seed_from_u64(309);
    let (m, n) = (150, 6);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let x = Matrix::from_rows(rows).unwrap();
    let mut protected = vec![false; n];
    protected[n - 1] = true;
    let config = IFairConfig {
        k: 3,
        n_threads: 4,
        ..Default::default()
    };
    let objective = IFairObjective::new(&x, &protected, &config);
    assert_eq!(objective.n_threads(), 4);
    let theta0: Vec<f64> = (0..objective.dim())
        .map(|_| rng.gen_range(0.1..0.9))
        .collect();
    let optimizer = Lbfgs::new(LbfgsConfig {
        max_iters: 25,
        ..Default::default()
    });

    let first = optimizer.minimize(&objective, theta0.clone());
    let second = optimizer.minimize(&objective, theta0);
    assert_eq!(first.value.to_bits(), second.value.to_bits());
    assert_eq!(first.iterations, second.iterations);
    let first_bits: Vec<u64> = first.x.iter().map(|v| v.to_bits()).collect();
    let second_bits: Vec<u64> = second.x.iter().map(|v| v.to_bits()).collect();
    assert_eq!(first_bits, second_bits);
}
