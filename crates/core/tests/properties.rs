//! Property-based tests of the iFair core: metric axioms of the weighted
//! Minkowski distance, analytic-gradient correctness on random instances,
//! and invariants of the learned transformation.

use ifair_core::distance::{weighted_minkowski, weighted_power_sum};
use ifair_core::{
    FairnessDistance, FairnessPairs, IFairConfig, IFairObjective, SoftmaxDistance,
};
use ifair_linalg::Matrix;
use ifair_optim::numgrad::check_gradient;
use ifair_optim::Objective;
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-3.0f64..3.0, 3)
}

fn weights3() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..2.0, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn minkowski_metric_axioms(
        x in vec3(), y in vec3(), z in vec3(), alpha in weights3(),
        p in prop::sample::select(vec![1.0, 1.5, 2.0, 3.0]),
    ) {
        let d = |a: &[f64], b: &[f64]| weighted_minkowski(a, b, &alpha, p);
        // Identity of indiscernibles (one direction) and non-negativity.
        prop_assert!(d(&x, &x).abs() < 1e-12);
        prop_assert!(d(&x, &y) >= 0.0);
        // Symmetry.
        prop_assert!((d(&x, &y) - d(&y, &x)).abs() < 1e-12);
        // Triangle inequality (Minkowski is a metric for p >= 1).
        prop_assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z) + 1e-9);
    }

    #[test]
    fn power_sum_consistent_with_distance(
        x in vec3(), y in vec3(), alpha in weights3(),
        p in prop::sample::select(vec![1.0, 2.0, 3.0]),
    ) {
        let s = weighted_power_sum(&x, &y, &alpha, p);
        let d = weighted_minkowski(&x, &y, &alpha, p);
        prop_assert!((s.powf(1.0 / p) - d).abs() < 1e-9);
    }

    #[test]
    fn distance_monotone_in_weights(
        x in vec3(), y in vec3(), alpha in weights3(), scale in 1.0f64..4.0,
    ) {
        // Scaling all weights up cannot shrink the distance.
        let bigger: Vec<f64> = alpha.iter().map(|w| w * scale).collect();
        let d1 = weighted_minkowski(&x, &y, &alpha, 2.0);
        let d2 = weighted_minkowski(&x, &y, &bigger, 2.0);
        prop_assert!(d2 + 1e-12 >= d1);
    }
}

fn small_instance() -> impl Strategy<Value = (Vec<Vec<f64>>, u64)> {
    (
        proptest::collection::vec(proptest::collection::vec(0.05f64..0.95, 4), 5..9),
        0u64..10_000,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The analytic gradient must agree with central differences on random
    /// instances — not just the hand-picked unit-test points.
    #[test]
    fn analytic_gradient_correct_on_random_instances(
        (rows, seed) in small_instance(),
        softmax in prop::sample::select(vec![SoftmaxDistance::PowerSum, SoftmaxDistance::Rooted]),
        fairness in prop::sample::select(vec![FairnessDistance::Unweighted, FairnessDistance::Weighted]),
    ) {
        let x = Matrix::from_rows(rows).unwrap();
        let config = IFairConfig {
            k: 3,
            lambda: 0.8,
            mu: 1.2,
            softmax_distance: softmax,
            fairness_distance: fairness,
            fairness_pairs: FairnessPairs::Exact,
            seed,
            ..Default::default()
        };
        let obj = IFairObjective::new(&x, &[false, false, false, true], &config);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.1..0.9)).collect();
        let report = check_gradient(&obj, &theta, 1e-6);
        prop_assert!(report.passes(5e-5), "{report:?}");
    }

    /// The objective is non-negative and zero only in degenerate cases.
    #[test]
    fn objective_is_non_negative((rows, seed) in small_instance()) {
        let x = Matrix::from_rows(rows).unwrap();
        let config = IFairConfig { k: 2, seed, ..Default::default() };
        let obj = IFairObjective::new(&x, &[false, false, false, true], &config);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let theta: Vec<f64> = (0..obj.dim()).map(|_| rng.gen_range(0.0..1.0)).collect();
        prop_assert!(obj.value(&theta) >= 0.0);
    }
}
