//! `.ifb` — the versioned binary dataset format for out-of-core training.
//!
//! A dataset is a set of *shard* files, each fully self-describing:
//!
//! ```text
//! offset  size          contents
//! 0       8             magic  b"IFAIRBIN"
//! 8       4             format version, u32 little-endian (currently 1)
//! 12      4             header length H in bytes, u32 little-endian
//! 16      H             header, JSON (BinShardHeader)
//! 16+H    0..7          zero padding to the next multiple of 8
//! P       rows*cols*8   payload: f64 little-endian, row-major
//! ```
//!
//! The header names the shard's absolute row range (`row_lo`, `n_rows`),
//! the feature width and names, and per-column min/max/mean stats. Because
//! every shard carries its own range, a sharded dataset is just the set of
//! files whose ranges tile `0..M` — there is no index file to corrupt.
//!
//! [`BinDatasetWriter`] streams rows in and emits shards through
//! [`crate::persist::write_atomic`], so a crash mid-conversion leaves only
//! complete shards. [`BinRecordSource`] implements [`RecordSource`] with
//! positioned reads (`pread` on Unix): resident memory per open shard is
//! one header plus one row buffer, independent of the dataset size — the
//! property the out-of-core trainer relies on.
//!
//! Malformed input (bad magic, truncated payload, inconsistent headers)
//! surfaces as a typed [`DataError`]; an unknown format version is
//! [`DataError::Version`]. Nothing in this module panics on file content.

use crate::error::DataError;
use crate::stream::RecordSource;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// First 8 bytes of every shard file.
pub const MAGIC: [u8; 8] = *b"IFAIRBIN";

/// The format version this build writes and the only one it reads.
pub const VERSION: u32 = 1;

/// Fixed part of the file prelude: magic + version + header length.
const PRELUDE_LEN: u64 = 16;

/// Largest header this build will attempt to parse (a corrupt length field
/// should fail fast, not allocate gigabytes).
const MAX_HEADER_LEN: u32 = 16 << 20;

/// Default rows per shard for writers that do not choose one: 256k rows of
/// a 16-column dataset is a ~32 MiB shard.
pub const DEFAULT_SHARD_ROWS: usize = 262_144;

/// Per-column summary statistics over one shard's rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Smallest value in the column.
    pub min: f64,
    /// Largest value in the column.
    pub max: f64,
    /// Arithmetic mean of the column (summed in row order).
    pub mean: f64,
}

/// The JSON header of one `.ifb` shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinShardHeader {
    /// Absolute index of this shard's first row in the full dataset.
    pub row_lo: u64,
    /// Number of rows stored in this shard.
    pub n_rows: u64,
    /// Feature width of every row.
    pub n_features: u64,
    /// Column names, `n_features` of them.
    pub feature_names: Vec<String>,
    /// Per-column stats over this shard's rows, when the writer computed
    /// them (this build always does).
    pub stats: Option<Vec<ColumnStats>>,
}

/// Byte geometry of a parsed shard file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardGeometry {
    /// Offset of the first payload byte.
    pub payload_offset: u64,
    /// Total file length in bytes.
    pub file_len: u64,
}

/// The path of shard `index` for an output stem: `{stem}.{index:05}.ifb`
/// (a trailing `.ifb` on the stem is dropped first, so `--out data.ifb`
/// produces `data.00000.ifb`).
pub fn shard_path(stem: &Path, index: usize) -> PathBuf {
    let s = stem.to_string_lossy();
    let base = s.strip_suffix(".ifb").unwrap_or(&s);
    PathBuf::from(format!("{base}.{index:05}.ifb"))
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> DataError {
    DataError::Parse(format!("{context} {}: {e}", path.display()))
}

/// Reads and validates one shard's prelude and header, without touching
/// the payload — the `ifair inspect` entry point, and the first step of
/// [`BinRecordSource::open`].
pub fn read_shard_header(path: &Path) -> Result<(BinShardHeader, ShardGeometry), DataError> {
    let mut file = File::open(path).map_err(|e| io_err("cannot open", path, e))?;
    let header = parse_prelude(&mut file, path)?;
    let geometry = validate_geometry(&header.0, header.1, &file, path)?;
    Ok((header.0, geometry))
}

/// Parses magic, version and header JSON; returns the header and its
/// padded end offset (= payload offset).
fn parse_prelude(file: &mut File, path: &Path) -> Result<(BinShardHeader, u64), DataError> {
    let mut prelude = [0u8; PRELUDE_LEN as usize];
    file.read_exact(&mut prelude).map_err(|_| {
        DataError::Schema(format!(
            "{} is too short to be an iFair binary dataset shard",
            path.display()
        ))
    })?;
    if prelude[..8] != MAGIC {
        return Err(DataError::Schema(format!(
            "{} is not an iFair binary dataset shard (bad magic)",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(prelude[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(DataError::Version {
            found: version,
            supported: VERSION,
        });
    }
    let header_len = u32::from_le_bytes(prelude[12..16].try_into().expect("4 bytes"));
    if header_len == 0 || header_len > MAX_HEADER_LEN {
        return Err(DataError::Schema(format!(
            "{} declares an implausible header length of {header_len} bytes",
            path.display()
        )));
    }
    let mut header_bytes = vec![0u8; header_len as usize];
    file.read_exact(&mut header_bytes).map_err(|_| {
        DataError::Schema(format!("{} is truncated inside its header", path.display()))
    })?;
    let json = std::str::from_utf8(&header_bytes)
        .map_err(|_| DataError::Parse(format!("{} header is not UTF-8", path.display())))?;
    let header: BinShardHeader = serde_json::from_str(json)
        .map_err(|e| DataError::Parse(format!("{} header: {e}", path.display())))?;
    let payload_offset = (PRELUDE_LEN + u64::from(header_len)).next_multiple_of(8);
    Ok((header, payload_offset))
}

/// Checks the header's internal consistency and that the file length
/// matches the declared payload exactly.
fn validate_geometry(
    header: &BinShardHeader,
    payload_offset: u64,
    file: &File,
    path: &Path,
) -> Result<ShardGeometry, DataError> {
    if header.n_features == 0 {
        return Err(DataError::Schema(format!(
            "{} declares zero features",
            path.display()
        )));
    }
    if header.feature_names.len() as u64 != header.n_features {
        return Err(DataError::Schema(format!(
            "{} names {} columns but declares {} features",
            path.display(),
            header.feature_names.len(),
            header.n_features
        )));
    }
    if let Some(stats) = &header.stats {
        if stats.len() as u64 != header.n_features {
            return Err(DataError::Schema(format!(
                "{} carries {} column stats for {} features",
                path.display(),
                stats.len(),
                header.n_features
            )));
        }
    }
    let file_len = file
        .metadata()
        .map_err(|e| io_err("cannot stat", path, e))?
        .len();
    let payload_len = header
        .n_rows
        .checked_mul(header.n_features)
        .and_then(|c| c.checked_mul(8))
        .ok_or_else(|| {
            DataError::Schema(format!("{} declares an absurd row count", path.display()))
        })?;
    let expected = payload_offset + payload_len;
    if file_len < expected {
        return Err(DataError::Schema(format!(
            "{} is truncated: {file_len} bytes on disk, {expected} declared \
             ({} rows × {} features)",
            path.display(),
            header.n_rows,
            header.n_features
        )));
    }
    if file_len > expected {
        return Err(DataError::Schema(format!(
            "{} has {} trailing bytes past the declared payload",
            path.display(),
            file_len - expected
        )));
    }
    Ok(ShardGeometry {
        payload_offset,
        file_len,
    })
}

// ------------------------------------------------------------------ writer

/// Streams rows into sharded `.ifb` files.
///
/// Rows accumulate in memory until the shard is full, then the complete
/// shard (prelude + header + payload) is written atomically. Peak memory
/// is one shard's payload, independent of the total row count.
#[derive(Debug)]
pub struct BinDatasetWriter {
    stem: PathBuf,
    names: Vec<String>,
    shard_rows: usize,
    /// Payload of the shard being filled, row-major.
    buf: Vec<f64>,
    /// Absolute index of the current shard's first row.
    row_lo: u64,
    shards: Vec<PathBuf>,
}

impl BinDatasetWriter {
    /// Starts a writer producing `{stem}.{index:05}.ifb` shards of at most
    /// `shard_rows` rows each (0 means [`DEFAULT_SHARD_ROWS`]).
    pub fn create(
        stem: impl Into<PathBuf>,
        feature_names: Vec<String>,
        shard_rows: usize,
    ) -> Result<BinDatasetWriter, DataError> {
        if feature_names.is_empty() {
            return Err(DataError::Schema(
                "a binary dataset needs at least one feature column".into(),
            ));
        }
        let shard_rows = if shard_rows == 0 {
            DEFAULT_SHARD_ROWS
        } else {
            shard_rows
        };
        Ok(BinDatasetWriter {
            stem: stem.into(),
            names: feature_names,
            shard_rows,
            buf: Vec::new(),
            row_lo: 0,
            shards: Vec::new(),
        })
    }

    /// Appends one row; flushes a shard to disk when it fills.
    pub fn push_row(&mut self, row: &[f64]) -> Result<(), DataError> {
        if row.len() != self.names.len() {
            return Err(DataError::Shape(format!(
                "row has {} values, dataset has {} columns",
                row.len(),
                self.names.len()
            )));
        }
        self.buf.extend_from_slice(row);
        if self.buf.len() / self.names.len() >= self.shard_rows {
            self.flush_shard()?;
        }
        Ok(())
    }

    /// Flushes the final partial shard and returns every shard path
    /// written, in row order.
    pub fn finish(mut self) -> Result<Vec<PathBuf>, DataError> {
        if !self.buf.is_empty() {
            self.flush_shard()?;
        }
        if self.shards.is_empty() {
            return Err(DataError::Shape(
                "no rows were written — a dataset needs at least one record".into(),
            ));
        }
        Ok(std::mem::take(&mut self.shards))
    }

    fn flush_shard(&mut self) -> Result<(), DataError> {
        let n = self.names.len();
        let rows = self.buf.len() / n;
        let header = BinShardHeader {
            row_lo: self.row_lo,
            n_rows: rows as u64,
            n_features: n as u64,
            feature_names: self.names.clone(),
            stats: Some(column_stats(&self.buf, n)),
        };
        let json = serde_json::to_string(&header)
            .map_err(|e| DataError::Parse(format!("encoding shard header: {e}")))?;
        let header_bytes = json.as_bytes();
        let payload_offset = (PRELUDE_LEN + header_bytes.len() as u64).next_multiple_of(8);
        let mut bytes = Vec::with_capacity(payload_offset as usize + self.buf.len() * 8);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&(header_bytes.len() as u32).to_le_bytes());
        bytes.extend_from_slice(header_bytes);
        bytes.resize(payload_offset as usize, 0);
        for v in &self.buf {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = shard_path(&self.stem, self.shards.len());
        crate::persist::write_atomic(&path, &bytes)
            .map_err(|e| io_err("cannot write shard", &path, e))?;
        self.shards.push(path);
        self.row_lo += rows as u64;
        self.buf.clear();
        Ok(())
    }
}

/// Min/max/mean per column over a row-major buffer (mean summed in row
/// order, so it is deterministic).
fn column_stats(buf: &[f64], n: usize) -> Vec<ColumnStats> {
    let rows = buf.len() / n;
    let mut stats = vec![
        ColumnStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
        };
        n
    ];
    for row in buf.chunks_exact(n) {
        for (s, &v) in stats.iter_mut().zip(row) {
            s.min = s.min.min(v);
            s.max = s.max.max(v);
            s.mean += v;
        }
    }
    for s in &mut stats {
        s.mean /= rows as f64;
    }
    stats
}

// ------------------------------------------------------------------ reader

/// One open shard of a [`BinRecordSource`].
#[derive(Debug)]
struct Shard {
    file: File,
    row_lo: usize,
    n_rows: usize,
    payload_offset: u64,
}

/// Random-access reader over a set of `.ifb` shards.
///
/// Implements [`RecordSource`] with positioned reads: each `read_rows`
/// call touches only the bytes of the requested rows, so resident memory
/// stays O(1) in the dataset size.
#[derive(Debug)]
pub struct BinRecordSource {
    shards: Vec<Shard>,
    names: Vec<String>,
    n_records: usize,
    n_features: usize,
    /// Reusable byte buffer for one row.
    row_buf: Vec<u8>,
}

impl BinRecordSource {
    /// Opens a sharded dataset. The shards may be given in any order; their
    /// headers must agree on the schema and their row ranges must tile
    /// `0..M` exactly.
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> Result<BinRecordSource, DataError> {
        if paths.is_empty() {
            return Err(DataError::Shape(
                "a binary dataset needs at least one shard file".into(),
            ));
        }
        let mut shards = Vec::with_capacity(paths.len());
        let mut schema: Option<Vec<String>> = None;
        for p in paths {
            let path = p.as_ref();
            let file = File::open(path).map_err(|e| io_err("cannot open", path, e))?;
            let mut f = file;
            let (header, payload_offset) = parse_prelude(&mut f, path)?;
            validate_geometry(&header, payload_offset, &f, path)?;
            match &schema {
                None => schema = Some(header.feature_names.clone()),
                Some(names) if *names != header.feature_names => {
                    return Err(DataError::Schema(format!(
                        "{} disagrees with the other shards on column names",
                        path.display()
                    )));
                }
                Some(_) => {}
            }
            shards.push(Shard {
                file: f,
                row_lo: header.row_lo as usize,
                n_rows: header.n_rows as usize,
                payload_offset,
            });
        }
        shards.sort_by_key(|s| s.row_lo);
        let mut next = 0usize;
        for s in &shards {
            if s.row_lo != next {
                return Err(DataError::Schema(format!(
                    "shard row ranges do not tile the dataset: expected a shard \
                     starting at row {next}, found one starting at {}",
                    s.row_lo
                )));
            }
            next += s.n_rows;
        }
        let names = schema.expect("at least one shard");
        let n_features = names.len();
        Ok(BinRecordSource {
            shards,
            names,
            n_records: next,
            n_features,
            row_buf: vec![0u8; n_features * 8],
        })
    }

    /// Column names, shared by every shard.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// The absolute row range of each shard, in row order.
    pub fn shard_ranges(&self) -> Vec<std::ops::Range<usize>> {
        self.shards
            .iter()
            .map(|s| s.row_lo..s.row_lo + s.n_rows)
            .collect()
    }

    /// Reads absolute row `index` into `out` (exactly one row wide).
    fn read_row(&mut self, index: usize, out: &mut [f64]) -> Result<(), DataError> {
        let shard_idx = self
            .shards
            .partition_point(|s| s.row_lo + s.n_rows <= index);
        let shard = &mut self.shards[shard_idx];
        let offset = shard.payload_offset + ((index - shard.row_lo) * self.n_features * 8) as u64;
        read_at(&mut shard.file, offset, &mut self.row_buf).map_err(|e| {
            DataError::Parse(format!("reading row {index} from a dataset shard: {e}"))
        })?;
        for (v, chunk) in out.iter_mut().zip(self.row_buf.chunks_exact(8)) {
            *v = f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        }
        Ok(())
    }
}

/// Positioned read: `pread` on Unix (no shared cursor), seek+read
/// elsewhere.
fn read_at(file: &mut File, offset: u64, buf: &mut [u8]) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom};
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(buf)
    }
}

impl RecordSource for BinRecordSource {
    fn n_records(&self) -> usize {
        self.n_records
    }

    fn n_features(&self) -> usize {
        self.n_features
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        crate::stream::check_read(
            self.n_records,
            self.n_features,
            indices,
            out,
            "binary source",
        )?;
        let n = self.n_features;
        for (slot, &index) in out.chunks_exact_mut(n).zip(indices) {
            self.read_row(index, slot)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_stem(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ifair-binfmt-{tag}-{}", std::process::id()))
    }

    fn cleanup(paths: &[PathBuf]) {
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    fn write_demo(tag: &str, rows: usize, shard_rows: usize) -> (Vec<PathBuf>, Vec<Vec<f64>>) {
        let names = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let mut writer = BinDatasetWriter::create(tmp_stem(tag), names, shard_rows).unwrap();
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|i| vec![i as f64, -0.5 * i as f64, (i % 7) as f64 / 7.0])
            .collect();
        for row in &data {
            writer.push_row(row).unwrap();
        }
        (writer.finish().unwrap(), data)
    }

    #[test]
    fn roundtrip_across_shards_is_bitwise() {
        let (paths, data) = write_demo("roundtrip", 25, 8);
        assert_eq!(paths.len(), 4, "25 rows at 8/shard");
        let mut source = BinRecordSource::open(&paths).unwrap();
        assert_eq!(source.n_records(), 25);
        assert_eq!(source.n_features(), 3);
        assert_eq!(source.feature_names(), ["a", "b", "c"]);
        // Read rows in scrambled order, crossing shard boundaries.
        let indices = [24, 0, 8, 7, 16, 15, 3];
        let mut out = vec![0.0; indices.len() * 3];
        source.read_rows(&indices, &mut out).unwrap();
        for (slot, &i) in out.chunks_exact(3).zip(&indices) {
            let expect: Vec<u64> = data[i].iter().map(|v| v.to_bits()).collect();
            let got: Vec<u64> = slot.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "row {i}");
        }
        cleanup(&paths);
    }

    #[test]
    fn headers_carry_ranges_and_stats() {
        let (paths, _) = write_demo("headers", 10, 6);
        let (h0, g0) = read_shard_header(&paths[0]).unwrap();
        let (h1, _) = read_shard_header(&paths[1]).unwrap();
        assert_eq!((h0.row_lo, h0.n_rows), (0, 6));
        assert_eq!((h1.row_lo, h1.n_rows), (6, 4));
        assert_eq!(g0.payload_offset % 8, 0);
        let stats = h0.stats.unwrap();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].min, 0.0);
        assert_eq!(stats[0].max, 5.0);
        assert_eq!(stats[0].mean, 2.5);
        cleanup(&paths);
    }

    #[test]
    fn wrong_magic_version_and_truncation_are_typed_errors() {
        let (paths, _) = write_demo("corrupt", 6, 6);
        let good = std::fs::read(&paths[0]).unwrap();

        let check = |bytes: &[u8], tag: &str| {
            let p = tmp_stem(&format!("corrupt-{tag}")).with_extension("ifb");
            std::fs::write(&p, bytes).unwrap();
            let err = BinRecordSource::open(std::slice::from_ref(&p)).unwrap_err();
            std::fs::remove_file(&p).ok();
            err
        };

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(check(&bad_magic, "magic"), DataError::Schema(_)));

        let mut bad_version = good.clone();
        bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            check(&bad_version, "version"),
            DataError::Version {
                found: 7,
                supported: VERSION
            }
        ));

        let truncated = &good[..good.len() - 5];
        assert!(matches!(check(truncated, "trunc"), DataError::Schema(_)));

        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0u8; 3]);
        assert!(matches!(check(&trailing, "trailing"), DataError::Schema(_)));

        assert!(matches!(check(&good[..10], "tiny"), DataError::Schema(_)));

        let mut bad_header = good.clone();
        bad_header[20] = b'!'; // vandalize the header JSON
        assert!(matches!(check(&bad_header, "json"), DataError::Parse(_)));

        cleanup(&paths);
    }

    #[test]
    fn shards_must_tile_and_agree() {
        let (paths, _) = write_demo("tile", 12, 6);
        // Dropping the first shard leaves a gap at row 0.
        let err = BinRecordSource::open(&paths[1..]).unwrap_err();
        assert!(matches!(err, DataError::Schema(_)));
        // Duplicating a shard breaks tiling too.
        let dup = [paths[0].clone(), paths[0].clone(), paths[1].clone()];
        assert!(BinRecordSource::open(&dup).is_err());
        // Shards listed out of order are fine.
        let rev = [paths[1].clone(), paths[0].clone()];
        assert_eq!(BinRecordSource::open(&rev).unwrap().n_records(), 12);
        cleanup(&paths);
    }

    #[test]
    fn writer_rejects_bad_shapes() {
        assert!(BinDatasetWriter::create(tmp_stem("empty"), vec![], 4).is_err());
        let mut w =
            BinDatasetWriter::create(tmp_stem("width"), vec!["a".into(), "b".into()], 4).unwrap();
        assert!(matches!(
            w.push_row(&[1.0]).unwrap_err(),
            DataError::Shape(_)
        ));
        let w2 = BinDatasetWriter::create(tmp_stem("norows"), vec!["a".into()], 4).unwrap();
        assert!(w2.finish().is_err(), "zero rows is an error");
    }

    #[test]
    fn shard_path_strips_ifb_suffix() {
        assert_eq!(
            shard_path(Path::new("data.ifb"), 3),
            PathBuf::from("data.00003.ifb")
        );
        assert_eq!(
            shard_path(Path::new("out/data"), 0),
            PathBuf::from("out/data.00000.ifb")
        );
    }
}
