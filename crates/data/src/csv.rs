//! Minimal CSV reading/writing (RFC-4180 subset: quoted fields, embedded
//! commas and quotes; no embedded newlines).
//!
//! This exists so users with licensed copies of the real datasets (COMPAS,
//! Census, ...) can load them into the same pipeline the simulators feed.
//! A schema maps columns to numeric / categorical / protected / outcome /
//! group roles, producing a [`RawDataset`].

use crate::encode::{ColumnData, RawDataset};
use crate::error::DataError;
use std::io::{BufRead, Write};

/// Role of a CSV column in the resulting [`RawDataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnRole {
    /// Real-valued feature column.
    Numeric,
    /// Categorical feature column.
    Categorical,
    /// Protected categorical feature; records whose value equals the given
    /// string form the protected group (`group = 1`).
    Protected {
        /// The attribute value defining the protected group.
        protected_value: String,
    },
    /// Outcome column; records whose value equals the given string get label
    /// 1.0 (any other value gets 0.0). Numeric outcomes can be loaded by
    /// `OutcomeNumeric` instead.
    OutcomeBinary {
        /// The value mapped to label 1.0.
        positive_value: String,
    },
    /// Real-valued outcome column (ranking score).
    OutcomeNumeric,
    /// Column to ignore.
    Skip,
}

/// Schema: column name -> role, applied by [`read_csv`].
#[derive(Debug, Clone)]
pub struct CsvSchema {
    /// `(column name, role)` pairs; columns absent from the file error out.
    pub roles: Vec<(String, ColumnRole)>,
}

/// Splits one CSV line into fields (handles double-quoted fields with
/// embedded commas and `""` escapes).
pub fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Escapes a field for CSV output.
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Reads a CSV with a header row into a [`RawDataset`] according to `schema`.
pub fn read_csv<R: BufRead>(reader: R, schema: &CsvSchema) -> Result<RawDataset, DataError> {
    let mut lines = reader.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| DataError::Parse("empty CSV input".into()))?
        .map_err(|e| DataError::Parse(e.to_string()))?;
    let header = parse_line(&header_line);

    // Resolve schema columns to file positions.
    let mut positions = Vec::with_capacity(schema.roles.len());
    for (name, _) in &schema.roles {
        let pos = header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| DataError::Schema(format!("column {name} not found in CSV header")))?;
        positions.push(pos);
    }

    // Accumulate raw string columns.
    let mut raw_cols: Vec<Vec<String>> = vec![Vec::new(); schema.roles.len()];
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| DataError::Parse(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(&line);
        if fields.len() != header.len() {
            return Err(DataError::Parse(format!(
                "line {} has {} fields, header has {}",
                lineno + 2,
                fields.len(),
                header.len()
            )));
        }
        for (col, &pos) in raw_cols.iter_mut().zip(&positions) {
            col.push(fields[pos].clone());
        }
    }
    let m = raw_cols.first().map_or(0, Vec::len);

    let mut names = Vec::new();
    let mut columns = Vec::new();
    let mut protected = Vec::new();
    let mut y: Option<Vec<f64>> = None;
    let mut group = vec![0u8; m];

    for ((name, role), values) in schema.roles.iter().zip(raw_cols) {
        match role {
            ColumnRole::Skip => {}
            ColumnRole::Numeric => {
                let parsed: Result<Vec<f64>, DataError> = values
                    .iter()
                    .map(|v| {
                        v.trim().parse::<f64>().map_err(|_| {
                            DataError::Parse(format!("non-numeric value '{v}' in column {name}"))
                        })
                    })
                    .collect();
                names.push(name.clone());
                columns.push(ColumnData::Numeric(parsed?));
                protected.push(false);
            }
            ColumnRole::Categorical => {
                names.push(name.clone());
                columns.push(ColumnData::Categorical(values));
                protected.push(false);
            }
            ColumnRole::Protected { protected_value } => {
                for (g, v) in group.iter_mut().zip(&values) {
                    if v == protected_value {
                        *g = 1;
                    }
                }
                names.push(name.clone());
                columns.push(ColumnData::Categorical(values));
                protected.push(true);
            }
            ColumnRole::OutcomeBinary { positive_value } => {
                y = Some(
                    values
                        .iter()
                        .map(|v| if v == positive_value { 1.0 } else { 0.0 })
                        .collect(),
                );
            }
            ColumnRole::OutcomeNumeric => {
                let parsed: Result<Vec<f64>, DataError> = values
                    .iter()
                    .map(|v| {
                        v.trim().parse::<f64>().map_err(|_| {
                            DataError::Parse(format!("non-numeric outcome '{v}' in column {name}"))
                        })
                    })
                    .collect();
                y = Some(parsed?);
            }
        }
    }

    let raw = RawDataset {
        names,
        columns,
        protected,
        y,
        group,
    };
    raw.validate()?;
    Ok(raw)
}

/// Writes a `RawDataset` back out as CSV (feature columns only, plus
/// `__y` / `__group` metadata columns when present).
pub fn write_csv<W: Write>(w: &mut W, raw: &RawDataset) -> std::io::Result<()> {
    let mut header: Vec<String> = raw.names.clone();
    if raw.y.is_some() {
        header.push("__y".into());
    }
    header.push("__group".into());
    writeln!(
        w,
        "{}",
        header
            .iter()
            .map(|h| escape_field(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for i in 0..raw.n_records() {
        let mut fields: Vec<String> = raw
            .columns
            .iter()
            .map(|c| match c {
                ColumnData::Numeric(v) => format!("{}", v[i]),
                ColumnData::Categorical(v) => escape_field(&v[i]),
            })
            .collect();
        if let Some(y) = &raw.y {
            fields.push(format!("{}", y[i]));
        }
        fields.push(format!("{}", raw.group[i]));
        writeln!(w, "{}", fields.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const SAMPLE: &str = "age,city,gender,outcome\n\
        30,\"Berlin, Mitte\",f,yes\n\
        40,Hamburg,m,no\n\
        50,\"He said \"\"hi\"\"\",f,yes\n";

    fn schema() -> CsvSchema {
        CsvSchema {
            roles: vec![
                ("age".into(), ColumnRole::Numeric),
                ("city".into(), ColumnRole::Categorical),
                (
                    "gender".into(),
                    ColumnRole::Protected {
                        protected_value: "f".into(),
                    },
                ),
                (
                    "outcome".into(),
                    ColumnRole::OutcomeBinary {
                        positive_value: "yes".into(),
                    },
                ),
            ],
        }
    }

    #[test]
    fn parse_line_handles_quotes() {
        assert_eq!(parse_line("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(parse_line("\"a,b\",c"), vec!["a,b", "c"]);
        assert_eq!(
            parse_line("\"he said \"\"hi\"\"\",x"),
            vec!["he said \"hi\"", "x"]
        );
        assert_eq!(parse_line(""), vec![""]);
    }

    #[test]
    fn reads_sample_into_raw_dataset() {
        let raw = read_csv(BufReader::new(SAMPLE.as_bytes()), &schema()).unwrap();
        assert_eq!(raw.n_records(), 3);
        assert_eq!(raw.names, vec!["age", "city", "gender"]);
        assert_eq!(raw.protected, vec![false, false, true]);
        assert_eq!(raw.group, vec![1, 0, 1]);
        assert_eq!(raw.y.as_ref().unwrap(), &vec![1.0, 0.0, 1.0]);
        match &raw.columns[0] {
            ColumnData::Numeric(v) => assert_eq!(v, &vec![30.0, 40.0, 50.0]),
            _ => panic!("age should be numeric"),
        }
        match &raw.columns[1] {
            ColumnData::Categorical(v) => assert_eq!(v[0], "Berlin, Mitte"),
            _ => panic!("city should be categorical"),
        }
    }

    #[test]
    fn missing_column_errors() {
        let bad = CsvSchema {
            roles: vec![("nope".into(), ColumnRole::Numeric)],
        };
        assert!(read_csv(BufReader::new(SAMPLE.as_bytes()), &bad).is_err());
    }

    #[test]
    fn non_numeric_value_errors() {
        let s = "age\nnot_a_number\n";
        let schema = CsvSchema {
            roles: vec![("age".into(), ColumnRole::Numeric)],
        };
        assert!(read_csv(BufReader::new(s.as_bytes()), &schema).is_err());
    }

    #[test]
    fn ragged_line_errors() {
        let s = "a,b\n1,2\n3\n";
        let schema = CsvSchema {
            roles: vec![("a".into(), ColumnRole::Numeric)],
        };
        assert!(read_csv(BufReader::new(s.as_bytes()), &schema).is_err());
    }

    #[test]
    fn roundtrip_write_read() {
        let raw = read_csv(BufReader::new(SAMPLE.as_bytes()), &schema()).unwrap();
        let mut buf = Vec::new();
        write_csv(&mut buf, &raw).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Read back with an equivalent schema over the dumped columns.
        let schema2 = CsvSchema {
            roles: vec![
                ("age".into(), ColumnRole::Numeric),
                ("city".into(), ColumnRole::Categorical),
                (
                    "gender".into(),
                    ColumnRole::Protected {
                        protected_value: "f".into(),
                    },
                ),
                (
                    "__y".into(),
                    ColumnRole::OutcomeBinary {
                        positive_value: "1".into(),
                    },
                ),
            ],
        };
        let back = read_csv(BufReader::new(text.as_bytes()), &schema2).unwrap();
        assert_eq!(back.n_records(), 3);
        assert_eq!(back.group, raw.group);
        assert_eq!(back.y, raw.y);
    }

    #[test]
    fn skip_role_omits_column() {
        let schema = CsvSchema {
            roles: vec![
                ("age".into(), ColumnRole::Numeric),
                ("city".into(), ColumnRole::Skip),
            ],
        };
        let raw = read_csv(BufReader::new(SAMPLE.as_bytes()), &schema).unwrap();
        assert_eq!(raw.names, vec!["age"]);
    }

    #[test]
    fn empty_input_errors() {
        let schema = CsvSchema { roles: vec![] };
        assert!(read_csv(BufReader::new("".as_bytes()), &schema).is_err());
    }
}
