//! The encoded dataset containers used across the workspace.

use crate::error::DataError;
use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// An encoded dataset: the `M x N` feature matrix `X` of the paper, plus the
/// metadata the fairness pipeline needs.
///
/// Columns are already one-hot encoded / scaled; `protected[j]` marks column
/// `j` as one of the "attributes `l+1 .. N`" that must not influence
/// decisions (Definition 1 of the paper measures distances on the complement
/// `x*`). `group[i]` records per-record membership in the *protected group*
/// used by the group-fairness metrics (1 = protected, 0 = not); the iFair
/// model itself never reads it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// `M x N` feature matrix.
    pub x: Matrix,
    /// Column names (length `N`).
    pub feature_names: Vec<String>,
    /// Per-column protected flags (length `N`).
    pub protected: Vec<bool>,
    /// Outcome variable: binary 0/1 labels for classification or a
    /// real-valued deserved score for ranking; `None` for unlabeled data.
    pub y: Option<Vec<f64>>,
    /// Per-record protected-group membership (length `M`).
    pub group: Vec<u8>,
}

impl Dataset {
    /// Builds a dataset after validating the shapes of all components.
    pub fn new(
        x: Matrix,
        feature_names: Vec<String>,
        protected: Vec<bool>,
        y: Option<Vec<f64>>,
        group: Vec<u8>,
    ) -> Result<Self, DataError> {
        let (m, n) = x.shape();
        if feature_names.len() != n {
            return Err(DataError::Shape(format!(
                "feature_names has length {} but X has {} columns",
                feature_names.len(),
                n
            )));
        }
        if protected.len() != n {
            return Err(DataError::Shape(format!(
                "protected has length {} but X has {} columns",
                protected.len(),
                n
            )));
        }
        if let Some(y) = &y {
            if y.len() != m {
                return Err(DataError::Shape(format!(
                    "y has length {} but X has {} rows",
                    y.len(),
                    m
                )));
            }
        }
        if group.len() != m {
            return Err(DataError::Shape(format!(
                "group has length {} but X has {} rows",
                group.len(),
                m
            )));
        }
        Ok(Dataset {
            x,
            feature_names,
            protected,
            y,
            group,
        })
    }

    /// Number of records `M`.
    pub fn n_records(&self) -> usize {
        self.x.rows()
    }

    /// Number of encoded features `N`.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Indices of protected columns.
    pub fn protected_indices(&self) -> Vec<usize> {
        self.protected
            .iter()
            .enumerate()
            .filter_map(|(j, &p)| p.then_some(j))
            .collect()
    }

    /// Indices of non-protected columns (the `x*` view of Definition 1).
    pub fn nonprotected_indices(&self) -> Vec<usize> {
        self.protected
            .iter()
            .enumerate()
            .filter_map(|(j, &p)| (!p).then_some(j))
            .collect()
    }

    /// Features with protected columns **dropped** — the paper's
    /// "Masked Data" baseline and the `x*` space of the fairness loss.
    pub fn masked_x(&self) -> Matrix {
        self.x.select_cols(&self.nonprotected_indices())
    }

    /// Features with protected columns **zeroed**, preserving width. Useful
    /// when a downstream model was trained on the full width.
    pub fn zeroed_x(&self) -> Matrix {
        let mut x = self.x.clone();
        for j in self.protected_indices() {
            for i in 0..x.rows() {
                x.set(i, j, 0.0);
            }
        }
        x
    }

    /// Sub-dataset with the given record indices (copied).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            feature_names: self.feature_names.clone(),
            protected: self.protected.clone(),
            y: self
                .y
                .as_ref()
                .map(|y| indices.iter().map(|&i| y[i]).collect()),
            group: indices.iter().map(|&i| self.group[i]).collect(),
        }
    }

    /// Replaces the feature matrix, keeping metadata (used when swapping in a
    /// learned representation of the same records).
    ///
    /// The new matrix must have the same number of rows; when its width
    /// differs from the original the feature names/protected flags are
    /// replaced by synthetic ones (a learned representation has no named
    /// columns).
    pub fn with_features(&self, x: Matrix) -> Result<Dataset, DataError> {
        if x.rows() != self.n_records() {
            return Err(DataError::Shape(format!(
                "replacement has {} rows but dataset has {} records",
                x.rows(),
                self.n_records()
            )));
        }
        let (feature_names, protected) = if x.cols() == self.n_features() {
            (self.feature_names.clone(), self.protected.clone())
        } else {
            (
                (0..x.cols()).map(|j| format!("z{j}")).collect(),
                vec![false; x.cols()],
            )
        };
        Ok(Dataset {
            x,
            feature_names,
            protected,
            y: self.y.clone(),
            group: self.group.clone(),
        })
    }

    /// Outcome labels, panicking when absent (most pipelines require them).
    pub fn labels(&self) -> &[f64] {
        self.y.as_deref().expect("dataset has no outcome variable")
    }

    /// Outcome labels as a typed result — the non-panicking counterpart of
    /// [`Dataset::labels`] used by the estimator layer.
    pub fn try_labels(&self) -> Result<&[f64], DataError> {
        self.y.as_deref().ok_or(DataError::MissingLabels)
    }

    /// Fraction of records with positive label in the protected group and in
    /// its complement: the `(base-rate protected, base-rate unprotected)`
    /// pair reported in Table II of the paper.
    pub fn base_rates(&self) -> (f64, f64) {
        let y = self.labels();
        let (mut pos_p, mut n_p, mut pos_u, mut n_u) = (0.0, 0.0, 0.0, 0.0);
        for (yi, &g) in y.iter().zip(&self.group) {
            if g == 1 {
                n_p += 1.0;
                pos_p += yi;
            } else {
                n_u += 1.0;
                pos_u += yi;
            }
        }
        (
            if n_p > 0.0 { pos_p / n_p } else { 0.0 },
            if n_u > 0.0 { pos_u / n_u } else { 0.0 },
        )
    }

    /// Fraction of records in the protected group.
    pub fn protected_share(&self) -> f64 {
        if self.group.is_empty() {
            return 0.0;
        }
        self.group.iter().filter(|&&g| g == 1).count() as f64 / self.group.len() as f64
    }
}

/// A named query over a ranking dataset: the candidate set is the subset of
/// records with the given indices (e.g. one of the 57 Xing job queries).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Query {
    /// Query identifier (e.g. `"Brand Strategist"`).
    pub id: String,
    /// Record indices of the candidates returned for this query.
    pub indices: Vec<usize>,
}

/// A dataset for learning-to-rank experiments: records plus query groupings.
///
/// `data.y` holds the *deserved score* (the ranking variable of §V-A); each
/// query ranks only its own candidate subset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankingDataset {
    /// The underlying records.
    pub data: Dataset,
    /// Query groupings (each at least one candidate).
    pub queries: Vec<Query>,
}

impl RankingDataset {
    /// Builds a ranking dataset after validating query indices.
    pub fn new(data: Dataset, queries: Vec<Query>) -> Result<Self, DataError> {
        let m = data.n_records();
        for q in &queries {
            if q.indices.is_empty() {
                return Err(DataError::Shape(format!(
                    "query {} has no candidates",
                    q.id
                )));
            }
            if let Some(&bad) = q.indices.iter().find(|&&i| i >= m) {
                return Err(DataError::Shape(format!(
                    "query {} references record {bad} but dataset has {m} records",
                    q.id
                )));
            }
        }
        Ok(RankingDataset { data, queries })
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows(vec![
                vec![1.0, 10.0, 0.0],
                vec![2.0, 20.0, 1.0],
                vec![3.0, 30.0, 0.0],
            ])
            .unwrap(),
            vec!["a".into(), "b".into(), "gender".into()],
            vec![false, false, true],
            Some(vec![1.0, 0.0, 1.0]),
            vec![0, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_mismatches() {
        let x = Matrix::zeros(2, 2);
        assert!(Dataset::new(
            x.clone(),
            vec!["a".into()],
            vec![false, false],
            None,
            vec![0, 0]
        )
        .is_err());
        assert!(Dataset::new(
            x.clone(),
            vec!["a".into(), "b".into()],
            vec![false],
            None,
            vec![0, 0]
        )
        .is_err());
        assert!(Dataset::new(
            x.clone(),
            vec!["a".into(), "b".into()],
            vec![false, false],
            Some(vec![1.0]),
            vec![0, 0]
        )
        .is_err());
        assert!(Dataset::new(
            x,
            vec!["a".into(), "b".into()],
            vec![false, false],
            None,
            vec![0]
        )
        .is_err());
    }

    #[test]
    fn masked_drops_protected_columns() {
        let d = toy();
        let m = d.masked_x();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(0), &[1.0, 10.0]);
        assert_eq!(d.protected_indices(), vec![2]);
        assert_eq!(d.nonprotected_indices(), vec![0, 1]);
    }

    #[test]
    fn zeroed_keeps_width() {
        let d = toy();
        let z = d.zeroed_x();
        assert_eq!(z.shape(), (3, 3));
        assert_eq!(z.get(1, 2), 0.0);
        assert_eq!(z.get(1, 1), 20.0);
    }

    #[test]
    fn subset_selects_consistently() {
        let d = toy();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.n_records(), 2);
        assert_eq!(s.x.row(0), &[3.0, 30.0, 0.0]);
        assert_eq!(s.y.as_ref().unwrap(), &vec![1.0, 1.0]);
        assert_eq!(s.group, vec![0, 0]);
    }

    #[test]
    fn with_features_same_width_keeps_names() {
        let d = toy();
        let r = d.with_features(d.x.clone()).unwrap();
        assert_eq!(r.feature_names, d.feature_names);
        let narrow = d.with_features(Matrix::zeros(3, 2)).unwrap();
        assert_eq!(
            narrow.feature_names,
            vec!["z0".to_string(), "z1".to_string()]
        );
        assert!(narrow.protected.iter().all(|&p| !p));
        assert!(d.with_features(Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn base_rates_and_share() {
        let d = toy();
        let (p, u) = d.base_rates();
        assert_eq!(p, 0.0); // single protected record has label 0
        assert_eq!(u, 1.0); // both unprotected records have label 1
        assert!((d.protected_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_dataset_validates_queries() {
        let d = toy();
        let ok = RankingDataset::new(
            d.clone(),
            vec![Query {
                id: "q".into(),
                indices: vec![0, 2],
            }],
        );
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().n_queries(), 1);
        let bad = RankingDataset::new(
            d.clone(),
            vec![Query {
                id: "q".into(),
                indices: vec![5],
            }],
        );
        assert!(bad.is_err());
        let empty = RankingDataset::new(
            d,
            vec![Query {
                id: "q".into(),
                indices: vec![],
            }],
        );
        assert!(empty.is_err());
    }

    #[test]
    #[should_panic(expected = "no outcome")]
    fn labels_panics_without_outcome() {
        let mut d = toy();
        d.y = None;
        d.labels();
    }
}
