//! One-hot encoding of raw (mixed numeric/categorical) data.
//!
//! §V-B of the paper: "categorical attributes are transformed using one-hot
//! encoding". A protected raw attribute marks *all* of its one-hot columns as
//! protected; Table II's dimensionality `M` counts these expanded columns.

use crate::dataset::Dataset;
use crate::error::DataError;
use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A raw (pre-encoding) column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnData {
    /// Real-valued attribute.
    Numeric(Vec<f64>),
    /// Categorical attribute with string levels.
    Categorical(Vec<String>),
}

impl ColumnData {
    /// Number of records in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A raw dataset: named mixed-type columns plus outcome/group metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RawDataset {
    /// Column names, in order.
    pub names: Vec<String>,
    /// Column payloads, in the same order as `names`.
    pub columns: Vec<ColumnData>,
    /// Which raw columns are protected attributes.
    pub protected: Vec<bool>,
    /// Optional outcome variable.
    pub y: Option<Vec<f64>>,
    /// Per-record protected-group membership.
    pub group: Vec<u8>,
}

impl RawDataset {
    /// Number of records (0 for a dataset with no columns).
    pub fn n_records(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Validates internal consistency (equal column lengths, metadata sizes).
    pub fn validate(&self) -> Result<(), DataError> {
        if self.names.len() != self.columns.len() || self.names.len() != self.protected.len() {
            return Err(DataError::Shape(
                "names/columns/protected must have equal lengths".into(),
            ));
        }
        let m = self.n_records();
        for (name, col) in self.names.iter().zip(&self.columns) {
            if col.len() != m {
                return Err(DataError::Shape(format!(
                    "column {name} has {} records, expected {m}",
                    col.len()
                )));
            }
        }
        if let Some(y) = &self.y {
            if y.len() != m {
                return Err(DataError::Shape(format!(
                    "y has {} records, expected {m}",
                    y.len()
                )));
            }
        }
        if self.group.len() != m {
            return Err(DataError::Shape(format!(
                "group has {} records, expected {m}",
                self.group.len()
            )));
        }
        Ok(())
    }
}

/// Per-column encoding plan learned by [`OneHotEncoder::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
enum ColumnPlan {
    /// Pass-through numeric column.
    Numeric,
    /// Categorical with the ordered list of known levels.
    OneHot(Vec<String>),
}

/// One-hot encoder: learns categorical levels on `fit`, expands them to
/// indicator columns on `transform`.
///
/// Unknown levels at transform time encode as all-zeros (the standard
/// "handle_unknown=ignore" behaviour), which keeps train/test pipelines total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OneHotEncoder {
    plans: Vec<ColumnPlan>,
    names: Vec<String>,
    protected: Vec<bool>,
}

impl OneHotEncoder {
    /// Learns the encoding from `raw` (collects sorted categorical levels).
    pub fn fit(raw: &RawDataset) -> Result<OneHotEncoder, DataError> {
        raw.validate()?;
        let mut plans = Vec::with_capacity(raw.columns.len());
        for col in &raw.columns {
            match col {
                ColumnData::Numeric(_) => plans.push(ColumnPlan::Numeric),
                ColumnData::Categorical(vals) => {
                    // BTreeMap gives deterministic (sorted) level order.
                    let mut levels: BTreeMap<&str, ()> = BTreeMap::new();
                    for v in vals {
                        levels.insert(v, ());
                    }
                    plans.push(ColumnPlan::OneHot(
                        levels.keys().map(|s| s.to_string()).collect(),
                    ));
                }
            }
        }
        Ok(OneHotEncoder {
            plans,
            names: raw.names.clone(),
            protected: raw.protected.clone(),
        })
    }

    /// Width of the encoded feature space.
    pub fn n_output_features(&self) -> usize {
        self.plans
            .iter()
            .map(|p| match p {
                ColumnPlan::Numeric => 1,
                ColumnPlan::OneHot(levels) => levels.len(),
            })
            .sum()
    }

    /// Encodes `raw` into a [`Dataset`].
    ///
    /// The raw dataset must have the same columns (names and kinds) as the
    /// one used to fit.
    pub fn transform(&self, raw: &RawDataset) -> Result<Dataset, DataError> {
        raw.validate()?;
        if raw.names != self.names {
            return Err(DataError::Schema(
                "column names differ from the fitted dataset".into(),
            ));
        }
        let m = raw.n_records();
        let n_out = self.n_output_features();
        let mut x = Matrix::zeros(m, n_out);
        let mut feature_names = Vec::with_capacity(n_out);
        let mut protected = Vec::with_capacity(n_out);

        let mut j_out = 0usize;
        for ((plan, col), (&is_protected, name)) in self
            .plans
            .iter()
            .zip(&raw.columns)
            .zip(self.protected.iter().zip(&self.names))
        {
            match (plan, col) {
                (ColumnPlan::Numeric, ColumnData::Numeric(vals)) => {
                    for (i, &v) in vals.iter().enumerate() {
                        x.set(i, j_out, v);
                    }
                    feature_names.push(name.clone());
                    protected.push(is_protected);
                    j_out += 1;
                }
                (ColumnPlan::OneHot(levels), ColumnData::Categorical(vals)) => {
                    for (i, v) in vals.iter().enumerate() {
                        if let Ok(k) = levels.binary_search(v) {
                            x.set(i, j_out + k, 1.0);
                        }
                        // Unknown level: row stays all-zero for this block.
                    }
                    for level in levels {
                        feature_names.push(format!("{name}={level}"));
                        protected.push(is_protected);
                    }
                    j_out += levels.len();
                }
                _ => {
                    return Err(DataError::Schema(format!(
                        "column {name} changed kind between fit and transform"
                    )))
                }
            }
        }
        Dataset::new(
            x,
            feature_names,
            protected,
            raw.y.clone(),
            raw.group.clone(),
        )
    }

    /// Fits and transforms in one call.
    pub fn fit_transform(raw: &RawDataset) -> Result<Dataset, DataError> {
        OneHotEncoder::fit(raw)?.transform(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> RawDataset {
        RawDataset {
            names: vec!["age".into(), "color".into(), "gender".into()],
            columns: vec![
                ColumnData::Numeric(vec![30.0, 40.0, 50.0]),
                ColumnData::Categorical(vec!["red".into(), "blue".into(), "red".into()]),
                ColumnData::Categorical(vec!["f".into(), "m".into(), "f".into()]),
            ],
            protected: vec![false, false, true],
            y: Some(vec![1.0, 0.0, 1.0]),
            group: vec![1, 0, 1],
        }
    }

    #[test]
    fn encodes_expected_width_and_names() {
        let d = OneHotEncoder::fit_transform(&raw()).unwrap();
        // 1 numeric + 2 colors + 2 genders = 5.
        assert_eq!(d.n_features(), 5);
        assert_eq!(
            d.feature_names,
            vec!["age", "color=blue", "color=red", "gender=f", "gender=m"]
        );
        // Protected flag propagates to every one-hot column of gender.
        assert_eq!(d.protected, vec![false, false, false, true, true]);
    }

    #[test]
    fn one_hot_rows_are_indicators() {
        let d = OneHotEncoder::fit_transform(&raw()).unwrap();
        assert_eq!(d.x.row(0), &[30.0, 0.0, 1.0, 1.0, 0.0]);
        assert_eq!(d.x.row(1), &[40.0, 1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn unknown_levels_encode_as_zero() {
        let enc = OneHotEncoder::fit(&raw()).unwrap();
        let mut other = raw();
        if let ColumnData::Categorical(v) = &mut other.columns[1] {
            v[0] = "green".into();
        }
        let d = enc.transform(&other).unwrap();
        assert_eq!(d.x.row(0), &[30.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn transform_checks_schema() {
        let enc = OneHotEncoder::fit(&raw()).unwrap();
        let mut other = raw();
        other.names[0] = "AGE".into();
        assert!(enc.transform(&other).is_err());
        let mut kind_change = raw();
        kind_change.columns[0] = ColumnData::Categorical(vec!["a".into(); 3]);
        assert!(enc.transform(&kind_change).is_err());
    }

    #[test]
    fn validate_catches_ragged_columns() {
        let mut r = raw();
        r.columns[0] = ColumnData::Numeric(vec![1.0]);
        assert!(r.validate().is_err());
        let mut r2 = raw();
        r2.group = vec![0];
        assert!(r2.validate().is_err());
        let mut r3 = raw();
        r3.y = Some(vec![0.0]);
        assert!(r3.validate().is_err());
        let mut r4 = raw();
        r4.protected = vec![false];
        assert!(r4.validate().is_err());
    }

    #[test]
    fn levels_are_deterministic() {
        // Order of appearance differs from sorted order; encoder sorts.
        let r = RawDataset {
            names: vec!["c".into()],
            columns: vec![ColumnData::Categorical(vec![
                "zebra".into(),
                "apple".into(),
                "mango".into(),
            ])],
            protected: vec![false],
            y: None,
            group: vec![0, 0, 0],
        };
        let d = OneHotEncoder::fit_transform(&r).unwrap();
        assert_eq!(d.feature_names, vec!["c=apple", "c=mango", "c=zebra"]);
    }
}
