//! Typed errors of the data pipeline.
//!
//! Every fallible public API of this crate reports a [`DataError`] instead of
//! a bare `String`, so callers can branch on the failure class and the
//! workspace-wide `FitError` (in `ifair-api`) can wrap data problems without
//! losing structure.

use std::fmt;

/// What went wrong while constructing, encoding or loading data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Components disagree in shape (row/column counts, metadata lengths).
    Shape(String),
    /// The data violates the declared schema (unknown columns, kind changes,
    /// out-of-range group labels, ...).
    Schema(String),
    /// Raw input could not be parsed (CSV syntax, numeric fields, ...).
    Parse(String),
    /// An operation needed outcome labels but the dataset has none.
    MissingLabels,
    /// A binary dataset file was written by an incompatible format version.
    Version {
        /// The version tag found in the file.
        found: u32,
        /// The highest version this build reads.
        supported: u32,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Shape(msg) => write!(f, "data shape mismatch: {msg}"),
            DataError::Schema(msg) => write!(f, "data schema violation: {msg}"),
            DataError::Parse(msg) => write!(f, "data parse failure: {msg}"),
            DataError::MissingLabels => write!(f, "dataset has no outcome variable"),
            DataError::Version { found, supported } => write!(
                f,
                "binary dataset format version {found} is not supported \
                 (this build reads version {supported})"
            ),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_prefixed_by_class() {
        assert!(DataError::Shape("x".into()).to_string().contains("shape"));
        assert!(DataError::Schema("x".into()).to_string().contains("schema"));
        assert!(DataError::Parse("x".into()).to_string().contains("parse"));
        assert!(DataError::MissingLabels.to_string().contains("outcome"));
    }
}
