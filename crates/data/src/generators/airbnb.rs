//! Airbnb listings simulator (§V-A).
//!
//! Calibrated to Table II: 27597 listings, 33 encoded dimensions, protected
//! attribute *host gender* (inferred from host names in the paper), ranking
//! variable *rating/price* (value for money). Queries are (city,
//! neighborhood tier, room type) combinations with at least 10 listings —
//! 43 of them, as in §V-E.

use crate::dataset::{Query, RankingDataset};
use crate::encode::{ColumnData, OneHotEncoder, RawDataset};
use crate::generators::sample_weighted;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration for the Airbnb simulator.
#[derive(Debug, Clone)]
pub struct AirbnbConfig {
    /// Number of listings (paper: 27597). Must be at least ~600 so each of
    /// the 43 designated queries reaches 10 listings.
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirbnbConfig {
    fn default() -> Self {
        AirbnbConfig {
            n_records: 27597,
            seed: 42,
        }
    }
}

const CITIES: [&str; 5] = ["Austin", "Boston", "Chicago", "LA", "NYC"];
const TIERS: [&str; 6] = ["tier_0", "tier_1", "tier_2", "tier_3", "tier_4", "tier_5"];
const ROOM_TYPES: [&str; 3] = ["entire_home", "private_room", "shared_room"];
/// Number of designated queries (paper: 43 after the >= 10 listings filter).
pub const N_QUERIES: usize = 43;

/// Generates the Airbnb-like ranking dataset. See the [module docs](self).
pub fn generate(config: &AirbnbConfig) -> RankingDataset {
    let n = config.n_records;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let normal = Normal::new(0.0, 1.0).expect("valid normal");

    // The 43 designated (city, tier, room) query cells, deterministic from
    // the seed: a fixed enumeration of the 90 possible combos, shuffled once.
    let mut combos: Vec<(usize, usize, usize)> = (0..CITIES.len())
        .flat_map(|c| {
            (0..TIERS.len()).flat_map(move |t| (0..ROOM_TYPES.len()).map(move |r| (c, t, r)))
        })
        .collect();
    use rand::seq::SliceRandom;
    combos.shuffle(&mut rng);
    let designated: Vec<(usize, usize, usize)> = combos[..N_QUERIES].to_vec();
    let stragglers: Vec<(usize, usize, usize)> = combos[N_QUERIES..].to_vec();

    // Listing-to-cell assignment: every non-designated cell receives exactly
    // one listing (staying below the 10-listing query threshold); all other
    // listings go to designated cells with skewed popularity.
    let popularity: Vec<f64> = (0..N_QUERIES).map(|_| 0.3 + rng.gen::<f64>()).collect();
    let mut cell_of: Vec<(usize, usize, usize)> = Vec::with_capacity(n);
    for &cell in &stragglers {
        cell_of.push(cell);
    }
    // Guarantee >= 12 listings per designated cell.
    for &cell in &designated {
        for _ in 0..12 {
            cell_of.push(cell);
        }
    }
    while cell_of.len() < n {
        cell_of.push(designated[sample_weighted(&mut rng, &popularity)]);
    }
    cell_of.truncate(n);
    cell_of.shuffle(&mut rng);

    // Latent listing quality.
    let mut price = Vec::with_capacity(n);
    let mut rating = Vec::with_capacity(n);
    let mut reviews = Vec::with_capacity(n);
    let mut accommodates = Vec::with_capacity(n);
    let mut bedrooms = Vec::with_capacity(n);
    let mut bathrooms = Vec::with_capacity(n);
    let mut beds = Vec::with_capacity(n);
    let mut availability = Vec::with_capacity(n);
    let mut min_nights = Vec::with_capacity(n);
    let mut cleaning_fee = Vec::with_capacity(n);
    let mut deposit = Vec::with_capacity(n);
    let mut host_listings = Vec::with_capacity(n);
    let mut cancellation = Vec::with_capacity(n);
    let mut instant = Vec::with_capacity(n);
    let mut gender = Vec::with_capacity(n);

    for i in 0..n {
        let (city, tier, room) = cell_of[i];
        let quality: f64 = normal.sample(&mut rng);
        let female = rng.gen_bool(0.475);
        let size_factor = match room {
            0 => 1.0,
            1 => 0.45,
            _ => 0.25,
        };
        let city_price = [110.0, 160.0, 120.0, 150.0, 180.0][city];
        let tier_mult = 0.7 + 0.12 * tier as f64;
        price.push(
            (city_price
                * tier_mult
                * size_factor
                * (0.25 * normal.sample(&mut rng) - 0.1 * quality).exp())
            .clamp(20.0, 1200.0)
            .round(),
        );
        rating.push(
            ((4.45 + 0.35 * quality + 0.15 * normal.sample(&mut rng)) * 20.0)
                .clamp(40.0, 100.0)
                .round()
                / 20.0,
        );
        reviews.push(
            ((1.2 * quality + 2.8 + 0.9 * normal.sample(&mut rng)).exp())
                .clamp(0.0, 600.0)
                .round(),
        );
        let acc = (2.0 + 3.5 * size_factor + 1.5 * normal.sample(&mut rng))
            .clamp(1.0, 16.0)
            .round();
        accommodates.push(acc);
        bedrooms.push((acc / 2.0).clamp(1.0, 8.0).round());
        bathrooms.push((acc / 3.0 + 0.5).clamp(1.0, 5.0).round());
        beds.push((acc / 1.6).clamp(1.0, 10.0).round());
        availability.push(
            (180.0 + 120.0 * normal.sample(&mut rng))
                .clamp(0.0, 365.0)
                .round(),
        );
        min_nights.push(
            (2.0 + 1.8 * normal.sample(&mut rng).abs())
                .clamp(1.0, 30.0)
                .round(),
        );
        // Cleaning fee is the (mild) gender proxy: hosts in the protected
        // group price cleaning differently in the real scrape.
        cleaning_fee.push(
            (28.0
                + 0.25 * price[i] * 0.2
                + 7.0 * f64::from(female)
                + 9.0 * normal.sample(&mut rng))
            .clamp(0.0, 300.0)
            .round(),
        );
        deposit.push(if rng.gen_bool(0.4) {
            (150.0 + 120.0 * normal.sample(&mut rng).abs()).round()
        } else {
            0.0
        });
        host_listings.push(
            ((0.9 * normal.sample(&mut rng).abs() + 0.1).exp())
                .clamp(1.0, 50.0)
                .round(),
        );
        cancellation.push(sample_weighted(&mut rng, &[0.45, 0.35, 0.20]));
        instant.push(usize::from(rng.gen_bool(0.55)));
        gender.push(u8::from(female));
    }

    // Deserved score: value for money, computable from observed attributes.
    let y: Vec<f64> = (0..n)
        .map(|i| rating[i] - 0.55 * (price[i].ln() - 4.6))
        .collect();

    let raw = RawDataset {
        names: vec![
            "price".into(),
            "rating".into(),
            "reviews_count".into(),
            "accommodates".into(),
            "bedrooms".into(),
            "bathrooms".into(),
            "beds".into(),
            "availability_365".into(),
            "minimum_nights".into(),
            "cleaning_fee".into(),
            "security_deposit".into(),
            "host_listings_count".into(),
            "city".into(),
            "neighborhood_tier".into(),
            "room_type".into(),
            "cancellation_policy".into(),
            "instant_bookable".into(),
            "host_gender".into(),
        ],
        columns: vec![
            ColumnData::Numeric(price),
            ColumnData::Numeric(rating),
            ColumnData::Numeric(reviews),
            ColumnData::Numeric(accommodates),
            ColumnData::Numeric(bedrooms),
            ColumnData::Numeric(bathrooms),
            ColumnData::Numeric(beds),
            ColumnData::Numeric(availability),
            ColumnData::Numeric(min_nights),
            ColumnData::Numeric(cleaning_fee),
            ColumnData::Numeric(deposit),
            ColumnData::Numeric(host_listings),
            ColumnData::Categorical(
                cell_of
                    .iter()
                    .map(|&(c, _, _)| CITIES[c].to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                cell_of
                    .iter()
                    .map(|&(_, t, _)| TIERS[t].to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                cell_of
                    .iter()
                    .map(|&(_, _, r)| ROOM_TYPES[r].to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                cancellation
                    .iter()
                    .map(|&c| ["flexible", "moderate", "strict"][c].to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                instant
                    .iter()
                    .map(|&b| ["no", "yes"][b].to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                gender
                    .iter()
                    .map(|&g| if g == 1 { "female" } else { "male" }.to_string())
                    .collect(),
            ),
        ],
        protected: vec![
            false, false, false, false, false, false, false, false, false, false, false, false,
            false, false, false, false, false, true,
        ],
        y: Some(y),
        group: gender,
    };
    let data = OneHotEncoder::fit_transform(&raw).expect("consistent schema");

    // Build the queries from the designated cells.
    let queries: Vec<Query> = designated
        .iter()
        .map(|&(c, t, r)| {
            let indices: Vec<usize> = (0..n).filter(|&i| cell_of[i] == (c, t, r)).collect();
            Query {
                id: format!("{}/{}/{}", CITIES[c], TIERS[t], ROOM_TYPES[r]),
                indices,
            }
        })
        .collect();
    RankingDataset::new(data, queries).expect("queries valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RankingDataset {
        generate(&AirbnbConfig {
            n_records: 3000,
            seed: 42,
        })
    }

    #[test]
    fn paper_dimensions() {
        let r = small();
        // Table II: M = 33 encoded dims; §V-E: 43 queries.
        assert_eq!(r.data.n_features(), 33);
        assert_eq!(r.n_queries(), N_QUERIES);
    }

    #[test]
    fn full_size_matches_table_ii() {
        let r = generate(&AirbnbConfig::default());
        assert_eq!(r.data.n_records(), 27597);
        assert_eq!(r.data.n_features(), 33);
    }

    #[test]
    fn every_query_has_at_least_ten_listings() {
        let r = small();
        for q in &r.queries {
            assert!(
                q.indices.len() >= 10,
                "query {} has {}",
                q.id,
                q.indices.len()
            );
        }
    }

    #[test]
    fn protected_share_near_half() {
        let r = small();
        let share = r.data.protected_share();
        assert!((share - 0.475).abs() < 0.04, "share = {share}");
    }

    #[test]
    fn host_gender_is_protected() {
        let r = small();
        let prot: Vec<&String> = r
            .data
            .feature_names
            .iter()
            .zip(&r.data.protected)
            .filter_map(|(n, &p)| p.then_some(n))
            .collect();
        assert_eq!(prot, vec!["host_gender=female", "host_gender=male"]);
    }

    #[test]
    fn score_prefers_high_rating_low_price() {
        let r = small();
        let rating_col = r
            .data
            .feature_names
            .iter()
            .position(|n| n == "rating")
            .unwrap();
        let price_col = r
            .data
            .feature_names
            .iter()
            .position(|n| n == "price")
            .unwrap();
        let y = r.data.labels();
        // Find two records with same price tier but different rating.
        let hi = (0..r.data.n_records())
            .max_by(|&a, &b| y[a].partial_cmp(&y[b]).unwrap())
            .unwrap();
        let lo = (0..r.data.n_records())
            .min_by(|&a, &b| y[a].partial_cmp(&y[b]).unwrap())
            .unwrap();
        let value =
            |i: usize| r.data.x.get(i, rating_col) - 0.55 * (r.data.x.get(i, price_col).ln() - 4.6);
        assert!(value(hi) > value(lo));
    }

    #[test]
    fn queries_do_not_overlap() {
        let r = small();
        let mut seen = vec![false; r.data.n_records()];
        for q in &r.queries {
            for &i in &q.indices {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.data.x, b.data.x);
        assert_eq!(a.queries.len(), b.queries.len());
    }
}
