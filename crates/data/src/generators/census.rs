//! Census Income (Adult) simulator (§V-A).
//!
//! Calibrated to Table II: 48842 records, 101 encoded dimensions, protected
//! attribute *gender*, outcome *income > 50K* with base rates 0.12
//! (protected = female) / 0.31 (unprotected = male) — the widest base-rate
//! gap of the three classification datasets.

use crate::dataset::Dataset;
use crate::encode::{ColumnData, OneHotEncoder, RawDataset};
use crate::generators::{force_all_levels, labels_matching_base_rates, sample_weighted};
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration for the Census simulator.
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of records (paper: 48842). Must be at least 38 to realize all
    /// native-country levels.
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            n_records: 48842,
            seed: 42,
        }
    }
}

const N_WORKCLASS: usize = 7;
const N_EDUCATION: usize = 16;
const N_MARITAL: usize = 7;
const N_OCCUPATION: usize = 14;
const N_RELATIONSHIP: usize = 6;
const N_RACE: usize = 5;
const N_COUNTRY: usize = 38;

/// Generates the Census-like dataset. See the [module docs](self).
pub fn generate(config: &CensusConfig) -> Dataset {
    let n = config.n_records;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let normal = Normal::new(0.0, 1.0).expect("valid normal");

    // Latent earning power.
    let z: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
    // Gender: protected = female, ~33% of records (Adult's share).
    let group: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.33))).collect();

    // Numerics. Hours/occupation act as gender proxies (observed gaps in the
    // real data), so masked data still leaks group membership.
    let mut age = Vec::with_capacity(n);
    let mut education_num = Vec::with_capacity(n);
    let mut hours = Vec::with_capacity(n);
    let mut capital_gain = Vec::with_capacity(n);
    let mut capital_loss = Vec::with_capacity(n);
    let mut fnlwgt = Vec::with_capacity(n);
    for i in 0..n {
        let g = f64::from(group[i]);
        age.push(
            (38.0 + 6.0 * z[i] + 12.0 * normal.sample(&mut rng))
                .clamp(17.0, 90.0)
                .round(),
        );
        education_num.push(
            (10.0 + 2.2 * z[i] + 1.5 * normal.sample(&mut rng))
                .clamp(1.0, 16.0)
                .round(),
        );
        hours.push(
            (41.0 + 3.0 * z[i] - 4.5 * g + 8.0 * normal.sample(&mut rng))
                .clamp(1.0, 99.0)
                .round(),
        );
        let cg = if rng.gen_bool(0.08) {
            (1500.0 * (1.2 * z[i] + 1.0).exp()).min(99999.0)
        } else {
            0.0
        };
        capital_gain.push(cg.round());
        let cl = if rng.gen_bool(0.05) {
            (300.0 * (0.6 * z[i] + 1.0).exp()).min(4356.0)
        } else {
            0.0
        };
        capital_loss.push(cl.round());
        fnlwgt.push(
            (190000.0 + 100000.0 * normal.sample(&mut rng))
                .clamp(12000.0, 1480000.0)
                .round(),
        );
    }

    // Categoricals with latent/group-dependent logits.
    let mut workclass = vec![0usize; n];
    let mut education = vec![0usize; n];
    let mut marital = vec![0usize; n];
    let mut occupation = vec![0usize; n];
    let mut relationship = vec![0usize; n];
    let mut race = vec![0usize; n];
    let mut country = vec![0usize; n];
    for i in 0..n {
        let g = f64::from(group[i]);
        // Workclass skewed private-sector.
        workclass[i] = sample_weighted(&mut rng, &[0.69, 0.08, 0.06, 0.04, 0.07, 0.03, 0.03]);
        // Education level correlates with education_num.
        let edu_center =
            ((education_num[i] - 1.0) / 15.0 * (N_EDUCATION - 1) as f64).round() as usize;
        let edu_weights: Vec<f64> = (0..N_EDUCATION)
            .map(|k| (-((k as f64 - edu_center as f64).powi(2)) / 4.0).exp())
            .collect();
        education[i] = sample_weighted(&mut rng, &edu_weights);
        marital[i] = sample_weighted(&mut rng, &[0.46, 0.33, 0.14, 0.03, 0.02, 0.01, 0.01]);
        // Occupation is the strongest gender proxy: two clusters.
        let occ_weights: Vec<f64> = (0..N_OCCUPATION)
            .map(|k| {
                let female_lean = if k < 5 { 1.0 } else { 0.0 };
                let base = 1.0 + 0.4 * z[i] * ((k as f64) / 13.0 - 0.5);
                (base + 2.2 * g * female_lean + 0.8 * (1.0 - g) * (1.0 - female_lean)).max(0.05)
            })
            .collect();
        occupation[i] = sample_weighted(&mut rng, &occ_weights);
        relationship[i] = sample_weighted(&mut rng, &[0.40, 0.26, 0.16, 0.10, 0.05, 0.03]);
        race[i] = sample_weighted(&mut rng, &[0.85, 0.10, 0.03, 0.01, 0.01]);
        country[i] = if rng.gen_bool(0.90) {
            0 // United-States
        } else {
            1 + sample_weighted(&mut rng, &super::zipf_weights(N_COUNTRY - 1, 0.8))
        };
    }
    force_all_levels(&mut workclass, N_WORKCLASS);
    force_all_levels(&mut education, N_EDUCATION);
    force_all_levels(&mut marital, N_MARITAL);
    force_all_levels(&mut occupation, N_OCCUPATION);
    force_all_levels(&mut relationship, N_RELATIONSHIP);
    force_all_levels(&mut race, N_RACE);
    force_all_levels(&mut country, N_COUNTRY);

    // Outcome: income > 50K, base rates 0.12 / 0.31 (Table II).
    let scores: Vec<f64> = (0..n)
        .map(|i| {
            1.0 * z[i]
                + 0.08 * (education_num[i] - 10.0)
                + 0.02 * (hours[i] - 40.0)
                + 0.3 * f64::from(capital_gain[i] > 0.0)
                + 0.4 * normal.sample(&mut rng)
        })
        .collect();
    let y = labels_matching_base_rates(&scores, &group, 0.12, 0.31);

    let cat = |prefix: &str, values: &[usize]| -> ColumnData {
        ColumnData::Categorical(values.iter().map(|&v| format!("{prefix}_{v:02}")).collect())
    };

    let raw = RawDataset {
        names: vec![
            "age".into(),
            "education_num".into(),
            "hours_per_week".into(),
            "capital_gain".into(),
            "capital_loss".into(),
            "fnlwgt".into(),
            "workclass".into(),
            "education".into(),
            "marital_status".into(),
            "occupation".into(),
            "relationship".into(),
            "race".into(),
            "sex".into(),
            "native_country".into(),
        ],
        columns: vec![
            ColumnData::Numeric(age),
            ColumnData::Numeric(education_num),
            ColumnData::Numeric(hours),
            ColumnData::Numeric(capital_gain),
            ColumnData::Numeric(capital_loss),
            ColumnData::Numeric(fnlwgt),
            cat("workclass", &workclass),
            cat("education", &education),
            cat("marital", &marital),
            cat("occupation", &occupation),
            cat("relationship", &relationship),
            cat("race", &race),
            ColumnData::Categorical(
                group
                    .iter()
                    .map(|&g| if g == 1 { "Female" } else { "Male" }.to_string())
                    .collect(),
            ),
            cat("country", &country),
        ],
        protected: vec![
            false, false, false, false, false, false, false, false, false, false, false, false,
            true, false,
        ],
        y: Some(y),
        group,
    };
    OneHotEncoder::fit_transform(&raw).expect("schema is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        // Full size is 48842; dimensional structure is identical at 5000
        // records (all categorical levels are forced), so test at that size.
        let d = generate(&CensusConfig {
            n_records: 5000,
            seed: 42,
        });
        // Table II: M = 101 encoded dimensions.
        assert_eq!(d.n_features(), 101);
    }

    #[test]
    fn full_size_matches_table_ii() {
        let d = generate(&CensusConfig::default());
        assert_eq!(d.n_records(), 48842);
        assert_eq!(d.n_features(), 101);
        let (p, u) = d.base_rates();
        assert!((p - 0.12).abs() < 0.005, "protected base rate {p}");
        assert!((u - 0.31).abs() < 0.005, "unprotected base rate {u}");
    }

    #[test]
    fn gender_columns_protected() {
        let d = generate(&CensusConfig {
            n_records: 1000,
            seed: 0,
        });
        let prot: Vec<&String> = d
            .feature_names
            .iter()
            .zip(&d.protected)
            .filter_map(|(n, &p)| p.then_some(n))
            .collect();
        assert_eq!(prot, vec!["sex=Female", "sex=Male"]);
    }

    #[test]
    fn hours_gap_between_groups() {
        let d = generate(&CensusConfig {
            n_records: 4000,
            seed: 1,
        });
        let col = d
            .feature_names
            .iter()
            .position(|n| n == "hours_per_week")
            .unwrap();
        let (mut sp, mut np_, mut su, mut nu) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..d.n_records() {
            if d.group[i] == 1 {
                sp += d.x.get(i, col);
                np_ += 1.0;
            } else {
                su += d.x.get(i, col);
                nu += 1.0;
            }
        }
        assert!(su / nu > sp / np_ + 2.0, "hours proxy must separate groups");
    }

    #[test]
    fn deterministic() {
        let a = generate(&CensusConfig {
            n_records: 300,
            seed: 9,
        });
        let b = generate(&CensusConfig {
            n_records: 300,
            seed: 9,
        });
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }
}
