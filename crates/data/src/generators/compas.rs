//! COMPAS recidivism simulator (ProPublica dataset of §V-A).
//!
//! Calibrated to Table II: 6901 records, 431 encoded dimensions, protected
//! attribute *race*, outcome *recidivism* with base rates 0.52 (protected) /
//! 0.40 (unprotected). The very high dimensionality comes from a long-tailed
//! charge-description categorical (417 levels here), which is what makes the
//! paper call COMPAS "the most difficult of the three datasets due to its
//! dimensionality" (SVD fails on it).

use crate::dataset::Dataset;
use crate::encode::{ColumnData, OneHotEncoder, RawDataset};
use crate::generators::{
    force_all_levels, labels_matching_base_rates, sample_weighted, zipf_weights,
};
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration for the COMPAS simulator.
#[derive(Debug, Clone)]
pub struct CompasConfig {
    /// Number of records (paper: 6901). Must be at least 417 to realize all
    /// charge-description levels (and hence the 431 encoded dimensions).
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CompasConfig {
    fn default() -> Self {
        CompasConfig {
            n_records: 6901,
            seed: 42,
        }
    }
}

/// Number of charge-description levels (fixed so the encoded width is 431).
const N_CHARGE_DESC: usize = 417;
const RACES: [&str; 6] = [
    "African-American",
    "Asian",
    "Caucasian",
    "Hispanic",
    "Native American",
    "Other",
];

/// Generates the COMPAS-like dataset. See the [module docs](self).
pub fn generate(config: &CompasConfig) -> Dataset {
    let n = config.n_records;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let normal = Normal::new(0.0, 1.0).expect("valid normal");

    // Latent criminal-history propensity.
    let z: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();

    // Race: protected group = African-American (~51% in ProPublica's data);
    // weakly correlated with a neighborhood proxy below, not with z itself.
    let race_weights = [0.51, 0.01, 0.34, 0.08, 0.01, 0.05];
    let race_idx: Vec<usize> = (0..n)
        .map(|_| sample_weighted(&mut rng, &race_weights))
        .collect();
    let group: Vec<u8> = race_idx.iter().map(|&r| u8::from(r == 0)).collect();

    // Numeric features. `neighborhood_risk` is the deliberate proxy: it
    // depends on group membership, so masking race still leaks it (Fig. 4).
    let mut age = Vec::with_capacity(n);
    let mut priors = Vec::with_capacity(n);
    let mut juv_fel = Vec::with_capacity(n);
    let mut neighborhood_risk = Vec::with_capacity(n);
    for i in 0..n {
        let g = f64::from(group[i]);
        age.push(
            (34.0 - 4.0 * z[i] - 2.0 * g + 9.0 * normal.sample(&mut rng))
                .clamp(18.0, 80.0)
                .round(),
        );
        priors.push(
            ((1.6 * z[i] + 0.5 * g + 1.8 + 0.8 * normal.sample(&mut rng)).exp() * 0.35)
                .floor()
                .clamp(0.0, 38.0),
        );
        juv_fel.push(
            ((0.8 * z[i] + 0.3 * g - 1.4 + 0.5 * normal.sample(&mut rng)).exp() * 0.3)
                .floor()
                .clamp(0.0, 10.0),
        );
        neighborhood_risk.push(0.9 * g + 0.4 * z[i] + 0.8 * normal.sample(&mut rng));
    }

    // Categoricals.
    let sex: Vec<String> = (0..n)
        .map(|_| if rng.gen_bool(0.81) { "Male" } else { "Female" }.to_string())
        .collect();
    let charge_degree: Vec<String> = (0..n)
        .map(|i| {
            if z[i] + 0.5 * normal.sample(&mut rng) > 0.3 {
                "F"
            } else {
                "M"
            }
            .to_string()
        })
        .collect();
    // Long-tailed charge descriptions; group shifts the head of the
    // distribution slightly (another weak proxy).
    let zipf = zipf_weights(N_CHARGE_DESC, 1.05);
    let mut charge_idx: Vec<usize> = (0..n)
        .map(|i| {
            let mut w = zipf.clone();
            if group[i] == 1 {
                // Protected group draws from a rotated head of the
                // distribution: same tail mass, shifted preferences.
                w[..24].rotate_left(6);
            }
            sample_weighted(&mut rng, &w)
        })
        .collect();
    force_all_levels(&mut charge_idx, N_CHARGE_DESC);
    let charge_desc: Vec<String> = charge_idx
        .iter()
        .map(|&c| format!("charge_{c:03}"))
        .collect();

    // Recidivism outcome: driven by latent propensity + priors; per-group
    // base rates pinned to Table II (0.52 / 0.40).
    let scores: Vec<f64> = (0..n)
        .map(|i| 1.3 * z[i] + 0.25 * priors[i] + 0.5 * normal.sample(&mut rng))
        .collect();
    let y = labels_matching_base_rates(&scores, &group, 0.52, 0.40);

    let raw = RawDataset {
        names: vec![
            "age".into(),
            "priors_count".into(),
            "juv_fel_count".into(),
            "neighborhood_risk".into(),
            "sex".into(),
            "race".into(),
            "c_charge_degree".into(),
            "c_charge_desc".into(),
        ],
        columns: vec![
            ColumnData::Numeric(age),
            ColumnData::Numeric(priors),
            ColumnData::Numeric(juv_fel),
            ColumnData::Numeric(neighborhood_risk),
            ColumnData::Categorical(sex),
            ColumnData::Categorical(race_idx.iter().map(|&r| RACES[r].to_string()).collect()),
            ColumnData::Categorical(charge_degree),
            ColumnData::Categorical(charge_desc),
        ],
        protected: vec![false, false, false, false, false, true, false, false],
        y: Some(y),
        group,
    };
    OneHotEncoder::fit_transform(&raw).expect("schema is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let d = generate(&CompasConfig::default());
        assert_eq!(d.n_records(), 6901);
        // Table II: M = 431 encoded dimensions.
        assert_eq!(d.n_features(), 431, "names: {:?}", &d.feature_names[..10]);
    }

    #[test]
    fn base_rates_match_table_ii() {
        let d = generate(&CompasConfig::default());
        let (p, u) = d.base_rates();
        assert!((p - 0.52).abs() < 0.01, "protected base rate {p}");
        assert!((u - 0.40).abs() < 0.01, "unprotected base rate {u}");
    }

    #[test]
    fn race_columns_are_protected() {
        let d = generate(&CompasConfig {
            n_records: 500,
            seed: 1,
        });
        let protected_names: Vec<&String> = d
            .feature_names
            .iter()
            .zip(&d.protected)
            .filter_map(|(n, &p)| p.then_some(n))
            .collect();
        assert_eq!(protected_names.len(), 6);
        assert!(protected_names.iter().all(|n| n.starts_with("race=")));
    }

    #[test]
    fn group_matches_race_column() {
        let d = generate(&CompasConfig {
            n_records: 500,
            seed: 2,
        });
        let aa_col = d
            .feature_names
            .iter()
            .position(|n| n == "race=African-American")
            .unwrap();
        for i in 0..d.n_records() {
            assert_eq!(d.group[i] == 1, d.x.get(i, aa_col) == 1.0);
        }
    }

    #[test]
    fn proxy_feature_correlates_with_group() {
        let d = generate(&CompasConfig {
            n_records: 2000,
            seed: 3,
        });
        let risk_col = d
            .feature_names
            .iter()
            .position(|n| n == "neighborhood_risk")
            .unwrap();
        let (mut sum_p, mut n_p, mut sum_u, mut n_u) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..d.n_records() {
            if d.group[i] == 1 {
                sum_p += d.x.get(i, risk_col);
                n_p += 1.0;
            } else {
                sum_u += d.x.get(i, risk_col);
                n_u += 1.0;
            }
        }
        assert!(
            sum_p / n_p > sum_u / n_u + 0.5,
            "proxy must separate groups"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&CompasConfig {
            n_records: 450,
            seed: 5,
        });
        let b = generate(&CompasConfig {
            n_records: 450,
            seed: 5,
        });
        assert_eq!(a.x, b.x);
    }
}
