//! German Credit simulator (§V-A).
//!
//! Calibrated to Table II: 1000 records, 67 encoded dimensions, protected
//! attribute *age* (following the fairness literature, the protected group is
//! "young", age <= 25), outcome *credit-worthiness* with base rates 0.67
//! (protected) / 0.72 (unprotected) — the mildest group gap and the smallest
//! sample of the three classification datasets.

use crate::dataset::Dataset;
use crate::encode::{ColumnData, OneHotEncoder, RawDataset};
use crate::generators::{force_all_levels, labels_matching_base_rates, sample_weighted};
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration for the German Credit simulator.
#[derive(Debug, Clone)]
pub struct CreditConfig {
    /// Number of records (paper: 1000). Must be at least 12 to realize all
    /// purpose levels.
    pub n_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            n_records: 1000,
            seed: 42,
        }
    }
}

/// Age threshold defining the protected ("young") group.
pub const PROTECTED_AGE_THRESHOLD: f64 = 25.0;

const N_STATUS: usize = 5;
const N_HISTORY: usize = 6;
const N_PURPOSE: usize = 12;
const N_SAVINGS: usize = 5;
const N_EMPLOYMENT: usize = 6;
const N_PERSONAL: usize = 4;
const N_DEBTORS: usize = 3;
const N_PROPERTY: usize = 5;
const N_PLANS: usize = 3;
const N_HOUSING: usize = 3;
const N_JOB: usize = 4;
const N_PHONE: usize = 2;
const N_FOREIGN: usize = 2;

/// Generates the German-Credit-like dataset. See the [module docs](self).
pub fn generate(config: &CreditConfig) -> Dataset {
    let n = config.n_records;
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let normal = Normal::new(0.0, 1.0).expect("valid normal");

    // Latent financial reliability.
    let z: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();

    // Age: protected group = young (age <= 25), ~19% of records in the UCI
    // data. Age itself is mildly correlated with reliability.
    let age: Vec<f64> = z
        .iter()
        .map(|&zi| {
            (35.5 + 3.0 * zi + 10.5 * normal.sample(&mut rng))
                .clamp(19.0, 75.0)
                .round()
        })
        .collect();
    let group: Vec<u8> = age
        .iter()
        .map(|&a| u8::from(a <= PROTECTED_AGE_THRESHOLD))
        .collect();

    let mut duration = Vec::with_capacity(n);
    let mut amount = Vec::with_capacity(n);
    let mut installment_rate = Vec::with_capacity(n);
    let mut residence = Vec::with_capacity(n);
    let mut existing_credits = Vec::with_capacity(n);
    let mut dependents = Vec::with_capacity(n);
    for i in 0..n {
        let g = f64::from(group[i]);
        duration.push(
            (21.0 - 3.0 * z[i] + 11.0 * normal.sample(&mut rng))
                .clamp(4.0, 72.0)
                .round(),
        );
        amount.push(
            (3270.0 * (0.35 * normal.sample(&mut rng) - 0.15 * z[i]).exp())
                .clamp(250.0, 18424.0)
                .round(),
        );
        installment_rate.push(
            (3.0 - 0.4 * z[i] + normal.sample(&mut rng))
                .clamp(1.0, 4.0)
                .round(),
        );
        // Young applicants have shorter residence (proxy for age).
        residence.push(
            (2.9 - 1.2 * g + normal.sample(&mut rng))
                .clamp(1.0, 4.0)
                .round(),
        );
        existing_credits.push(
            (1.4 + 0.3 * z[i] + 0.5 * normal.sample(&mut rng))
                .clamp(1.0, 4.0)
                .round(),
        );
        dependents.push(
            (1.15 + 0.4 * normal.sample(&mut rng))
                .clamp(1.0, 2.0)
                .round(),
        );
    }

    // Categoricals; employment length is a second age proxy.
    let mut status = vec![0usize; n];
    let mut history = vec![0usize; n];
    let mut purpose = vec![0usize; n];
    let mut savings = vec![0usize; n];
    let mut employment = vec![0usize; n];
    let mut personal = vec![0usize; n];
    let mut debtors = vec![0usize; n];
    let mut property = vec![0usize; n];
    let mut plans = vec![0usize; n];
    let mut housing = vec![0usize; n];
    let mut job = vec![0usize; n];
    let mut phone = vec![0usize; n];
    let mut foreign = vec![0usize; n];
    for i in 0..n {
        let g = f64::from(group[i]);
        let zi = z[i];
        let tilt = |base: &[f64], lean: f64| -> Vec<f64> {
            base.iter()
                .enumerate()
                .map(|(k, &b)| {
                    (b * (1.0 + lean * (k as f64 / (base.len() - 1) as f64 - 0.5))).max(0.01)
                })
                .collect()
        };
        status[i] = sample_weighted(&mut rng, &tilt(&[0.27, 0.27, 0.06, 0.25, 0.15], 1.2 * zi));
        history[i] = sample_weighted(
            &mut rng,
            &tilt(&[0.04, 0.05, 0.52, 0.09, 0.20, 0.10], 0.8 * zi),
        );
        purpose[i] = sample_weighted(
            &mut rng,
            &[
                0.23, 0.17, 0.10, 0.09, 0.12, 0.05, 0.04, 0.03, 0.10, 0.03, 0.02, 0.02,
            ],
        );
        savings[i] = sample_weighted(&mut rng, &tilt(&[0.58, 0.10, 0.11, 0.07, 0.14], 1.0 * zi));
        // Employment tenure: strongly age-linked (young => short tenure).
        employment[i] = sample_weighted(
            &mut rng,
            &tilt(&[0.06, 0.17, 0.33, 0.17, 0.27, 0.0001], -1.6 * g + 0.3 * zi),
        );
        personal[i] = sample_weighted(&mut rng, &[0.54, 0.31, 0.09, 0.06]);
        debtors[i] = sample_weighted(&mut rng, &[0.90, 0.04, 0.06]);
        property[i] = sample_weighted(&mut rng, &tilt(&[0.28, 0.23, 0.22, 0.15, 0.12], 0.5 * zi));
        plans[i] = sample_weighted(&mut rng, &[0.81, 0.14, 0.05]);
        housing[i] = sample_weighted(&mut rng, &[0.71, 0.18, 0.11]);
        job[i] = sample_weighted(&mut rng, &tilt(&[0.02, 0.20, 0.63, 0.15], 0.6 * zi));
        phone[i] = sample_weighted(&mut rng, &[0.60, 0.40]);
        foreign[i] = sample_weighted(&mut rng, &[0.96, 0.04]);
    }
    force_all_levels(&mut status, N_STATUS);
    force_all_levels(&mut history, N_HISTORY);
    force_all_levels(&mut purpose, N_PURPOSE);
    force_all_levels(&mut savings, N_SAVINGS);
    force_all_levels(&mut employment, N_EMPLOYMENT);
    force_all_levels(&mut personal, N_PERSONAL);
    force_all_levels(&mut debtors, N_DEBTORS);
    force_all_levels(&mut property, N_PROPERTY);
    force_all_levels(&mut plans, N_PLANS);
    force_all_levels(&mut housing, N_HOUSING);
    force_all_levels(&mut job, N_JOB);
    force_all_levels(&mut phone, N_PHONE);
    force_all_levels(&mut foreign, N_FOREIGN);

    // Outcome: credit-worthy, base rates 0.67 / 0.72 (Table II).
    let scores: Vec<f64> = (0..n)
        .map(|i| 1.1 * z[i] - 0.01 * (duration[i] - 21.0) + 0.5 * normal.sample(&mut rng))
        .collect();
    let y = labels_matching_base_rates(&scores, &group, 0.67, 0.72);

    let cat = |prefix: &str, values: &[usize]| -> ColumnData {
        ColumnData::Categorical(values.iter().map(|&v| format!("{prefix}_{v}")).collect())
    };

    let raw = RawDataset {
        names: vec![
            "duration".into(),
            "credit_amount".into(),
            "installment_rate".into(),
            "residence_since".into(),
            "age".into(),
            "existing_credits".into(),
            "num_dependents".into(),
            "status".into(),
            "credit_history".into(),
            "purpose".into(),
            "savings".into(),
            "employment_since".into(),
            "personal_status".into(),
            "other_debtors".into(),
            "property".into(),
            "installment_plans".into(),
            "housing".into(),
            "job".into(),
            "telephone".into(),
            "foreign_worker".into(),
        ],
        columns: vec![
            ColumnData::Numeric(duration),
            ColumnData::Numeric(amount),
            ColumnData::Numeric(installment_rate),
            ColumnData::Numeric(residence),
            ColumnData::Numeric(age),
            ColumnData::Numeric(existing_credits),
            ColumnData::Numeric(dependents),
            cat("status", &status),
            cat("history", &history),
            cat("purpose", &purpose),
            cat("savings", &savings),
            cat("employment", &employment),
            cat("personal", &personal),
            cat("debtors", &debtors),
            cat("property", &property),
            cat("plans", &plans),
            cat("housing", &housing),
            cat("job", &job),
            cat("phone", &phone),
            cat("foreign", &foreign),
        ],
        // Age (numeric column 4) is the protected attribute.
        protected: vec![
            false, false, false, false, true, false, false, false, false, false, false, false,
            false, false, false, false, false, false, false, false,
        ],
        y: Some(y),
        group,
    };
    OneHotEncoder::fit_transform(&raw).expect("schema is consistent by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions_and_base_rates() {
        let d = generate(&CreditConfig::default());
        assert_eq!(d.n_records(), 1000);
        // Table II: M = 67 encoded dimensions.
        assert_eq!(d.n_features(), 67);
        let (p, u) = d.base_rates();
        assert!((p - 0.67).abs() < 0.01, "protected base rate {p}");
        assert!((u - 0.72).abs() < 0.01, "unprotected base rate {u}");
    }

    #[test]
    fn age_is_the_protected_column() {
        let d = generate(&CreditConfig::default());
        let prot: Vec<&String> = d
            .feature_names
            .iter()
            .zip(&d.protected)
            .filter_map(|(n, &p)| p.then_some(n))
            .collect();
        assert_eq!(prot, vec!["age"]);
    }

    #[test]
    fn group_is_young() {
        let d = generate(&CreditConfig::default());
        let age_col = d.feature_names.iter().position(|n| n == "age").unwrap();
        for i in 0..d.n_records() {
            assert_eq!(
                d.group[i] == 1,
                d.x.get(i, age_col) <= PROTECTED_AGE_THRESHOLD
            );
        }
        let share = d.protected_share();
        assert!(share > 0.1 && share < 0.3, "share of young = {share}");
    }

    #[test]
    fn employment_proxy_differs_by_group() {
        let d = generate(&CreditConfig {
            n_records: 1000,
            seed: 7,
        });
        // Short-tenure employment level 0/1 should be more common among young.
        let col0 = d
            .feature_names
            .iter()
            .position(|n| n == "employment_since=employment_0")
            .unwrap();
        let col1 = d
            .feature_names
            .iter()
            .position(|n| n == "employment_since=employment_1")
            .unwrap();
        let (mut short_p, mut n_p, mut short_u, mut n_u) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..d.n_records() {
            let s = d.x.get(i, col0) + d.x.get(i, col1);
            if d.group[i] == 1 {
                short_p += s;
                n_p += 1.0;
            } else {
                short_u += s;
                n_u += 1.0;
            }
        }
        assert!(
            short_p / n_p > short_u / n_u,
            "young must skew short-tenure"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate(&CreditConfig::default());
        let b = generate(&CreditConfig::default());
        assert_eq!(a.x, b.x);
    }
}
