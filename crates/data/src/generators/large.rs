//! A large-`M` synthetic generator whose rows are computed on demand.
//!
//! The Table-II simulators materialize their whole feature matrix, which is
//! exactly what a scaling study must *not* require. [`LargeScale`] instead
//! makes every record a **pure function of `(seed, index)`**: a per-row RNG
//! is derived by mixing the row index into the seed, so any subset of rows
//! can be generated in any order — and regenerated bit-identically — without
//! ever holding more than one batch in memory. That makes it both a
//! [`RecordSource`] for the mini-batch trainer and the workload behind the
//! `scaling` benchmark's `M ∈ {2k, 10k, 50k}` grid.
//!
//! The data model mirrors the latent-factor design of the Table-II
//! simulators at adjustable size: records are drawn around one of
//! `n_clusters` centers in `(0, 1)^n_numeric`, a binary protected attribute
//! is appended as the last column, and the protected group shifts the first
//! feature by `proxy_shift` — the leakage that makes the fairness loss do
//! real work (merely masking the protected column would not hide the group).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::stream::RecordSource;
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape and distribution knobs of [`LargeScale`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LargeScaleConfig {
    /// Number of records `M`.
    pub n_records: usize,
    /// Numeric feature count (the protected column is appended, so the
    /// encoded width is `n_numeric + 1`).
    pub n_numeric: usize,
    /// Number of latent cluster centers.
    pub n_clusters: usize,
    /// Probability that a record belongs to the protected group.
    pub protected_share: f64,
    /// Additive shift of feature 0 for protected records (group leakage).
    pub proxy_shift: f64,
    /// Gaussian-ish noise half-width around the cluster center.
    pub noise: f64,
    /// RNG seed; rows are pure functions of `(seed, index)`.
    pub seed: u64,
}

impl Default for LargeScaleConfig {
    fn default() -> Self {
        LargeScaleConfig {
            n_records: 10_000,
            n_numeric: 16,
            n_clusters: 4,
            protected_share: 0.3,
            proxy_shift: 0.15,
            noise: 0.06,
            seed: 42,
        }
    }
}

/// The on-demand large-`M` record source (see the module docs).
#[derive(Debug, Clone)]
pub struct LargeScale {
    config: LargeScaleConfig,
    /// `n_clusters x n_numeric` centers, drawn once from the seed.
    centers: Vec<f64>,
}

impl LargeScale {
    /// Draws the cluster centers and freezes the generator.
    ///
    /// # Panics
    /// Panics if `n_records`, `n_numeric`, or `n_clusters` is zero, or if
    /// `protected_share` is outside `[0, 1]`.
    pub fn new(config: LargeScaleConfig) -> LargeScale {
        assert!(config.n_records > 0, "n_records must be positive");
        assert!(config.n_numeric > 0, "n_numeric must be positive");
        assert!(config.n_clusters > 0, "n_clusters must be positive");
        assert!(
            (0.0..=1.0).contains(&config.protected_share),
            "protected_share must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x6c61_7267_655f_6d21);
        let centers = (0..config.n_clusters * config.n_numeric)
            .map(|_| rng.gen_range(0.15..0.85))
            .collect();
        LargeScale { config, centers }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &LargeScaleConfig {
        &self.config
    }

    /// Encoded feature width: `n_numeric + 1` (protected column last).
    pub fn width(&self) -> usize {
        self.config.n_numeric + 1
    }

    /// Per-column protected flags (only the last column is protected).
    pub fn protected_flags(&self) -> Vec<bool> {
        let mut flags = vec![false; self.width()];
        *flags.last_mut().expect("width >= 2") = true;
        flags
    }

    /// The RNG that generates record `i` — decorrelated across rows by a
    /// splitmix-style multiply so consecutive indices do not share streams.
    fn row_rng(&self, i: usize) -> StdRng {
        let mixed = self
            .config
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        StdRng::seed_from_u64(mixed)
    }

    /// Writes record `i` into `out` (length [`LargeScale::width`]) and
    /// returns `(cluster, protected)` — the latent label and group bit.
    pub fn row_into(&self, i: usize, out: &mut [f64]) -> (usize, bool) {
        assert_eq!(out.len(), self.width(), "output row has wrong width");
        assert!(i < self.config.n_records, "record index out of range");
        let c = &self.config;
        let mut rng = self.row_rng(i);
        let cluster = rng.gen_range(0..c.n_clusters);
        let protected = rng.gen_bool(c.protected_share);
        let center = &self.centers[cluster * c.n_numeric..(cluster + 1) * c.n_numeric];
        for (o, &mu) in out[..c.n_numeric].iter_mut().zip(center) {
            *o = (mu + rng.gen_range(-c.noise..c.noise)).clamp(0.0, 1.0);
        }
        if protected {
            out[0] = (out[0] + c.proxy_shift).clamp(0.0, 1.0);
        }
        out[c.n_numeric] = f64::from(protected);
        (cluster, protected)
    }

    /// Materializes records `lo..hi` as a full [`Dataset`] (labels = latent
    /// cluster parity, group = protected bit). Intended for benchmark
    /// baselines and tests; the streaming path never needs it.
    pub fn materialize(&self, lo: usize, hi: usize) -> Result<Dataset, DataError> {
        if lo >= hi || hi > self.config.n_records {
            return Err(DataError::Shape(format!(
                "invalid record range {lo}..{hi} for {} records",
                self.config.n_records
            )));
        }
        let (m, n) = (hi - lo, self.width());
        let mut x = Matrix::zeros(m, n);
        let mut y = Vec::with_capacity(m);
        let mut group = Vec::with_capacity(m);
        for (row, i) in (lo..hi).enumerate() {
            let (cluster, protected) = self.row_into(i, x.row_mut(row));
            y.push((cluster % 2) as f64);
            group.push(u8::from(protected));
        }
        let mut names: Vec<String> = (0..self.config.n_numeric)
            .map(|j| format!("f{j}"))
            .collect();
        names.push("protected".into());
        Dataset::new(x, names, self.protected_flags(), Some(y), group)
    }
}

impl RecordSource for LargeScale {
    fn n_records(&self) -> usize {
        self.config.n_records
    }

    fn n_features(&self) -> usize {
        self.width()
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        let n = self.width();
        crate::stream::check_read(self.config.n_records, n, indices, out, "large-scale source")?;
        for (slot, &i) in out.chunks_exact_mut(n).zip(indices) {
            self.row_into(i, slot);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LargeScale {
        LargeScale::new(LargeScaleConfig {
            n_records: 500,
            n_numeric: 6,
            ..Default::default()
        })
    }

    #[test]
    fn rows_are_pure_functions_of_seed_and_index() {
        let gen = small();
        let mut a = vec![0.0; gen.width()];
        let mut b = vec![0.0; gen.width()];
        for i in [0, 7, 499] {
            gen.row_into(i, &mut a);
            gen.row_into(i, &mut b);
            assert_eq!(a, b, "row {i} must regenerate bit-identically");
        }
        // Order independence: reading [5, 3] equals reading each alone.
        let mut gen2 = gen.clone();
        let mut batch = vec![0.0; 2 * gen.width()];
        gen2.read_rows(&[5, 3], &mut batch).unwrap();
        gen.row_into(5, &mut a);
        gen.row_into(3, &mut b);
        assert_eq!(&batch[..gen.width()], a.as_slice());
        assert_eq!(&batch[gen.width()..], b.as_slice());
    }

    #[test]
    fn materialize_agrees_with_streaming() {
        let gen = small();
        let ds = gen.materialize(0, 500).unwrap();
        let x = gen.clone().to_matrix().unwrap();
        assert_eq!(ds.x, x);
        assert_eq!(ds.protected, gen.protected_flags());
        assert_eq!(ds.n_records(), 500);
    }

    #[test]
    fn protected_column_matches_group_and_share() {
        let gen = LargeScale::new(LargeScaleConfig {
            n_records: 4000,
            ..Default::default()
        });
        let ds = gen.materialize(0, 4000).unwrap();
        let n = ds.n_features();
        let mut protected_count = 0usize;
        for i in 0..ds.n_records() {
            let bit = ds.x.get(i, n - 1);
            assert!(bit == 0.0 || bit == 1.0);
            assert_eq!(ds.group[i], bit as u8);
            protected_count += usize::from(bit == 1.0);
        }
        let share = protected_count as f64 / 4000.0;
        assert!((share - 0.3).abs() < 0.05, "share = {share}");
    }

    #[test]
    fn values_stay_in_unit_box_and_finite() {
        let gen = small();
        let ds = gen.materialize(0, 500).unwrap();
        assert!(ds
            .x
            .as_slice()
            .iter()
            .all(|&v| v.is_finite() && (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn bad_ranges_and_indices_error() {
        let gen = small();
        assert!(gen.materialize(10, 10).is_err());
        assert!(gen.materialize(0, 501).is_err());
        let mut g = gen.clone();
        let mut out = vec![0.0; g.width()];
        assert!(g.read_rows(&[500], &mut out).is_err());
        let mut short = vec![0.0; 2];
        assert!(g.read_rows(&[0], &mut short).is_err());
    }

    #[test]
    fn different_seeds_differ() {
        let a = LargeScale::new(LargeScaleConfig {
            n_records: 100,
            seed: 1,
            ..Default::default()
        });
        let b = LargeScale::new(LargeScaleConfig {
            n_records: 100,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(
            a.materialize(0, 100).unwrap().x,
            b.materialize(0, 100).unwrap().x
        );
    }
}
