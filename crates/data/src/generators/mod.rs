//! Seeded simulators for the paper's datasets.
//!
//! The five real datasets of §V-A are not redistributable, so each is
//! replaced by a synthetic generator calibrated to the published statistics
//! of Table II (see DESIGN.md §4 for the substitution rationale):
//!
//! | dataset | records | encoded dims | base rates (prot/unprot) |
//! |---------|---------|--------------|--------------------------|
//! | [`compas`]  | 6901  | 431 | 0.52 / 0.40 |
//! | [`census`]  | 48842 | 101 | 0.12 / 0.31 |
//! | [`credit`]  | 1000  | 67  | 0.67 / 0.72 |
//! | [`airbnb`]  | 27597 | 33  | ranking |
//! | [`xing`]    | 2240  | 59  | ranking |
//!
//! All generators share the same latent-factor design: a low-dimensional
//! latent "qualification" drives both the observed features and the outcome,
//! while the protected attribute shifts a subset of *proxy* features. The
//! proxies matter: Fig. 4 of the paper shows that merely masking the
//! protected column still leaks group membership, and our simulators must
//! (and do) reproduce that leakage.
//!
//! [`synthetic`] implements the §IV Gaussian-mixture study behind Fig. 2.

pub mod airbnb;
pub mod census;
pub mod compas;
pub mod credit;
pub mod large;
pub mod synthetic;
pub mod xing;

use rand::Rng;

/// Assigns binary labels so that each group's positive rate matches the
/// requested base rate **exactly** (up to integer rounding): within each
/// group, the records with the highest `scores` get label 1.
///
/// This is how the simulators pin the Table II base rates while keeping the
/// label correlated with the latent qualification.
pub fn labels_matching_base_rates(
    scores: &[f64],
    group: &[u8],
    rate_protected: f64,
    rate_unprotected: f64,
) -> Vec<f64> {
    assert_eq!(scores.len(), group.len());
    let mut labels = vec![0.0; scores.len()];
    for (g_val, rate) in [(1u8, rate_protected), (0u8, rate_unprotected)] {
        let mut members: Vec<usize> = (0..group.len()).filter(|&i| group[i] == g_val).collect();
        members.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n_pos = (members.len() as f64 * rate).round() as usize;
        for &i in members.iter().take(n_pos) {
            labels[i] = 1.0;
        }
    }
    labels
}

/// Samples an index from unnormalized non-negative weights.
pub fn sample_weighted<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut t = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        t -= w;
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Zipf-like weights `1 / (rank + 1)^s` for `n` levels — used for the long
/// tail of categorical levels (e.g. the 417 charge descriptions of COMPAS).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).collect()
}

/// Makes sure every categorical level `0..n_levels` appears at least once by
/// overwriting the first `n_levels` entries (requires `values.len() >=
/// n_levels`). Keeps the one-hot encoded dimensionality deterministic.
pub fn force_all_levels(values: &mut [usize], n_levels: usize) {
    assert!(
        values.len() >= n_levels,
        "need at least {n_levels} records to realize {n_levels} levels"
    );
    for (i, v) in values.iter_mut().take(n_levels).enumerate() {
        *v = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn base_rate_labels_exact() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let group: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let labels = labels_matching_base_rates(&scores, &group, 0.4, 0.6);
        let pos_p = labels
            .iter()
            .zip(&group)
            .filter(|&(l, &g)| g == 1 && *l == 1.0)
            .count();
        let pos_u = labels
            .iter()
            .zip(&group)
            .filter(|&(l, &g)| g == 0 && *l == 1.0)
            .count();
        assert_eq!(pos_p, 20); // 40% of 50
        assert_eq!(pos_u, 30); // 60% of 50
    }

    #[test]
    fn base_rate_labels_follow_scores() {
        let scores = vec![1.0, 2.0, 3.0, 4.0];
        let group = vec![0, 0, 0, 0];
        let labels = labels_matching_base_rates(&scores, &group, 0.0, 0.5);
        assert_eq!(labels, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sample_weighted_respects_zero_weight() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..100 {
            let i = sample_weighted(&mut rng, &[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn sample_weighted_covers_support() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[sample_weighted(&mut rng, &[1.0, 1.0, 1.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_weights_decreasing() {
        let w = zipf_weights(5, 1.0);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn force_all_levels_covers() {
        let mut v = vec![0usize; 10];
        force_all_levels(&mut v, 5);
        for lvl in 0..5 {
            assert!(v.contains(&lvl));
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn force_all_levels_panics_when_too_small() {
        let mut v = vec![0usize; 2];
        force_all_levels(&mut v, 5);
    }
}
