//! The §IV synthetic Gaussian-mixture study (Figure 2 of the paper).
//!
//! 100 data points with two real-valued non-sensitive attributes `X1`, `X2`
//! and one binary protected attribute `A`. Points are drawn from a mixture of
//! two Gaussians — (i) isotropic with unit variance, (ii) correlated with
//! covariance 0.95 — and the outcome `Y` is the mixture component. Three
//! variants control how `A` is assigned:
//!
//! * [`SyntheticVariant::Random`] — `A = 1` with probability 0.3,
//! * [`SyntheticVariant::CorrelatedX1`] — `A = 1` iff `X1 <= 3`,
//! * [`SyntheticVariant::CorrelatedX2`] — `A = 1` iff `X2 <= 3`.

use crate::dataset::Dataset;
use ifair_linalg::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// How the protected attribute `A` is assigned (§IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticVariant {
    /// `A = 1` with probability 0.3, independent of the features.
    Random,
    /// `A = 1` iff `X1 <= 3` (protected group correlated with attribute 1).
    CorrelatedX1,
    /// `A = 1` iff `X2 <= 3` (protected group correlated with attribute 2).
    CorrelatedX2,
}

impl SyntheticVariant {
    /// All three variants, in the row order of Figure 2.
    pub fn all() -> [SyntheticVariant; 3] {
        [
            SyntheticVariant::Random,
            SyntheticVariant::CorrelatedX1,
            SyntheticVariant::CorrelatedX2,
        ]
    }

    /// Human-readable name matching the paper's subfigure captions.
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticVariant::Random => "random",
            SyntheticVariant::CorrelatedX1 => "X1 <= 3",
            SyntheticVariant::CorrelatedX2 => "X2 <= 3",
        }
    }
}

/// Configuration for the synthetic study.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of points (paper: 100).
    pub n_records: usize,
    /// Protected-attribute assignment variant.
    pub variant: SyntheticVariant,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            n_records: 100,
            variant: SyntheticVariant::Random,
            seed: 42,
        }
    }
}

/// Generates the synthetic dataset of §IV.
///
/// Features are `[X1, X2, A]` with `A` the (single) protected column; `y` is
/// the mixture-component label; `group[i] = A_i`.
///
/// The three variants share mixture samples for a given seed, so — exactly
/// as the paper sets it up — "the three synthetic datasets have the same
/// values for the non-sensitive attributes X1 and X2 as well as for the
/// outcome variable Y", differing only in `A`.
pub fn generate(config: &SyntheticConfig) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let std_normal = Normal::new(0.0, 1.0).expect("valid normal");

    // Component means chosen so the cloud spans the [1,7] x [0,6] box of
    // Fig. 2 and the X<=3 thresholds split it meaningfully.
    let mu0 = [2.2, 1.8]; // isotropic component, outcome Y = 0
    let mu1 = [4.8, 4.0]; // correlated component (rho = 0.95), outcome Y = 1

    let mut x = Matrix::zeros(config.n_records, 3);
    let mut y = Vec::with_capacity(config.n_records);
    let mut group = Vec::with_capacity(config.n_records);

    for i in 0..config.n_records {
        let component = rng.gen_bool(0.5);
        let (x1, x2) = if component {
            // Correlated Gaussian: covariance 0.95, unit variances.
            // Cholesky of [[1, .95], [.95, 1]] = [[1, 0], [.95, sqrt(1-.95^2)]].
            let z1: f64 = std_normal.sample(&mut rng);
            let z2: f64 = std_normal.sample(&mut rng);
            (
                mu1[0] + z1,
                mu1[1] + 0.95 * z1 + (1.0 - 0.95f64 * 0.95).sqrt() * z2,
            )
        } else {
            (
                mu0[0] + std_normal.sample(&mut rng),
                mu0[1] + std_normal.sample(&mut rng),
            )
        };
        // Draw the random-variant coin for every record (keeps X1/X2/Y
        // identical across variants for a fixed seed).
        let coin = rng.gen_bool(0.3);
        let a = match config.variant {
            SyntheticVariant::Random => u8::from(coin),
            SyntheticVariant::CorrelatedX1 => u8::from(x1 <= 3.0),
            SyntheticVariant::CorrelatedX2 => u8::from(x2 <= 3.0),
        };
        x.set(i, 0, x1);
        x.set(i, 1, x2);
        x.set(i, 2, a as f64);
        y.push(f64::from(component));
        group.push(a);
    }

    Dataset::new(
        x,
        vec!["X1".into(), "X2".into(), "A".into()],
        vec![false, false, true],
        Some(y),
        group,
    )
    .expect("consistent shapes by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_size() {
        let d = generate(&SyntheticConfig::default());
        assert_eq!(d.n_records(), 100);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.protected, vec![false, false, true]);
    }

    #[test]
    fn variants_share_features_and_outcome() {
        let mk = |variant| {
            generate(&SyntheticConfig {
                variant,
                ..Default::default()
            })
        };
        let random = mk(SyntheticVariant::Random);
        let x1v = mk(SyntheticVariant::CorrelatedX1);
        let x2v = mk(SyntheticVariant::CorrelatedX2);
        for i in 0..100 {
            assert_eq!(random.x.get(i, 0), x1v.x.get(i, 0));
            assert_eq!(random.x.get(i, 1), x2v.x.get(i, 1));
        }
        assert_eq!(random.y, x1v.y);
        assert_eq!(random.y, x2v.y);
        // ... but the protected assignment differs.
        assert_ne!(random.group, x1v.group);
    }

    #[test]
    fn correlated_variants_respect_threshold() {
        let d = generate(&SyntheticConfig {
            variant: SyntheticVariant::CorrelatedX1,
            ..Default::default()
        });
        for i in 0..d.n_records() {
            assert_eq!(d.group[i] == 1, d.x.get(i, 0) <= 3.0);
        }
        let d2 = generate(&SyntheticConfig {
            variant: SyntheticVariant::CorrelatedX2,
            ..Default::default()
        });
        for i in 0..d2.n_records() {
            assert_eq!(d2.group[i] == 1, d2.x.get(i, 1) <= 3.0);
        }
    }

    #[test]
    fn random_variant_has_reasonable_share() {
        let d = generate(&SyntheticConfig {
            n_records: 2000,
            ..Default::default()
        });
        let share = d.protected_share();
        assert!((share - 0.3).abs() < 0.05, "share = {share}");
    }

    #[test]
    fn outcome_is_balanced_mixture() {
        let d = generate(&SyntheticConfig {
            n_records: 2000,
            ..Default::default()
        });
        let pos: f64 = d.labels().iter().sum::<f64>() / 2000.0;
        assert!((pos - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&SyntheticConfig::default());
        let b = generate(&SyntheticConfig::default());
        assert_eq!(a.x, b.x);
        let c = generate(&SyntheticConfig {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn correlated_component_is_correlated() {
        let d = generate(&SyntheticConfig {
            n_records: 5000,
            ..Default::default()
        });
        // Pearson correlation of X1, X2 among component-1 records.
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for i in 0..d.n_records() {
            if d.labels()[i] == 1.0 {
                xs.push(d.x.get(i, 0));
                ys.push(d.x.get(i, 1));
            }
        }
        let mx = ifair_linalg::vector::mean(&xs);
        let my = ifair_linalg::vector::mean(&ys);
        let mut num = 0.0;
        let mut dx = 0.0;
        let mut dy = 0.0;
        for (&a, &b) in xs.iter().zip(&ys) {
            num += (a - mx) * (b - my);
            dx += (a - mx) * (a - mx);
            dy += (b - my) * (b - my);
        }
        let rho = num / (dx.sqrt() * dy.sqrt());
        assert!(rho > 0.9, "rho = {rho}");
    }
}
