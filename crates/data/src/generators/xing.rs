//! Xing job-portal simulator (§V-A, Table I, Table IV).
//!
//! Calibrated to Table II: 2240 profiles (57 job-search queries x top ~40
//! candidates), 59 encoded dimensions, protected attribute *gender*. The
//! deserved score is a weighted sum of work experience, education experience
//! and profile views (§V-E sweeps these weights in Table IV; the default is
//! uniform weights).
//!
//! Query 0 is a "Brand Strategist"-style query whose candidates mirror the
//! qualification spread of Table I (very similar candidates scattered over
//! the ranking), which is the paper's motivating example of individual
//! unfairness.

use crate::dataset::{Dataset, Query, RankingDataset};
use crate::encode::{ColumnData, OneHotEncoder, RawDataset};
use crate::generators::force_all_levels;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Configuration for the Xing simulator.
#[derive(Debug, Clone)]
pub struct XingConfig {
    /// Number of job queries (paper: 57).
    pub n_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for XingConfig {
    fn default() -> Self {
        XingConfig {
            n_queries: 57,
            seed: 42,
        }
    }
}

/// Number of job-category levels (fixed so the encoded width is 59).
const N_CATEGORIES: usize = 54;
/// Total records at the paper's query count (Table II: N = 2240).
const PAPER_TOTAL: usize = 2240;

/// Weights of the deserved ranking score over
/// `[work_experience, education_experience, profile_views]`.
///
/// §V-E: "the reported results correspond to uniform weights"; Table IV
/// sweeps alternatives over `{0, 0.25, 0.5, 0.75, 1}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Weight of work experience.
    pub work: f64,
    /// Weight of education experience.
    pub education: f64,
    /// Weight of profile views.
    pub views: f64,
}

impl ScoreWeights {
    /// Uniform weights (the paper's default).
    pub fn uniform() -> ScoreWeights {
        ScoreWeights {
            work: 1.0,
            education: 1.0,
            views: 1.0,
        }
    }
}

/// Generates the Xing-like ranking dataset. See the [module docs](self).
///
/// `data.y` holds the deserved score under uniform weights; use
/// [`deserved_scores`] to recompute it for other weight choices.
pub fn generate(config: &XingConfig) -> RankingDataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let normal = Normal::new(0.0, 1.0).expect("valid normal");

    // Distribute candidates over queries: at the paper's 57 queries this
    // yields exactly 2240 records (40 queries x 39 + 17 queries x 40).
    let per_query_base = PAPER_TOTAL / 57; // 39
    let n_with_extra = PAPER_TOTAL - per_query_base * 57; // 17
    let sizes: Vec<usize> = (0..config.n_queries)
        .map(|q| {
            if q >= config.n_queries.saturating_sub(n_with_extra) {
                per_query_base + 1
            } else {
                per_query_base
            }
        })
        .collect();
    let total: usize = sizes.iter().sum();

    let mut work = Vec::with_capacity(total);
    let mut education = Vec::with_capacity(total);
    let mut views = Vec::with_capacity(total);
    let mut gender = Vec::with_capacity(total);
    let mut category = Vec::with_capacity(total);
    let mut queries = Vec::with_capacity(config.n_queries);

    let mut idx = 0usize;
    for (q, &size) in sizes.iter().enumerate() {
        let cat = q % N_CATEGORIES;
        // Per-query qualification scale: some queries attract senior
        // candidates (hundreds of months of experience, as in Table I).
        let work_scale = 60.0 + 120.0 * rng.gen::<f64>();
        let edu_scale = 30.0 + 50.0 * rng.gen::<f64>();
        let mut indices = Vec::with_capacity(size);
        for _ in 0..size {
            let talent: f64 = normal.sample(&mut rng);
            let female = rng.gen_bool(0.325);
            // Qualifications do NOT depend on gender (Table I shows similar
            // qualifications across genders); profile views carry a mild
            // exposure bias against the protected group — the proxy that the
            // adversarial test (Fig. 4) probes.
            let w = (work_scale * (0.5 * talent + 0.6 * rng.gen::<f64>() + 0.4)).clamp(0.0, 520.0);
            let e = (edu_scale * (0.3 * talent + 0.8 * rng.gen::<f64>() + 0.2)).clamp(0.0, 110.0);
            let v = ((40.0 + 18.0 * talent) * (1.0 - 0.25 * f64::from(female))
                + 12.0 * normal.sample(&mut rng))
            .max(0.0);
            work.push(w.round());
            education.push(e.round());
            views.push(v.round());
            gender.push(u8::from(female));
            category.push(cat);
            indices.push(idx);
            idx += 1;
        }
        let id = if q == 0 {
            "Brand Strategist".to_string()
        } else {
            format!("job_query_{q:02}")
        };
        queries.push(Query { id, indices });
    }
    force_all_levels(&mut category, N_CATEGORIES.min(total));

    let raw = RawDataset {
        names: vec![
            "work_experience".into(),
            "education_experience".into(),
            "profile_views".into(),
            "gender".into(),
            "job_category".into(),
        ],
        columns: vec![
            ColumnData::Numeric(work),
            ColumnData::Numeric(education),
            ColumnData::Numeric(views),
            ColumnData::Categorical(
                gender
                    .iter()
                    .map(|&g| if g == 1 { "female" } else { "male" }.to_string())
                    .collect(),
            ),
            ColumnData::Categorical(
                category
                    .iter()
                    .map(|&c| format!("category_{c:02}"))
                    .collect(),
            ),
        ],
        protected: vec![false, false, false, true, false],
        y: None,
        group: gender,
    };
    let mut data = OneHotEncoder::fit_transform(&raw).expect("consistent schema");
    data.y = Some(deserved_scores(&data, ScoreWeights::uniform()));
    RankingDataset::new(data, queries).expect("queries valid by construction")
}

/// Recomputes the deserved score `y` for arbitrary weights (Table IV).
///
/// Each qualification attribute is min-max normalized over the dataset before
/// weighting, so weights on different scales are comparable.
pub fn deserved_scores(data: &Dataset, weights: ScoreWeights) -> Vec<f64> {
    let col = |name: &str| -> usize {
        data.feature_names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing column {name}"))
    };
    let cols = [
        col("work_experience"),
        col("education_experience"),
        col("profile_views"),
    ];
    let ws = [weights.work, weights.education, weights.views];
    let mut normalized = vec![vec![0.0; data.n_records()]; 3];
    for (k, &c) in cols.iter().enumerate() {
        let v = data.x.col(c);
        let mn = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let mx = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let range = (mx - mn).max(1e-12);
        for (out, &vi) in normalized[k].iter_mut().zip(&v) {
            *out = (vi - mn) / range;
        }
    }
    (0..data.n_records())
        .map(|i| (0..3).map(|k| ws[k] * normalized[k][i]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let r = generate(&XingConfig::default());
        assert_eq!(r.n_queries(), 57);
        // Table II: N = 2240, M = 59.
        assert_eq!(r.data.n_records(), 2240);
        assert_eq!(r.data.n_features(), 59);
    }

    #[test]
    fn protected_share_near_a_third() {
        let r = generate(&XingConfig::default());
        let share = r.data.protected_share();
        assert!((share - 0.325).abs() < 0.04, "share = {share}");
    }

    #[test]
    fn brand_strategist_query_exists() {
        let r = generate(&XingConfig::default());
        assert_eq!(r.queries[0].id, "Brand Strategist");
        assert!(r.queries[0].indices.len() >= 39);
    }

    #[test]
    fn deserved_scores_respond_to_weights() {
        let r = generate(&XingConfig::default());
        let only_work = deserved_scores(
            &r.data,
            ScoreWeights {
                work: 1.0,
                education: 0.0,
                views: 0.0,
            },
        );
        let only_edu = deserved_scores(
            &r.data,
            ScoreWeights {
                work: 0.0,
                education: 1.0,
                views: 0.0,
            },
        );
        assert_ne!(only_work, only_edu);
        // Scores normalized: max of single-attribute score is <= 1.
        assert!(only_work.iter().cloned().fold(0.0, f64::max) <= 1.0 + 1e-9);
    }

    #[test]
    fn uniform_scores_stored_in_y() {
        let r = generate(&XingConfig::default());
        let expect = deserved_scores(&r.data, ScoreWeights::uniform());
        assert_eq!(r.data.y.as_ref().unwrap(), &expect);
    }

    #[test]
    fn queries_partition_records() {
        let r = generate(&XingConfig::default());
        let mut seen = vec![false; r.data.n_records()];
        for q in &r.queries {
            for &i in &q.indices {
                assert!(!seen[i], "record {i} appears in two queries");
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn views_biased_against_protected() {
        let r = generate(&XingConfig::default());
        let col = r
            .data
            .feature_names
            .iter()
            .position(|n| n == "profile_views")
            .unwrap();
        let (mut sp, mut np_, mut su, mut nu) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..r.data.n_records() {
            if r.data.group[i] == 1 {
                sp += r.data.x.get(i, col);
                np_ += 1.0;
            } else {
                su += r.data.x.get(i, col);
                nu += 1.0;
            }
        }
        assert!(su / nu > sp / np_, "views must show exposure bias");
    }

    #[test]
    fn deterministic() {
        let a = generate(&XingConfig::default());
        let b = generate(&XingConfig::default());
        assert_eq!(a.data.x, b.data.x);
    }
}
