//! Data pipeline and dataset simulators for the iFair reproduction.
//!
//! The paper's evaluation (§V) runs on five real-world datasets that are not
//! redistributable, so this crate provides **seeded synthetic simulators**
//! calibrated to the published statistics of Table II (record counts, encoded
//! dimensionality, per-group base rates) together with the full preprocessing
//! pipeline the paper describes in §V-B:
//!
//! * [`Dataset`] / [`RankingDataset`] — encoded feature matrices with
//!   per-column protected flags, outcomes and group membership,
//! * [`encode`] — one-hot encoding of categorical attributes,
//! * [`scale`] — unit-variance and min-max normalization,
//! * [`split`] — seeded random / stratified train-validation-test splits,
//! * [`csv`] — a minimal CSV reader/writer so real data can be dropped in,
//! * [`stream`] — random-access [`RecordSource`] readers (indexed CSV,
//!   in-memory matrices) and a chunked sequential CSV iterator, so datasets
//!   bigger than comfortable-in-one-`Vec` can feed the mini-batch trainer,
//! * [`binfmt`] — the sharded `.ifb` binary dataset format for out-of-core
//!   training: a streaming writer plus a pread-backed [`RecordSource`] with
//!   O(1) resident memory,
//! * [`persist`] — the atomic (temp + fsync + rename) file-write primitive
//!   shared by dataset shards and, via `ifair-api`, every artifact,
//! * [`generators`] — the five dataset simulators, the §IV synthetic
//!   Gaussian-mixture study, and an on-demand large-`M` generator
//!   ([`generators::large`]) for scaling studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod csv;
pub mod dataset;
pub mod encode;
pub mod error;
pub mod generators;
pub mod persist;
pub mod scale;
pub mod split;
pub mod stream;

pub use binfmt::{BinDatasetWriter, BinRecordSource};
pub use dataset::{Dataset, Query, RankingDataset};
pub use encode::{ColumnData, OneHotEncoder, RawDataset};
pub use error::DataError;
pub use scale::{MinMaxScaler, StandardScaler};
pub use split::{kfold, train_test_split, train_val_test_split, SplitIndices};
pub use stream::{ChunkedCsvReader, CsvRecordSource, RecordSource};
