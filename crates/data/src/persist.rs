//! Atomic file writes for datasets and artifacts.
//!
//! [`write_atomic`] is the single durable write primitive of the workspace:
//! binary dataset shards ([`crate::binfmt`]) call it directly, and
//! `ifair-api::write_atomic` (the artifact/checkpoint path) delegates here
//! after its fault-injection hook. Keeping the implementation in the data
//! crate lets the dataset writer stay free of a dependency cycle — the api
//! crate depends on this one, not the other way around.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter distinguishing concurrent [`write_atomic`] temp
/// files (two threads writing the same target must not share one).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes go to a temp file in
/// the target's directory, are fsynced, and the temp file is renamed over
/// the target (itself fsynced at the directory level on Unix). A reader —
/// including a crashed writer's next boot — observes either the old
/// complete file or the new complete file, never a torn mix. This is the
/// write path every artifact, training checkpoint and dataset shard goes
/// through.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(
        ".{stem}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents)?;
        // fsync before rename: without it a crash can leave a renamed file
        // whose *data* never reached the disk — exactly the torn artifact
        // the rename dance exists to rule out.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Make the rename itself durable. Directory fsync is Unix-specific and
    // advisory here: filesystems without it still got the atomic rename.
    #[cfg(unix)]
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ifair-data-atomic-{}.bin", std::process::id()));
        write_atomic(&path, b"first version").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first version");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp droppings left behind next to the target.
        let stem = path.file_name().unwrap().to_str().unwrap().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(&stem))
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn write_atomic_fails_cleanly_on_bad_directory() {
        let path = Path::new("/definitely/not/a/dir/artifact.bin");
        assert!(write_atomic(path, b"x").is_err());
    }
}
