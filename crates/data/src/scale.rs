//! Feature scaling.
//!
//! §V-B: "all features vectors are normalized to have unit variance". The
//! [`StandardScaler`] (mean 0, variance 1) implements that; [`MinMaxScaler`]
//! maps features into `[0, 1]`, which the LFR reference implementation uses.

use ifair_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Standardizes columns to zero mean and unit variance.
///
/// Constant columns (std = 0) are centered but left unscaled — the common
/// degenerate case for rare one-hot levels in small splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
    /// When false, only variance is normalized (data keeps its mean). The
    /// paper only asks for unit variance, so this defaults to true but the
    /// pipeline exposes both.
    center: bool,
}

impl StandardScaler {
    /// Learns per-column statistics from `x`.
    pub fn fit(x: &Matrix) -> StandardScaler {
        StandardScaler {
            means: x.col_means(),
            stds: x.col_stds(),
            center: true,
        }
    }

    /// Learns statistics but configures the transform to skip centering.
    pub fn fit_no_center(x: &Matrix) -> StandardScaler {
        StandardScaler {
            center: false,
            ..StandardScaler::fit(x)
        }
    }

    /// Applies the learned scaling to `x` (same width as the fitted matrix).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "width mismatch in transform");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                if self.center {
                    *v -= m;
                }
                if s > 1e-12 {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Inverts the scaling.
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.means.len(), "width mismatch in inverse");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                if s > 1e-12 {
                    *v *= s;
                }
                if self.center {
                    *v += m;
                }
            }
        }
        out
    }

    /// Fits and transforms in one call.
    pub fn fit_transform(x: &Matrix) -> (StandardScaler, Matrix) {
        let s = StandardScaler::fit(x);
        let t = s.transform(x);
        (s, t)
    }

    /// Width of the matrix the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }
}

/// Scales columns into `[0, 1]` by the observed min/max.
///
/// Constant columns map to 0. Values outside the fitted range at transform
/// time are clipped, so downstream models (e.g. LFR prototypes initialized in
/// the unit box) never see out-of-range features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column ranges from `x`.
    pub fn fit(x: &Matrix) -> MinMaxScaler {
        let n = x.cols();
        let mut mins = vec![f64::INFINITY; n];
        let mut maxs = vec![f64::NEG_INFINITY; n];
        for row in x.row_iter() {
            for ((mn, mx), &v) in mins.iter_mut().zip(maxs.iter_mut()).zip(row) {
                *mn = mn.min(v);
                *mx = mx.max(v);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Applies the learned scaling (clipping out-of-range values).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mins.len(), "width mismatch in transform");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &mn), &mx) in row.iter_mut().zip(&self.mins).zip(&self.maxs) {
                let range = mx - mn;
                *v = if range > 1e-12 {
                    ((*v - mn) / range).clamp(0.0, 1.0)
                } else {
                    0.0
                };
            }
        }
        out
    }

    /// Inverts the scaling (clipped values cannot be recovered exactly).
    pub fn inverse_transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mins.len(), "width mismatch in inverse");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, &mn), &mx) in row.iter_mut().zip(&self.mins).zip(&self.maxs) {
                let range = mx - mn;
                *v = if range > 1e-12 { *v * range + mn } else { mn };
            }
        }
        out
    }

    /// Fits and transforms in one call.
    pub fn fit_transform(x: &Matrix) -> (MinMaxScaler, Matrix) {
        let s = MinMaxScaler::fit(x);
        let t = s.transform(x);
        (s, t)
    }

    /// Width of the matrix the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.mins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, 100.0, 5.0],
            vec![2.0, 200.0, 5.0],
            vec![3.0, 300.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_variance() {
        let (_, t) = StandardScaler::fit_transform(&sample());
        let means = t.col_means();
        let stds = t.col_stds();
        assert!(means[0].abs() < 1e-12 && means[1].abs() < 1e-12);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!((stds[1] - 1.0).abs() < 1e-12);
        // Constant column: centered, unscaled.
        assert!(t.col(2).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn standard_scaler_roundtrip() {
        let x = sample();
        let s = StandardScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        assert!(back.sub(&x).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn no_center_keeps_mean_direction() {
        let x = sample();
        let s = StandardScaler::fit_no_center(&x);
        let t = s.transform(&x);
        // Values stay positive (only divided by std).
        assert!(t.col(0).iter().all(|&v| v > 0.0));
        let stds = t.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        let back = s.inverse_transform(&t);
        assert!(back.sub(&x).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let (_, t) = MinMaxScaler::fit_transform(&sample());
        for row in t.row_iter() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(2, 0), 1.0);
        // Constant column maps to 0.
        assert!(t.col(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minmax_clips_out_of_range() {
        let s = MinMaxScaler::fit(&sample());
        let wild = Matrix::from_rows(vec![vec![-10.0, 1000.0, 5.0]]).unwrap();
        let t = s.transform(&wild);
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(0, 1), 1.0);
    }

    #[test]
    fn minmax_roundtrip_within_range() {
        let x = sample();
        let s = MinMaxScaler::fit(&x);
        let back = s.inverse_transform(&s.transform(&x));
        assert!(back.sub(&x).unwrap().max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn transform_panics_on_width_mismatch() {
        let s = StandardScaler::fit(&sample());
        s.transform(&Matrix::zeros(1, 2));
    }
}
