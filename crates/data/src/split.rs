//! Seeded train / validation / test splits.
//!
//! §V-B: "We randomly split the datasets into three parts … We use the same
//! data split to compare all methods." Splits are index-based so the same
//! `SplitIndices` can slice a dataset and any learned representation of it.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Record indices of a three-way split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitIndices {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices (hyper-parameter selection).
    pub val: Vec<usize>,
    /// Held-out test indices.
    pub test: Vec<usize>,
}

/// Randomly splits `n` records into train/val/test by the given fractions.
///
/// `train_frac + val_frac` must be at most 1; the remainder goes to test.
/// Deterministic for a fixed seed.
pub fn train_val_test_split(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> SplitIndices {
    assert!(
        (0.0..=1.0).contains(&train_frac)
            && (0.0..=1.0).contains(&val_frac)
            && train_frac + val_frac <= 1.0 + 1e-12,
        "fractions must be in [0,1] and sum to at most 1"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_val = (n as f64 * val_frac).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    SplitIndices {
        train: idx[..n_train].to_vec(),
        val: idx[n_train..n_train + n_val].to_vec(),
        test: idx[n_train + n_val..].to_vec(),
    }
}

/// Two-way split helper; returns `(train, test)` indices.
pub fn train_test_split(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let s = train_val_test_split(n, train_frac, 0.0, seed);
    (s.train, s.test)
}

/// Stratified three-way split preserving label proportions per stratum.
///
/// `strata[i]` is an arbitrary small integer (e.g. label, or label x group);
/// each stratum is split independently with the given fractions.
pub fn stratified_split(strata: &[u8], train_frac: f64, val_frac: f64, seed: u64) -> SplitIndices {
    let mut by_stratum: std::collections::BTreeMap<u8, Vec<usize>> = Default::default();
    for (i, &s) in strata.iter().enumerate() {
        by_stratum.entry(s).or_default().push(i);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = SplitIndices {
        train: Vec::new(),
        val: Vec::new(),
        test: Vec::new(),
    };
    for (_, mut idx) in by_stratum {
        idx.shuffle(&mut rng);
        let n = idx.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = ((n as f64 * val_frac).round() as usize).min(n - n_train.min(n));
        let n_train = n_train.min(n);
        out.train.extend_from_slice(&idx[..n_train]);
        out.val.extend_from_slice(&idx[n_train..n_train + n_val]);
        out.test.extend_from_slice(&idx[n_train + n_val..]);
    }
    out.train.sort_unstable();
    out.val.sort_unstable();
    out.test.sort_unstable();
    out
}

/// K-fold cross-validation indices: returns `k` pairs of
/// `(train_indices, fold_indices)`.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold requires k >= 2");
    assert!(n >= k, "need at least k records");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, &i) in idx.iter().enumerate() {
        folds[pos % k].push(i);
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|&(g, _)| g != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_is_a_partition() {
        let s = train_val_test_split(100, 0.6, 0.2, 7);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
        let all: HashSet<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let a = train_val_test_split(50, 0.5, 0.25, 42);
        let b = train_val_test_split(50, 0.5, 0.25, 42);
        assert_eq!(a.train, b.train);
        let c = train_val_test_split(50, 0.5, 0.25, 43);
        assert_ne!(a.train, c.train);
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn rejects_bad_fractions() {
        train_val_test_split(10, 0.8, 0.5, 0);
    }

    #[test]
    fn two_way_split() {
        let (tr, te) = train_test_split(10, 0.7, 1);
        assert_eq!(tr.len(), 7);
        assert_eq!(te.len(), 3);
    }

    #[test]
    fn stratified_preserves_proportions() {
        // 80 zeros, 20 ones.
        let mut strata = vec![0u8; 80];
        strata.extend(vec![1u8; 20]);
        let s = stratified_split(&strata, 0.5, 0.25, 3);
        let count = |idx: &[usize], label: u8| idx.iter().filter(|&&i| strata[i] == label).count();
        assert_eq!(count(&s.train, 0), 40);
        assert_eq!(count(&s.train, 1), 10);
        assert_eq!(count(&s.val, 0), 20);
        assert_eq!(count(&s.val, 1), 5);
        assert_eq!(count(&s.test, 0), 20);
        assert_eq!(count(&s.test, 1), 5);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = kfold(23, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &i in test {
                seen[i] += 1;
            }
            let train_set: HashSet<usize> = train.iter().copied().collect();
            assert!(test.iter().all(|i| !train_set.contains(i)));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn kfold_rejects_k1() {
        kfold(10, 1, 0);
    }
}
