//! Streaming access to large record sets.
//!
//! The full-batch trainer needs the whole `M x N` feature matrix in memory;
//! the mini-batch path only ever touches `batch_records` rows per step. This
//! module provides the abstraction that makes the second fact usable:
//! [`RecordSource`], a random-access row reader that an objective can pull
//! seeded batches from, together with two disk-friendly implementations —
//! [`CsvRecordSource`] (a byte-offset-indexed numeric CSV, `O(M)` *offsets*
//! in memory instead of `O(M·N)` floats) and [`ChunkedCsvReader`] (a
//! sequential chunk iterator for one-pass preprocessing such as fitting
//! scalers or computing column statistics).
//!
//! In-memory types ([`Matrix`], [`Dataset`]) implement [`RecordSource`] too,
//! so the same training loop serves both regimes, and
//! `ifair_data::generators::large` adds an implementation that synthesizes
//! rows on demand without materializing anything.

use crate::dataset::Dataset;
use crate::error::DataError;
use ifair_linalg::Matrix;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::Path;

/// Random-access reader over an `M x N` record set.
///
/// `read_rows` takes `&mut self` so file-backed sources can seek without
/// interior mutability; trainers call it from a single thread between
/// parallel objective evaluations.
pub trait RecordSource {
    /// Number of records `M`.
    fn n_records(&self) -> usize;

    /// Number of features `N` per record.
    fn n_features(&self) -> usize;

    /// Copies the rows at `indices` (in order) into `out`, which must hold
    /// exactly `indices.len() * n_features()` values, row-major.
    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError>;

    /// Materializes the whole source as a dense matrix. Intended for small
    /// sources and tests; large-`M` callers should stay on `read_rows`.
    fn to_matrix(&mut self) -> Result<Matrix, DataError> {
        let (m, n) = (self.n_records(), self.n_features());
        let indices: Vec<usize> = (0..m).collect();
        let mut data = vec![0.0; m * n];
        self.read_rows(&indices, &mut data)?;
        Matrix::from_vec(m, n, data).map_err(|e| DataError::Shape(e.to_string()))
    }
}

/// Validates an `indices`/`out` pair against the source shape (shared by
/// every in-tree [`RecordSource`] implementation).
pub(crate) fn check_read(
    m: usize,
    n: usize,
    indices: &[usize],
    out: &[f64],
    what: &str,
) -> Result<(), DataError> {
    if out.len() != indices.len() * n {
        return Err(DataError::Shape(format!(
            "{what}: output buffer holds {} values but {} rows x {} features were requested",
            out.len(),
            indices.len(),
            n
        )));
    }
    if let Some(&bad) = indices.iter().find(|&&i| i >= m) {
        return Err(DataError::Shape(format!(
            "{what}: record index {bad} out of range for {m} records"
        )));
    }
    Ok(())
}

impl RecordSource for Matrix {
    fn n_records(&self) -> usize {
        self.rows()
    }

    fn n_features(&self) -> usize {
        self.cols()
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        (&*self).read_rows(indices, out)
    }
}

/// A borrowed matrix is a source too (`read_rows` only needs `&mut` for
/// file-backed seeking), so trainers holding `&Matrix` can stream batches
/// without cloning the data: `let mut src = &matrix;`.
impl RecordSource for &Matrix {
    fn n_records(&self) -> usize {
        self.rows()
    }

    fn n_features(&self) -> usize {
        self.cols()
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        let n = self.cols();
        check_read(self.rows(), n, indices, out, "matrix source")?;
        for (slot, &i) in out.chunks_exact_mut(n).zip(indices) {
            slot.copy_from_slice(self.row(i));
        }
        Ok(())
    }
}

impl RecordSource for Dataset {
    fn n_records(&self) -> usize {
        self.x.rows()
    }

    fn n_features(&self) -> usize {
        self.x.cols()
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        self.x.read_rows(indices, out)
    }
}

/// How many records share one indexed byte offset in [`CsvRecordSource`]:
/// the index keeps every `OFFSET_STRIDE`-th record's offset and `read_rows`
/// forward-scans at most `OFFSET_STRIDE - 1` lines from the nearest anchor.
const OFFSET_STRIDE: usize = 64;

/// A numeric CSV file as a [`RecordSource`].
///
/// The constructor makes one sequential pass counting records and recording
/// the byte offset of every `OFFSET_STRIDE`-th (64th) data line, so resident
/// memory is `M / 64` offsets — 1/64th of a dense per-record index —
/// regardless of width. `read_rows` seeks to the nearest indexed anchor at
/// or before each requested record and forward-scans the few intervening
/// lines. Every column must be numeric (run categorical data through
/// [`crate::encode::OneHotEncoder`] once, write the encoded CSV, then
/// stream it here).
pub struct CsvRecordSource<R: BufRead + Seek> {
    reader: R,
    /// Byte offset of every `OFFSET_STRIDE`-th non-blank data line.
    offsets: Vec<u64>,
    /// Total non-blank data lines (records).
    n_rows: usize,
    /// Column names from the header row.
    names: Vec<String>,
    /// Scratch line buffer reused across reads.
    line: String,
}

impl CsvRecordSource<BufReader<File>> {
    /// Opens and indexes a numeric CSV file with a header row.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, DataError> {
        let file = File::open(path.as_ref()).map_err(|e| {
            DataError::Parse(format!("cannot open {}: {e}", path.as_ref().display()))
        })?;
        CsvRecordSource::from_reader(BufReader::new(file))
    }
}

impl<R: BufRead + Seek> CsvRecordSource<R> {
    /// Indexes a numeric CSV with a header row from any seekable reader.
    pub fn from_reader(mut reader: R) -> Result<Self, DataError> {
        reader
            .seek(SeekFrom::Start(0))
            .map_err(|e| DataError::Parse(e.to_string()))?;
        let mut line = String::new();
        let header_len = reader
            .read_line(&mut line)
            .map_err(|e| DataError::Parse(e.to_string()))?;
        if header_len == 0 {
            return Err(DataError::Parse("empty CSV input".into()));
        }
        let names: Vec<String> = crate::csv::parse_line(line.trim_end_matches(['\n', '\r']))
            .into_iter()
            .map(|s| s.trim().to_string())
            .collect();
        if names.is_empty() || names.iter().all(String::is_empty) {
            return Err(DataError::Parse("CSV header has no columns".into()));
        }

        let mut offsets = Vec::new();
        let mut n_rows = 0usize;
        let mut pos = header_len as u64;
        loop {
            line.clear();
            let len = reader
                .read_line(&mut line)
                .map_err(|e| DataError::Parse(e.to_string()))?;
            if len == 0 {
                break;
            }
            if !line.trim().is_empty() {
                if n_rows.is_multiple_of(OFFSET_STRIDE) {
                    offsets.push(pos);
                }
                n_rows += 1;
            }
            pos += len as u64;
        }
        Ok(CsvRecordSource {
            reader,
            offsets,
            n_rows,
            names,
            line: String::new(),
        })
    }

    /// Column names from the header row.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }
}

impl<R: BufRead + Seek> RecordSource for CsvRecordSource<R> {
    fn n_records(&self) -> usize {
        self.n_rows
    }

    fn n_features(&self) -> usize {
        self.names.len()
    }

    fn read_rows(&mut self, indices: &[usize], out: &mut [f64]) -> Result<(), DataError> {
        let n = self.names.len();
        check_read(self.n_rows, n, indices, out, "CSV source")?;
        for (slot, &i) in out.chunks_exact_mut(n).zip(indices) {
            self.reader
                .seek(SeekFrom::Start(self.offsets[i / OFFSET_STRIDE]))
                .map_err(|e| DataError::Parse(e.to_string()))?;
            // Forward-scan from the anchor: skip the records between the
            // anchor and the target, ignoring blank lines like the indexer.
            let mut remaining = i % OFFSET_STRIDE;
            loop {
                self.line.clear();
                let len = self
                    .reader
                    .read_line(&mut self.line)
                    .map_err(|e| DataError::Parse(e.to_string()))?;
                if len == 0 {
                    return Err(DataError::Parse(format!(
                        "unexpected end of file scanning for record {i}"
                    )));
                }
                if self.line.trim().is_empty() {
                    continue;
                }
                if remaining == 0 {
                    break;
                }
                remaining -= 1;
            }
            let fields = crate::csv::parse_line(self.line.trim_end_matches(['\n', '\r']));
            if fields.len() != n {
                return Err(DataError::Parse(format!(
                    "record {} has {} fields, header has {n}",
                    i,
                    fields.len()
                )));
            }
            for (o, field) in slot.iter_mut().zip(&fields) {
                *o = field.trim().parse::<f64>().map_err(|_| {
                    DataError::Parse(format!("non-numeric value '{field}' in record {i}"))
                })?;
            }
        }
        Ok(())
    }
}

/// Sequential chunk iterator over a numeric CSV: yields up to `chunk_rows`
/// records at a time as a dense [`Matrix`], so one-pass preprocessing
/// (column means/stds for scalers, min/max scans, row counting) runs in
/// `O(chunk_rows · N)` memory on files of any length.
pub struct ChunkedCsvReader<R: BufRead> {
    reader: R,
    names: Vec<String>,
    chunk_rows: usize,
    lineno: usize,
    done: bool,
}

impl ChunkedCsvReader<BufReader<File>> {
    /// Opens a numeric CSV file with a header row for chunked reading.
    pub fn open<P: AsRef<Path>>(path: P, chunk_rows: usize) -> Result<Self, DataError> {
        let file = File::open(path.as_ref()).map_err(|e| {
            DataError::Parse(format!("cannot open {}: {e}", path.as_ref().display()))
        })?;
        ChunkedCsvReader::from_reader(BufReader::new(file), chunk_rows)
    }
}

impl<R: BufRead> ChunkedCsvReader<R> {
    /// Wraps any buffered reader positioned at the start of a numeric CSV
    /// with a header row. `chunk_rows` is the maximum rows per yielded chunk
    /// (at least 1).
    pub fn from_reader(mut reader: R, chunk_rows: usize) -> Result<Self, DataError> {
        let mut line = String::new();
        let len = reader
            .read_line(&mut line)
            .map_err(|e| DataError::Parse(e.to_string()))?;
        if len == 0 {
            return Err(DataError::Parse("empty CSV input".into()));
        }
        let names: Vec<String> = crate::csv::parse_line(line.trim_end_matches(['\n', '\r']))
            .into_iter()
            .map(|s| s.trim().to_string())
            .collect();
        Ok(ChunkedCsvReader {
            reader,
            names,
            chunk_rows: chunk_rows.max(1),
            lineno: 1,
            done: false,
        })
    }

    /// Column names from the header row.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }
}

impl<R: BufRead> Iterator for ChunkedCsvReader<R> {
    type Item = Result<Matrix, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let n = self.names.len();
        let mut data = Vec::with_capacity(self.chunk_rows * n);
        let mut rows = 0usize;
        let mut line = String::new();
        while rows < self.chunk_rows {
            line.clear();
            let len = match self.reader.read_line(&mut line) {
                Ok(len) => len,
                Err(e) => {
                    self.done = true;
                    return Some(Err(DataError::Parse(e.to_string())));
                }
            };
            if len == 0 {
                self.done = true;
                break;
            }
            self.lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            let fields = crate::csv::parse_line(line.trim_end_matches(['\n', '\r']));
            if fields.len() != n {
                self.done = true;
                return Some(Err(DataError::Parse(format!(
                    "line {} has {} fields, header has {n}",
                    self.lineno,
                    fields.len()
                ))));
            }
            for field in &fields {
                match field.trim().parse::<f64>() {
                    Ok(v) => data.push(v),
                    Err(_) => {
                        self.done = true;
                        return Some(Err(DataError::Parse(format!(
                            "non-numeric value '{field}' on line {}",
                            self.lineno
                        ))));
                    }
                }
            }
            rows += 1;
        }
        if rows == 0 {
            return None;
        }
        Some(Matrix::from_vec(rows, n, data).map_err(|e| DataError::Shape(e.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "a,b,c\n1,2,3\n4,5,6\n\n7,8,9\n10,11,12\n";

    fn sample_source() -> CsvRecordSource<Cursor<&'static [u8]>> {
        CsvRecordSource::from_reader(Cursor::new(SAMPLE.as_bytes())).unwrap()
    }

    #[test]
    fn matrix_source_reads_rows_in_order() {
        let mut x =
            Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mut out = vec![0.0; 4];
        x.read_rows(&[2, 0], &mut out).unwrap();
        assert_eq!(out, vec![5.0, 6.0, 1.0, 2.0]);
        assert_eq!(RecordSource::n_records(&x), 3);
        assert_eq!(RecordSource::n_features(&x), 2);
    }

    #[test]
    fn matrix_source_rejects_bad_shapes() {
        let mut x = Matrix::zeros(2, 2);
        let mut short = vec![0.0; 3];
        assert!(x.read_rows(&[0, 1], &mut short).is_err());
        let mut out = vec![0.0; 2];
        assert!(x.read_rows(&[5], &mut out).is_err());
    }

    #[test]
    fn csv_source_indexes_and_reads_random_rows() {
        let mut src = sample_source();
        assert_eq!(src.n_records(), 4);
        assert_eq!(src.n_features(), 3);
        assert_eq!(src.feature_names(), &["a", "b", "c"]);
        let mut out = vec![0.0; 6];
        // Out-of-order access exercises the seeks; the blank line is skipped.
        src.read_rows(&[3, 1], &mut out).unwrap();
        assert_eq!(out, vec![10.0, 11.0, 12.0, 4.0, 5.0, 6.0]);
        // Re-reading the same rows must be stable.
        let mut again = vec![0.0; 6];
        src.read_rows(&[3, 1], &mut again).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn csv_source_matches_materialized_matrix() {
        let mut src = sample_source();
        let x = src.to_matrix().unwrap();
        assert_eq!(x.shape(), (4, 3));
        assert_eq!(x.row(2), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn csv_source_errors_are_typed() {
        assert!(CsvRecordSource::from_reader(Cursor::new(b"" as &[u8])).is_err());
        let mut src =
            CsvRecordSource::from_reader(Cursor::new(b"a,b\n1,notanumber\n" as &[u8])).unwrap();
        let mut out = vec![0.0; 2];
        assert!(src.read_rows(&[0], &mut out).is_err());
        let mut ragged = CsvRecordSource::from_reader(Cursor::new(b"a,b\n1\n" as &[u8])).unwrap();
        assert!(ragged.read_rows(&[0], &mut out).is_err());
    }

    /// A CSV spanning several index strides, with blank lines sprinkled in,
    /// so anchor seeks and forward scans both get exercised.
    fn striped_csv(rows: usize) -> String {
        let mut s = String::from("a,b\n");
        for i in 0..rows {
            s.push_str(&format!("{},{}\n", i, 1000 - i as i64));
            if i % 37 == 5 {
                s.push('\n');
            }
        }
        s
    }

    #[test]
    fn stride_index_matches_dense_offset_reads() {
        let rows = 3 * OFFSET_STRIDE + 17;
        let csv = striped_csv(rows);

        // The dense-offset reference: byte offset of every data line,
        // exactly what the pre-stride index stored.
        let mut dense = Vec::new();
        let mut pos = 0u64;
        for line in csv.split_inclusive('\n') {
            if pos > 0 && !line.trim().is_empty() {
                dense.push(pos);
            }
            pos += line.len() as u64;
        }
        assert_eq!(dense.len(), rows);

        let mut src = CsvRecordSource::from_reader(Cursor::new(csv.as_bytes())).unwrap();
        assert_eq!(src.n_records(), rows);
        assert!(
            src.offsets.len() <= rows / OFFSET_STRIDE + 1,
            "index must be strided, not dense"
        );
        // Every stride anchor agrees with the dense index.
        for (k, &off) in src.offsets.iter().enumerate() {
            assert_eq!(off, dense[k * OFFSET_STRIDE], "anchor {k}");
        }
        // Records read through the strided index are identical to seeking
        // the dense offset directly.
        let probe: Vec<usize> = vec![0, 1, 62, 63, 64, 65, rows - 1, 100, 7, 200];
        let mut out = vec![0.0; probe.len() * 2];
        src.read_rows(&probe, &mut out).unwrap();
        for (slot, &i) in out.chunks_exact(2).zip(&probe) {
            let mut cursor = Cursor::new(csv.as_bytes());
            cursor.seek(SeekFrom::Start(dense[i])).unwrap();
            let mut line = String::new();
            cursor.read_line(&mut line).unwrap();
            let fields = crate::csv::parse_line(line.trim_end_matches(['\n', '\r']));
            let expect: Vec<f64> = fields.iter().map(|f| f.trim().parse().unwrap()).collect();
            assert_eq!(slot, expect.as_slice(), "record {i}");
        }
    }

    #[test]
    fn chunked_reader_tiles_the_file() {
        let reader = ChunkedCsvReader::from_reader(Cursor::new(SAMPLE.as_bytes()), 3).unwrap();
        assert_eq!(reader.feature_names(), &["a", "b", "c"]);
        let chunks: Vec<Matrix> = reader.map(|c| c.unwrap()).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].shape(), (3, 3));
        assert_eq!(chunks[1].shape(), (1, 3));
        assert_eq!(chunks[1].row(0), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn chunked_reader_chunks_agree_with_random_access() {
        let mut flat = Vec::new();
        for chunk in ChunkedCsvReader::from_reader(Cursor::new(SAMPLE.as_bytes()), 2).unwrap() {
            flat.extend_from_slice(chunk.unwrap().as_slice());
        }
        let full = sample_source().to_matrix().unwrap();
        assert_eq!(flat, full.as_slice());
    }

    #[test]
    fn chunked_reader_surfaces_parse_errors() {
        let mut reader =
            ChunkedCsvReader::from_reader(Cursor::new(b"a,b\n1,2\n3,oops\n" as &[u8]), 1).unwrap();
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "iterator fuses after an error");
    }
}
