//! Property-style tests of the data pipeline over seeded random matrices
//! (the offline toolchain has no proptest): scaler round-trips, split
//! partitions, fold coverage.

use ifair_data::{kfold, train_test_split, train_val_test_split, MinMaxScaler, StandardScaler};
use ifair_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng) -> Matrix {
    let m = rng.gen_range(2..20usize);
    let n = rng.gen_range(1..8usize);
    let rows: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect())
        .collect();
    Matrix::from_rows(rows).unwrap()
}

const CASES: usize = 48;

#[test]
fn standard_scaler_roundtrip() {
    let mut rng = StdRng::seed_from_u64(401);
    for _ in 0..CASES {
        let x = random_matrix(&mut rng);
        let (scaler, scaled) = StandardScaler::fit_transform(&x);
        let back = scaler.inverse_transform(&scaled);
        assert!(x.sub(&back).unwrap().max_abs() < 1e-8);
    }
}

#[test]
fn standard_scaler_standardizes() {
    let mut rng = StdRng::seed_from_u64(402);
    for _ in 0..CASES {
        let x = random_matrix(&mut rng);
        let (_, scaled) = StandardScaler::fit_transform(&x);
        for (j, (mean, std)) in scaled
            .col_means()
            .into_iter()
            .zip(scaled.col_stds())
            .enumerate()
        {
            // Constant columns stay constant (std 0); others standardize.
            let orig_std = x.col_stds()[j];
            if orig_std > 1e-9 {
                assert!(mean.abs() < 1e-8, "col {j} mean {mean}");
                assert!((std - 1.0).abs() < 1e-6, "col {j} std {std}");
            }
        }
    }
}

#[test]
fn minmax_scaler_range_and_roundtrip() {
    let mut rng = StdRng::seed_from_u64(403);
    for _ in 0..CASES {
        let x = random_matrix(&mut rng);
        let (scaler, scaled) = MinMaxScaler::fit_transform(&x);
        for v in scaled.as_slice() {
            assert!(
                (-1e-12..=1.0 + 1e-12).contains(v),
                "value {v} outside [0,1]"
            );
        }
        let back = scaler.inverse_transform(&scaled);
        assert!(x.sub(&back).unwrap().max_abs() < 1e-8);
    }
}

#[test]
fn three_way_split_partitions() {
    let mut rng = StdRng::seed_from_u64(404);
    for _ in 0..CASES {
        let n = rng.gen_range(3..500usize);
        let seed = rng.gen_range(0..100u64);
        let s = train_val_test_split(n, 1.0 / 3.0, 1.0 / 3.0, seed);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn split_deterministic() {
    let mut rng = StdRng::seed_from_u64(405);
    for _ in 0..CASES {
        let n = rng.gen_range(3..300usize);
        let seed = rng.gen_range(0..100u64);
        let a = train_test_split(n, 0.7, seed);
        let b = train_test_split(n, 0.7, seed);
        assert_eq!(a, b);
        // Different seeds almost always shuffle differently for n >= 8; only
        // assert the partition property (determinism per seed) here.
    }
}

#[test]
fn kfold_covers_every_index_once() {
    let mut rng = StdRng::seed_from_u64(406);
    for _ in 0..CASES {
        let n = rng.gen_range(10..200usize);
        let k = rng.gen_range(2..6usize);
        let seed = rng.gen_range(0..50u64);
        let folds = kfold(n, k, seed);
        assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; n];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), n);
            for &i in test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            let test_set: std::collections::HashSet<_> = test.iter().collect();
            assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index in exactly one test fold"
        );
    }
}
