//! Property-based tests of the data pipeline: scaler round-trips, split
//! partitions, encoder shape/width invariants.

use ifair_data::{
    kfold, train_test_split, train_val_test_split, MinMaxScaler, StandardScaler,
};
use ifair_linalg::Matrix;
use proptest::prelude::*;

fn matrices() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..20, 1usize..8).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, n), m)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn standard_scaler_roundtrip(rows in matrices()) {
        let x = Matrix::from_rows(rows).unwrap();
        let (scaler, scaled) = StandardScaler::fit_transform(&x);
        let back = scaler.inverse_transform(&scaled);
        prop_assert!(x.sub(&back).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn standard_scaler_standardizes(rows in matrices()) {
        let x = Matrix::from_rows(rows).unwrap();
        let (_, scaled) = StandardScaler::fit_transform(&x);
        for (j, (mean, std)) in scaled
            .col_means()
            .into_iter()
            .zip(scaled.col_stds())
            .enumerate()
        {
            // Constant columns stay constant (std 0); others standardize.
            let orig_std = x.col_stds()[j];
            if orig_std > 1e-9 {
                prop_assert!(mean.abs() < 1e-8, "col {j} mean {mean}");
                prop_assert!((std - 1.0).abs() < 1e-6, "col {j} std {std}");
            }
        }
    }

    #[test]
    fn minmax_scaler_range_and_roundtrip(rows in matrices()) {
        let x = Matrix::from_rows(rows).unwrap();
        let (scaler, scaled) = MinMaxScaler::fit_transform(&x);
        for v in scaled.as_slice() {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(v), "value {v} outside [0,1]");
        }
        let back = scaler.inverse_transform(&scaled);
        prop_assert!(x.sub(&back).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn three_way_split_partitions(n in 3usize..500, seed in 0u64..100) {
        let s = train_val_test_split(n, 1.0 / 3.0, 1.0 / 3.0, seed);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic(n in 3usize..300, seed in 0u64..100) {
        let a = train_test_split(n, 0.7, seed);
        let b = train_test_split(n, 0.7, seed);
        prop_assert_eq!(a, b);
        // Different seeds almost always shuffle differently for n >= 8; only
        // assert the partition property (determinism per seed) here.
    }

    #[test]
    fn kfold_covers_every_index_once(n in 10usize..200, k in 2usize..6, seed in 0u64..50) {
        let folds = kfold(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0usize; n];
        for (train, test) in &folds {
            prop_assert_eq!(train.len() + test.len(), n);
            for &i in test {
                seen[i] += 1;
            }
            // Train and test are disjoint.
            let test_set: std::collections::HashSet<_> = test.iter().collect();
            prop_assert!(train.iter().all(|i| !test_set.contains(i)));
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each index in exactly one test fold");
    }
}
