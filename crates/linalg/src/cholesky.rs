//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! The ridge-regression normal equations `(X^T X + r I) w = X^T y` solved by
//! the learning-to-rank model (§V-B of the paper) are SPD, so Cholesky is the
//! right tool: twice as fast as QR and unconditionally stable for these
//! systems.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::Singular`] when a non-positive pivot is encountered
    /// (i.e. `a` is not positive definite to working precision).
    pub fn decompose(a: &Matrix) -> Result<Cholesky, LinalgError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::InvalidDimensions(format!(
                "Cholesky requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::Singular("cholesky"));
                    }
                    l.set(i, j, s.sqrt());
                } else {
                    l.set(i, j, s / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization (`A = L L^T`).
    #[allow(clippy::needless_range_loop)] // triangular sub-range indexing
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for j in 0..i {
                s -= self.l.get(i, j) * y[j];
            }
            y[i] = s / self.l.get(i, i);
        }
        // Backward substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in i + 1..n {
                s -= self.l.get(j, i) * x[j];
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A` (= `2 * sum(log L_ii)`), useful for likelihoods.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizes_known_spd_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(vec![vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.l().get(0, 0) - 2.0).abs() < 1e-12);
        assert!((ch.l().get(1, 0) - 1.0).abs() < 1e-12);
        assert!((ch.l().get(1, 1) - 2.0_f64.sqrt()).abs() < 1e-12);
        // Reconstruction.
        let rec = ch.l().matmul(&ch.l().transpose());
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(vec![
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ])
        .unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(vec![vec![0.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::Singular(_))
        ));
        let neg = Matrix::from_rows(vec![vec![-1.0]]).unwrap();
        assert!(Cholesky::decompose(&neg).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::decompose(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = Matrix::identity(2);
        let ch = Cholesky::decompose(&a).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let a = Matrix::from_rows(vec![vec![4.0, 0.0], vec![0.0, 9.0]]).unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }
}
