//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left / primary operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right / secondary operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix that must be non-empty was empty, or rows were ragged.
    InvalidDimensions(String),
    /// The matrix is singular (or not positive definite) to working precision.
    Singular(&'static str),
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::InvalidDimensions(msg) => write!(f, "invalid dimensions: {msg}"),
            LinalgError::Singular(what) => write!(f, "matrix is singular in {what}"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: lhs is 2x3, rhs is 4x5"
        );
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular("cholesky");
        assert!(e.to_string().contains("cholesky"));
    }

    #[test]
    fn display_no_convergence() {
        let e = LinalgError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("jacobi-svd"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&LinalgError::InvalidDimensions("x".into()));
    }
}
