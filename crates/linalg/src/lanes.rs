//! Canonical lane-chunked reduction kernels and the runtime backend switch.
//!
//! # The lane-chunked reduction contract
//!
//! Floating-point addition is not associative, so *the accumulation order is
//! the number*. To let the autovectorizer (and the explicit `simd` backend)
//! vectorize reductions without changing results, the workspace defines its
//! canonical reduction semantics as **lane-chunked with [`LANES`] = 4
//! accumulators**:
//!
//! 1. walk the input in blocks of 4; block `j` adds `term(4j + l)` into
//!    accumulator `l` (a pure vertical add — exactly what one 4-wide vector
//!    add does),
//! 2. fold the accumulators as `(acc0 + acc1) + (acc2 + acc3)`,
//! 3. add the `len % 4` tail terms sequentially, in index order.
//!
//! Every backend — the plain-Rust [`scalar`] kernels here and the
//! `core::arch` intrinsics in the `simd` module (feature-gated) — computes
//! this exact sequence of rounded operations, so switching backends never
//! changes a single bit. That is what lets the backend be selected at
//! **runtime** ([`Backend::active`], overridable via the
//! `IFAIR_KERNEL_BACKEND` environment variable) without violating the
//! workspace determinism contract. The conformance battery in
//! `crates/core/tests/kernel_conformance.rs` pins all of this down.
//!
//! Only *reductions* need this care; element-wise loops (axpy-style updates)
//! have no cross-lane dependency and vectorize freely with unchanged
//! results.

use crate::real::Real;

/// Number of independent accumulator lanes in the canonical reduction.
///
/// Four lanes fit one AVX2 `f64` register (or two SSE2 registers, or one
/// SSE `f32` register at half width) and give the autovectorizer an
/// unrolled, dependency-free inner loop on plain scalar code.
pub const LANES: usize = 4;

/// Which kernel implementation executes the lane-chunked reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain Rust lane-structured loops (autovectorized; always available).
    Scalar,
    /// Explicit `core::arch` intrinsics (the `simd` feature, x86_64 only).
    Simd,
}

impl Backend {
    /// The backend name used in logs and bench records.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => "simd",
        }
    }

    /// The backend the dispatched kernels currently run on.
    ///
    /// Without the `simd` feature (or off x86_64) this is always
    /// [`Backend::Scalar`]. With it, the default is [`Backend::Simd`], and
    /// `IFAIR_KERNEL_BACKEND=scalar|simd` overrides the choice. The value is
    /// read once per process and cached; because every backend computes the
    /// identical lane-chunked reduction, the choice affects speed only.
    pub fn active() -> Backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            use std::sync::OnceLock;
            static ACTIVE: OnceLock<Backend> = OnceLock::new();
            *ACTIVE.get_or_init(|| match std::env::var("IFAIR_KERNEL_BACKEND") {
                Ok(v) if v.eq_ignore_ascii_case("scalar") => Backend::Scalar,
                _ => Backend::Simd,
            })
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            Backend::Scalar
        }
    }

    /// Whether the intrinsics backend was compiled in at all.
    pub fn simd_compiled() -> bool {
        cfg!(all(feature = "simd", target_arch = "x86_64"))
    }
}

/// The always-available plain-Rust implementation of the canonical
/// lane-chunked reductions. The dispatched entry points are the `lanes_*`
/// methods on [`Real`]; these are public so conformance tests (and the
/// intrinsics backend's own tests) can compare against the reference
/// directly, bypassing runtime dispatch.
pub mod scalar {
    use super::{Real, LANES};

    /// Lane-chunked dot product `Σ_n a_n · b_n`.
    ///
    /// All four kernels walk their inputs through `chunks_exact(LANES)`:
    /// the compiler sees fixed-size blocks (no per-element bounds checks)
    /// and vectorizes the vertical adds, while the accumulation order stays
    /// exactly the canonical one.
    #[inline]
    pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
        debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
        let n = a.len().min(b.len());
        let split = (n / LANES) * LANES;
        let mut acc = [T::ZERO; LANES];
        for (ca, cb) in a[..split]
            .chunks_exact(LANES)
            .zip(b[..split].chunks_exact(LANES))
        {
            for l in 0..LANES {
                acc[l] += ca[l] * cb[l];
            }
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
            sum += x * y;
        }
        sum
    }

    /// Lane-chunked squared Euclidean distance `Σ_n (a_n − b_n)²`.
    #[inline]
    pub fn sq_euclidean<T: Real>(a: &[T], b: &[T]) -> T {
        debug_assert_eq!(a.len(), b.len(), "sq_euclidean: length mismatch");
        let n = a.len().min(b.len());
        let split = (n / LANES) * LANES;
        let mut acc = [T::ZERO; LANES];
        for (ca, cb) in a[..split]
            .chunks_exact(LANES)
            .zip(b[..split].chunks_exact(LANES))
        {
            for l in 0..LANES {
                let d = ca[l] - cb[l];
                acc[l] += d * d;
            }
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
            let d = x - y;
            sum += d * d;
        }
        sum
    }

    /// Lane-chunked weighted squared distance
    /// `Σ_n max(w_n, 0) · (a_n − b_n)²` — the `p = 2` Minkowski power sum
    /// with the weight clamp the iFair objective requires. `max` compiles to
    /// a branch-free vector max.
    #[inline]
    pub fn weighted_sq_sum<T: Real>(a: &[T], b: &[T], w: &[T]) -> T {
        debug_assert_eq!(a.len(), b.len(), "weighted_sq_sum: length mismatch");
        debug_assert_eq!(a.len(), w.len(), "weighted_sq_sum: weight mismatch");
        let n = a.len().min(b.len()).min(w.len());
        let split = (n / LANES) * LANES;
        let mut acc = [T::ZERO; LANES];
        for ((ca, cb), cw) in a[..split]
            .chunks_exact(LANES)
            .zip(b[..split].chunks_exact(LANES))
            .zip(w[..split].chunks_exact(LANES))
        {
            for l in 0..LANES {
                let d = ca[l] - cb[l];
                acc[l] += cw[l].max(T::ZERO) * (d * d);
            }
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for ((&x, &y), &wi) in a[split..n].iter().zip(&b[split..n]).zip(&w[split..n]) {
            let d = x - y;
            sum += wi.max(T::ZERO) * (d * d);
        }
        sum
    }

    /// Lane-structured general-`p` Minkowski power sum
    /// `Σ_n max(w_n, 0) · |a_n − b_n|^p`.
    ///
    /// `powf` has no vector form, so this stays scalar-per-element on every
    /// backend — but it follows the same lane-chunked accumulation order, so
    /// the `p = 2` fast path above and this general path agree on the fold
    /// semantics (not on the values: `d*d` vs `|d|^2.0` round differently,
    /// which is why callers pick one path *by configuration*, never by
    /// backend).
    #[inline]
    pub fn weighted_power_sum<T: Real>(a: &[T], b: &[T], w: &[T], p: T) -> T {
        debug_assert_eq!(a.len(), b.len(), "weighted_power_sum: length mismatch");
        debug_assert_eq!(a.len(), w.len(), "weighted_power_sum: weight mismatch");
        let n = a.len().min(b.len()).min(w.len());
        let split = (n / LANES) * LANES;
        let mut acc = [T::ZERO; LANES];
        for ((ca, cb), cw) in a[..split]
            .chunks_exact(LANES)
            .zip(b[..split].chunks_exact(LANES))
            .zip(w[..split].chunks_exact(LANES))
        {
            for l in 0..LANES {
                let d = (ca[l] - cb[l]).abs();
                acc[l] += cw[l].max(T::ZERO) * d.powf(p);
            }
        }
        let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for ((&x, &y), &wi) in a[split..n].iter().zip(&b[split..n]).zip(&w[split..n]) {
            let d = (x - y).abs();
            sum += wi.max(T::ZERO) * d.powf(p);
        }
        sum
    }
}

/// Dispatched lane-chunked dot product (runtime backend selection).
#[inline]
pub fn dot<T: Real>(a: &[T], b: &[T]) -> T {
    T::lanes_dot(a, b)
}

/// Dispatched lane-chunked squared Euclidean distance.
#[inline]
pub fn sq_euclidean<T: Real>(a: &[T], b: &[T]) -> T {
    T::lanes_sq_euclidean(a, b)
}

/// Dispatched lane-chunked Euclidean distance.
#[inline]
pub fn euclidean<T: Real>(a: &[T], b: &[T]) -> T {
    T::lanes_sq_euclidean(a, b).sqrt()
}

/// Dispatched weighted Minkowski power sum `Σ max(w,0)·|a−b|^p`, with the
/// vectorized `p = 2` fast path.
#[inline]
pub fn weighted_power_sum<T: Real>(a: &[T], b: &[T], w: &[T], p: T) -> T {
    if p == T::from_f64(2.0) {
        T::lanes_weighted_sq_sum(a, b, w)
    } else {
        scalar::weighted_power_sum(a, b, w, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // Deterministic, irregular values; weights include negatives so the
        // clamp path is exercised.
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
        let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() - 0.2).collect();
        (a, b, w)
    }

    /// Edge sizes around the lane width: empty, sub-lane, exact blocks,
    /// blocks + tail.
    const SIZES: [usize; 10] = [0, 1, 2, 3, 4, 5, 7, 8, 63, 65];

    #[test]
    fn lane_kernels_match_naive_within_tolerance() {
        for n in SIZES {
            let (a, b, w) = inputs(n);
            let naive_dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let naive_sq: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_w: f64 = a
                .iter()
                .zip(&b)
                .zip(&w)
                .map(|((x, y), wi)| wi.max(0.0) * (x - y) * (x - y))
                .sum();
            assert!((scalar::dot(&a, &b) - naive_dot).abs() < 1e-12, "n={n}");
            assert!((scalar::sq_euclidean(&a, &b) - naive_sq).abs() < 1e-12);
            assert!((scalar::weighted_sq_sum(&a, &b, &w) - naive_w).abs() < 1e-12);
            assert!((scalar::weighted_power_sum(&a, &b, &w, 2.0) - naive_w).abs() < 1e-12);
        }
    }

    #[test]
    fn dispatch_is_bit_identical_to_the_scalar_reference() {
        // Whatever backend is active, dispatched results must equal the
        // plain-Rust lane kernels bit for bit.
        for n in SIZES {
            let (a, b, w) = inputs(n);
            assert_eq!(dot(&a, &b).to_bits(), scalar::dot(&a, &b).to_bits());
            assert_eq!(
                sq_euclidean(&a, &b).to_bits(),
                scalar::sq_euclidean(&a, &b).to_bits()
            );
            assert_eq!(
                weighted_power_sum(&a, &b, &w, 2.0).to_bits(),
                scalar::weighted_sq_sum(&a, &b, &w).to_bits()
            );
            assert_eq!(
                weighted_power_sum(&a, &b, &w, 3.0).to_bits(),
                scalar::weighted_power_sum(&a, &b, &w, 3.0).to_bits()
            );
            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            assert_eq!(dot(&a32, &b32).to_bits(), scalar::dot(&a32, &b32).to_bits());
        }
    }

    #[test]
    fn backend_reporting_is_consistent() {
        let active = Backend::active();
        assert!(matches!(active, Backend::Scalar | Backend::Simd));
        if !Backend::simd_compiled() {
            assert_eq!(active, Backend::Scalar);
        }
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Simd.label(), "simd");
    }

    #[test]
    fn euclidean_is_sqrt_of_sq() {
        let (a, b, _) = inputs(9);
        assert_eq!(
            euclidean(&a, &b).to_bits(),
            sq_euclidean(&a, &b).sqrt().to_bits()
        );
    }
}
