//! Dense linear-algebra substrate for the iFair reproduction.
//!
//! The iFair paper (Lahoti et al., ICDE 2019) and its evaluation pipeline need
//! a small but complete set of dense linear-algebra primitives:
//!
//! * a row-major [`Matrix`] of `f64` with the usual arithmetic,
//! * vector kernels ([`vector`]) used in hot loops (dot products, norms, axpy),
//! * the scalar-precision layer ([`real`]: the [`Real`] trait over
//!   `f32`/`f64` and the [`Precision`] tag) and the canonical lane-chunked
//!   reduction kernels ([`lanes`]) behind the iFair hot loops, with an
//!   opt-in `core::arch` intrinsics backend (`simd` feature, x86_64),
//! * Householder [`qr`] factorization (least squares, orthogonality tests),
//! * a one-sided Jacobi [`svd`] (the SVD / SVD-masked baselines of §V-B),
//! * [`cholesky`] factorization (ridge regression normal equations),
//! * higher-level [`solve`] helpers (general solve, least squares, ridge).
//!
//! Everything is implemented from scratch on `std` only; `serde` is derived on
//! the value types so learned models can be persisted.
//!
//! # Example
//!
//! ```
//! use ifair_linalg::Matrix;
//!
//! let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! ```

// `deny` rather than `forbid`: the optional `simd` backend carries the
// crate's only `unsafe` (intrinsic loads/stores), scoped behind an explicit
// module-level `allow` with its proof obligations documented there.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod error;
pub mod lanes;
pub mod matrix;
pub mod qr;
pub mod real;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
pub mod solve;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use lanes::Backend;
pub use matrix::Matrix;
pub use qr::Qr;
pub use real::{Precision, Real};
pub use svd::Svd;
