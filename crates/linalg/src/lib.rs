//! Dense linear-algebra substrate for the iFair reproduction.
//!
//! The iFair paper (Lahoti et al., ICDE 2019) and its evaluation pipeline need
//! a small but complete set of dense linear-algebra primitives:
//!
//! * a row-major [`Matrix`] of `f64` with the usual arithmetic,
//! * vector kernels ([`vector`]) used in hot loops (dot products, norms, axpy),
//! * Householder [`qr`] factorization (least squares, orthogonality tests),
//! * a one-sided Jacobi [`svd`] (the SVD / SVD-masked baselines of §V-B),
//! * [`cholesky`] factorization (ridge regression normal equations),
//! * higher-level [`solve`] helpers (general solve, least squares, ridge).
//!
//! Everything is implemented from scratch on `std` only; `serde` is derived on
//! the value types so learned models can be persisted.
//!
//! # Example
//!
//! ```
//! use ifair_linalg::Matrix;
//!
//! let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cholesky;
pub mod error;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use qr::Qr;
pub use svd::Svd;
