//! Row-major dense matrix of `f64`.

use crate::error::LinalgError;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse container of the workspace: datasets, learned
/// representations, prototype matrices and model weights are all stored as
/// `Matrix`. Rows index records, columns index attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimensions(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from nested row vectors.
    ///
    /// Returns an error if the rows are ragged or the input is empty.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::InvalidDimensions(
                "cannot build a matrix from zero rows".into(),
            ));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(LinalgError::InvalidDimensions(
                "cannot build a matrix with zero columns".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidDimensions(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(i, j)`; panics when out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets the element at `(i, j)`; panics when out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a freshly allocated vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Panics on shape mismatch; use [`Matrix::try_matmul`] for a fallible
    /// variant. The k-loop is innermost-contiguous (ikj order) so the compiler
    /// can vectorize the row updates.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).expect("matmul shape mismatch")
    }

    /// Fallible matrix product.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| crate::vector::dot(row, x))
            .collect())
    }

    /// Vector-matrix product `x^T * self` (returns a vector of length `cols`).
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, x.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xi * a;
            }
        }
        Ok(out)
    }

    /// Element-wise sum with `other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| a * s).collect(),
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Frobenius norm `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &a| m.max(a.abs()))
    }

    /// Returns the sub-matrix made of the listed rows (copied).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Returns the sub-matrix made of the listed columns (copied).
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for &j in indices {
                data.push(row[j]);
            }
        }
        Matrix {
            rows: self.rows,
            cols: indices.len(),
            data,
        }
    }

    /// Horizontally concatenates `self | other`.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Matrix {
            rows: self.rows,
            cols,
            data,
        })
    }

    /// Vertically concatenates `self` on top of `other`.
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column population standard deviations.
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut vars = vec![0.0; self.cols];
        for row in self.row_iter() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f64;
        vars.iter().map(|v| (v / n).sqrt()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> Matrix {
        Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
        assert!(err.is_err());
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![]]).is_err());
    }

    #[test]
    fn get_set_row_col() {
        let mut m = m22();
        assert_eq!(m.get(1, 0), 3.0);
        m.set(1, 0, 9.0);
        assert_eq!(m.row(1), &[9.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = m22();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i), m);
        assert_eq!(i.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(vec![vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_error() {
        let a = m22();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(
            a.try_matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = m22();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = m22();
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap().get(0, 0), 3.0);
        assert_eq!(a.sub(&b).unwrap().get(1, 1), 2.0);
        assert_eq!(a.hadamard(&b).unwrap().get(1, 0), 6.0);
        assert_eq!(a.scale(0.5).get(0, 1), 1.0);
        assert_eq!(a.map(|x| x * x).get(1, 1), 16.0);
        assert!(a.add(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn frobenius_norm_known() {
        let m = Matrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn select_rows_cols() {
        let m = Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn stacking() {
        let a = m22();
        let h = a.hstack(&a).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 1.0, 2.0]);
        let v = a.vstack(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), &[3.0, 4.0]);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        let stds = m.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert!(stds[1].abs() < 1e-12);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let m = m22();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
