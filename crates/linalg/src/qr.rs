//! Householder QR factorization.
//!
//! Used for least-squares solves and as the orthogonality workhorse in tests.
//! For an `m x n` matrix with `m >= n` we produce the *thin* factorization
//! `A = Q R` with `Q` of shape `m x n` (orthonormal columns) and `R` upper
//! triangular `n x n`.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Thin QR factorization `A = Q R` computed with Householder reflections.
#[derive(Debug, Clone)]
pub struct Qr {
    /// `m x n` matrix with orthonormal columns.
    pub q: Matrix,
    /// `n x n` upper-triangular factor.
    pub r: Matrix,
}

impl Qr {
    /// Computes the thin QR factorization of `a` (`m >= n` required).
    pub fn decompose(a: &Matrix) -> Result<Qr, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidDimensions(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        // Work on a copy that becomes R in its upper triangle; accumulate the
        // Householder vectors to build Q afterwards.
        let mut r = a.clone();
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut v: Vec<f64> = (k..m).map(|i| r.get(i, k)).collect();
            let alpha = -v[0].signum() * crate::vector::norm2(&v);
            if alpha.abs() < f64::EPSILON {
                // Column already zero below the diagonal; skip reflection.
                vs.push(vec![0.0; v.len()]);
                continue;
            }
            v[0] -= alpha;
            let vnorm = crate::vector::norm2(&v);
            if vnorm > 0.0 {
                crate::vector::scale_in_place(&mut v, 1.0 / vnorm);
            }
            // Apply reflection H = I - 2 v v^T to the trailing block of R.
            for j in k..n {
                let mut proj = 0.0;
                for (t, &vt) in v.iter().enumerate() {
                    proj += vt * r.get(k + t, j);
                }
                proj *= 2.0;
                for (t, &vt) in v.iter().enumerate() {
                    let cur = r.get(k + t, j);
                    r.set(k + t, j, cur - proj * vt);
                }
            }
            vs.push(v);
        }
        // Zero the strictly-lower part of R (numerical dust) and trim to n x n.
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin.set(i, j, r.get(i, j));
            }
        }
        // Build thin Q by applying reflections in reverse to the first n
        // columns of the identity.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q.set(j, j, 1.0);
        }
        for k in (0..n).rev() {
            let v = &vs[k];
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            for j in 0..n {
                let mut proj = 0.0;
                for (t, &vt) in v.iter().enumerate() {
                    proj += vt * q.get(k + t, j);
                }
                proj *= 2.0;
                for (t, &vt) in v.iter().enumerate() {
                    let cur = q.get(k + t, j);
                    q.set(k + t, j, cur - proj * vt);
                }
            }
        }
        Ok(Qr { q, r: r_thin })
    }

    /// Solves the least-squares problem `min ||A x - b||` using this
    /// factorization (`A` is the matrix passed to [`Qr::decompose`]).
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        // x = R^{-1} Q^T b
        let qtb = self.q.vecmat(b)?;
        back_substitute(&self.r, &qtb)
    }
}

/// Solves `R x = b` for upper-triangular `R`.
#[allow(clippy::needless_range_loop)] // triangular sub-range indexing
pub fn back_substitute(r: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = r.rows();
    if r.cols() != n || b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "back substitution",
            lhs: r.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in i + 1..n {
            s -= r.get(i, j) * x[j];
        }
        let d = r.get(i, i);
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular("back substitution"));
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let rec = qr.q.matmul(&qr.r);
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(vec![
            vec![2.0, -1.0, 0.5],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![4.0, 0.0, -2.0],
        ])
        .unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q);
        let eye = Matrix::identity(3);
        assert!(qtq.sub(&eye).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(vec![vec![1.0, 5.0], vec![2.0, 1.0], vec![3.0, 2.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        assert_eq!(qr.r.get(1, 0), 0.0);
    }

    #[test]
    fn least_squares_exact_system() {
        // Square nonsingular system has the exact solution.
        let a = Matrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let x = qr.solve_least_squares(&[2.0, 8.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2x + 1 through noisy-free points: exact recovery.
        let a = Matrix::from_rows(vec![
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ])
        .unwrap();
        let y = [1.0, 3.0, 5.0, 7.0];
        let qr = Qr::decompose(&a).unwrap();
        let x = qr.solve_least_squares(&y).unwrap();
        assert_close(x[0], 2.0, 1e-10);
        assert_close(x[1], 1.0, 1e-10);
    }

    #[test]
    fn rejects_wide_matrices() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::decompose(&a).is_err());
    }

    #[test]
    fn back_substitute_detects_singular() {
        let r = Matrix::from_rows(vec![vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
        assert!(matches!(
            back_substitute(&r, &[1.0, 1.0]),
            Err(LinalgError::Singular(_))
        ));
    }

    #[test]
    fn handles_rank_deficient_column_gracefully() {
        // Second column is zero; decomposition should not panic.
        let a = Matrix::from_rows(vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let rec = qr.q.matmul(&qr.r);
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-10);
    }
}
