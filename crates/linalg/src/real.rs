//! The scalar-precision abstraction behind the generic math kernels.
//!
//! Training always runs in `f64` (the paper's precision); serving may opt
//! into `f32` for throughput. [`Real`] is the small trait the lane-chunked
//! kernels in [`crate::lanes`] are generic over, and [`Precision`] is the
//! runtime tag carried by artifacts and serving configuration.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A floating-point scalar the math kernels can be instantiated at.
///
/// Implemented exactly twice — [`f64`] (canonical, used for training) and
/// [`f32`] (opt-in serving precision). The trait carries only what the hot
/// loops need; everything defaults to the obvious `std` operation, so both
/// impls are thin.
pub trait Real:
    Copy
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (exact for `f64`, rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both impls).
    fn to_f64(self) -> f64;
    /// `self.sqrt()`.
    fn sqrt(self) -> Self;
    /// `self.exp()`.
    fn exp(self) -> Self;
    /// `self.abs()`.
    fn abs(self) -> Self;
    /// `self.powf(e)`.
    fn powf(self, e: Self) -> Self;
    /// IEEE max (branch-free on every target the kernels care about).
    fn max(self, other: Self) -> Self;
    /// IEEE min.
    fn min(self, other: Self) -> Self;
    /// `self.is_finite()`.
    fn is_finite(self) -> bool;

    /// Dispatched lane-chunked dot product (see [`crate::lanes`]).
    ///
    /// The default is the scalar lane kernel; the `f64`/`f32` impls override
    /// it under the `simd` feature to route through the runtime-selected
    /// backend. Every backend computes the *same* lane-chunked reduction, so
    /// the override never changes a single bit.
    fn lanes_dot(a: &[Self], b: &[Self]) -> Self {
        crate::lanes::scalar::dot(a, b)
    }

    /// Dispatched lane-chunked squared Euclidean distance.
    fn lanes_sq_euclidean(a: &[Self], b: &[Self]) -> Self {
        crate::lanes::scalar::sq_euclidean(a, b)
    }

    /// Dispatched lane-chunked weighted squared distance
    /// `Σ_n max(w_n, 0) · (a_n − b_n)²` — the `p = 2` Minkowski power sum.
    fn lanes_weighted_sq_sum(a: &[Self], b: &[Self], w: &[Self]) -> Self {
        crate::lanes::scalar::weighted_sq_sum(a, b, w)
    }
}

impl Real for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn powf(self, e: Self) -> Self {
        f64::powf(self, e)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_dot(a: &[Self], b: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::dot_f64(a, b),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::dot(a, b),
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_sq_euclidean(a: &[Self], b: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::sq_euclidean_f64(a, b),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::sq_euclidean(a, b),
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_weighted_sq_sum(a: &[Self], b: &[Self], w: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::weighted_sq_sum_f64(a, b, w),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::weighted_sq_sum(a, b, w),
        }
    }
}

impl Real for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn exp(self) -> Self {
        f32::exp(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn powf(self, e: Self) -> Self {
        f32::powf(self, e)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_dot(a: &[Self], b: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::dot_f32(a, b),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::dot(a, b),
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_sq_euclidean(a: &[Self], b: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::sq_euclidean_f32(a, b),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::sq_euclidean(a, b),
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline]
    fn lanes_weighted_sq_sum(a: &[Self], b: &[Self], w: &[Self]) -> Self {
        match crate::lanes::Backend::active() {
            crate::lanes::Backend::Simd => crate::simd::weighted_sq_sum_f32(a, b, w),
            crate::lanes::Backend::Scalar => crate::lanes::scalar::weighted_sq_sum(a, b, w),
        }
    }
}

/// Which scalar precision a model runs its forward pass in.
///
/// `F64` is the training precision and the default everywhere; `F32` is the
/// opt-in serving precision (artifacts stay `f64` on disk — the cast happens
/// at load/evaluation time). See the "Kernel backends and precision
/// contract" section of `docs/ARCHITECTURE.md` for the numerics contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Double precision — canonical, bit-exact across backends and threads.
    #[default]
    F64,
    /// Single precision — tolerance-bounded against `F64`, still bit-exact
    /// across thread counts for a fixed backend.
    F32,
}

impl Precision {
    /// The label used on the wire and in metrics (`"f64"` / `"f32"`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }

    /// Parses a label; accepts exactly `"f64"` and `"f32"`.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32" => Some(Precision::F32),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels_agree<T: Real>(tol: f64) {
        let a: Vec<T> = (0..13).map(|i| T::from_f64(0.1 * f64::from(i))).collect();
        let b: Vec<T> = (0..13)
            .map(|i| T::from_f64(0.07 * f64::from(i) - 0.3))
            .collect();
        let naive: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x.to_f64() * y.to_f64())
            .sum();
        assert!((T::lanes_dot(&a, &b).to_f64() - naive).abs() < tol);
    }

    #[test]
    fn both_precisions_implement_the_kernels() {
        kernels_agree::<f64>(1e-12);
        kernels_agree::<f32>(1e-4);
    }

    #[test]
    fn precision_labels_round_trip() {
        assert_eq!(Precision::F64.label(), "f64");
        assert_eq!(Precision::F32.label(), "f32");
        assert_eq!(Precision::parse("f64"), Some(Precision::F64));
        assert_eq!(Precision::parse("f32"), Some(Precision::F32));
        assert_eq!(Precision::parse("f16"), None);
        assert_eq!(Precision::default(), Precision::F64);
        assert_eq!(Precision::F32.to_string(), "f32");
    }

    #[test]
    fn real_scalar_ops_match_std() {
        assert_eq!(<f32 as Real>::from_f64(0.5), 0.5f32);
        assert_eq!(Real::max(1.0f64, 2.0), 2.0);
        assert_eq!(Real::min(1.0f32, 2.0), 1.0);
        assert!((Real::sqrt(2.0f64) - std::f64::consts::SQRT_2).abs() < 1e-15);
        assert!(Real::is_finite(1.0f32));
        assert!(!Real::is_finite(f64::INFINITY));
    }
}
