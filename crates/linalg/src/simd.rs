//! Explicit `core::arch` x86_64 implementations of the lane-chunked
//! reduction kernels (the opt-in `simd` feature).
//!
//! Every function here computes the **exact** canonical reduction defined in
//! [`crate::lanes`]: four accumulator lanes updated with pure vertical
//! multiply-then-add (deliberately *not* fused — FMA rounds once where
//! `mul + add` rounds twice, which would change bits vs the scalar backend),
//! folded as `(acc0 + acc1) + (acc2 + acc3)`, tail handled sequentially.
//! The conformance battery asserts bit-identity against
//! [`crate::lanes::scalar`] for every size and precision.
//!
//! SSE2 is the x86_64 baseline, so the SSE paths need no runtime detection;
//! AVX2 is used when the CPU reports it (`is_x86_feature_detected!`). Both
//! produce identical bits — per-lane operations and fold order are the same
//! — so the AVX2/SSE2 choice, like the backend choice, affects speed only.
//!
//! # Safety
//!
//! This module is the crate's only `unsafe` surface. The obligations are:
//!
//! * `_mm*_loadu_*` reads of `LANES` elements happen only at offsets
//!   `base` with `base + LANES <= n`, where `n` is the (debug-asserted
//!   equal) slice length — in-bounds by construction of the block loop;
//! * `#[target_feature(enable = "avx2")]` functions are only reached behind
//!   a cached `is_x86_feature_detected!("avx2")` check.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

/// Cached AVX2 availability (one detection per process).
#[inline]
fn has_avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// Folds four `f64` lane accumulators in the canonical order.
#[inline(always)]
fn fold4(acc: [f64; 4]) -> f64 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Extracts the four lanes of a 256-bit `f64` vector.
///
/// # Safety
/// Caller must be executing with AVX2 available.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn lanes_of_256(v: __m256d) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), v);
    out
}

/// Extracts the lanes of two 128-bit `f64` vectors as lanes 0–3.
#[inline]
unsafe fn lanes_of_2x128(lo: __m128d, hi: __m128d) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    // Safety: `out` has room for 2 + 2 lanes; SSE2 is baseline on x86_64.
    unsafe {
        _mm_storeu_pd(out.as_mut_ptr(), lo);
        _mm_storeu_pd(out.as_mut_ptr().add(2), hi);
    }
    out
}

macro_rules! f64_kernel {
    ($name:ident, $sse:ident, $avx:ident, ($($arg:ident),+)) => {
        /// Dispatched f64 kernel: AVX2 when detected, SSE2 otherwise.
        /// Bit-identical to the scalar lane kernel either way.
        #[inline]
        pub fn $name($($arg: &[f64]),+) -> f64 {
            if has_avx2() {
                // Safety: AVX2 presence just checked.
                unsafe { $avx($($arg),+) }
            } else {
                // Safety: SSE2 is the x86_64 baseline.
                unsafe { $sse($($arg),+) }
            }
        }
    };
}

// ---------------------------------------------------------------- dot (f64)

f64_kernel!(dot_f64, dot_f64_sse2, dot_f64_avx2, (a, b));

/// # Safety
/// SSE2 only (x86_64 baseline); see the module-level safety notes.
unsafe fn dot_f64_sse2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    let mut acc_lo = _mm_setzero_pd();
    let mut acc_hi = _mm_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n, so both 2-lane loads are in bounds.
        let va_lo = _mm_loadu_pd(a.as_ptr().add(base));
        let vb_lo = _mm_loadu_pd(b.as_ptr().add(base));
        let va_hi = _mm_loadu_pd(a.as_ptr().add(base + 2));
        let vb_hi = _mm_loadu_pd(b.as_ptr().add(base + 2));
        acc_lo = _mm_add_pd(acc_lo, _mm_mul_pd(va_lo, vb_lo));
        acc_hi = _mm_add_pd(acc_hi, _mm_mul_pd(va_hi, vb_hi));
    }
    let mut sum = fold4(lanes_of_2x128(acc_lo, acc_hi));
    for i in blocks * 4..n {
        sum += a[i] * b[i];
    }
    sum
}

/// # Safety
/// Caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn dot_f64_avx2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n.
        let va = _mm256_loadu_pd(a.as_ptr().add(base));
        let vb = _mm256_loadu_pd(b.as_ptr().add(base));
        // No FMA: mul-then-add matches the scalar backend's rounding.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    let mut sum = fold4(lanes_of_256(acc));
    for i in blocks * 4..n {
        sum += a[i] * b[i];
    }
    sum
}

// ------------------------------------------------------ sq_euclidean (f64)

f64_kernel!(
    sq_euclidean_f64,
    sq_euclidean_f64_sse2,
    sq_euclidean_f64_avx2,
    (a, b)
);

/// # Safety
/// SSE2 only (x86_64 baseline).
unsafe fn sq_euclidean_f64_sse2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    let mut acc_lo = _mm_setzero_pd();
    let mut acc_hi = _mm_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n.
        let d_lo = _mm_sub_pd(
            _mm_loadu_pd(a.as_ptr().add(base)),
            _mm_loadu_pd(b.as_ptr().add(base)),
        );
        let d_hi = _mm_sub_pd(
            _mm_loadu_pd(a.as_ptr().add(base + 2)),
            _mm_loadu_pd(b.as_ptr().add(base + 2)),
        );
        acc_lo = _mm_add_pd(acc_lo, _mm_mul_pd(d_lo, d_lo));
        acc_hi = _mm_add_pd(acc_hi, _mm_mul_pd(d_hi, d_hi));
    }
    let mut sum = fold4(lanes_of_2x128(acc_lo, acc_hi));
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// # Safety
/// Caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn sq_euclidean_f64_avx2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n.
        let d = _mm256_sub_pd(
            _mm256_loadu_pd(a.as_ptr().add(base)),
            _mm256_loadu_pd(b.as_ptr().add(base)),
        );
        acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    let mut sum = fold4(lanes_of_256(acc));
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

// --------------------------------------------------- weighted_sq_sum (f64)

f64_kernel!(
    weighted_sq_sum_f64,
    weighted_sq_sum_f64_sse2,
    weighted_sq_sum_f64_avx2,
    (a, b, w)
);

/// # Safety
/// SSE2 only (x86_64 baseline).
unsafe fn weighted_sq_sum_f64_sse2(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let n = a.len().min(b.len()).min(w.len());
    let blocks = n / 4;
    let zero = _mm_setzero_pd();
    let mut acc_lo = _mm_setzero_pd();
    let mut acc_hi = _mm_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n.
        let d_lo = _mm_sub_pd(
            _mm_loadu_pd(a.as_ptr().add(base)),
            _mm_loadu_pd(b.as_ptr().add(base)),
        );
        let d_hi = _mm_sub_pd(
            _mm_loadu_pd(a.as_ptr().add(base + 2)),
            _mm_loadu_pd(b.as_ptr().add(base + 2)),
        );
        // maxpd(w, 0) matches `f64::max(w, 0.0)`: NaN and -0.0 both map
        // to +0.0, exactly like the scalar backend.
        let w_lo = _mm_max_pd(_mm_loadu_pd(w.as_ptr().add(base)), zero);
        let w_hi = _mm_max_pd(_mm_loadu_pd(w.as_ptr().add(base + 2)), zero);
        acc_lo = _mm_add_pd(acc_lo, _mm_mul_pd(w_lo, _mm_mul_pd(d_lo, d_lo)));
        acc_hi = _mm_add_pd(acc_hi, _mm_mul_pd(w_hi, _mm_mul_pd(d_hi, d_hi)));
    }
    let mut sum = fold4(lanes_of_2x128(acc_lo, acc_hi));
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += w[i].max(0.0) * (d * d);
    }
    sum
}

/// # Safety
/// Caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn weighted_sq_sum_f64_avx2(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let n = a.len().min(b.len()).min(w.len());
    let blocks = n / 4;
    let zero = _mm256_setzero_pd();
    let mut acc = _mm256_setzero_pd();
    for j in 0..blocks {
        let base = j * 4;
        // Safety: base + 4 <= n.
        let d = _mm256_sub_pd(
            _mm256_loadu_pd(a.as_ptr().add(base)),
            _mm256_loadu_pd(b.as_ptr().add(base)),
        );
        let wv = _mm256_max_pd(_mm256_loadu_pd(w.as_ptr().add(base)), zero);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(wv, _mm256_mul_pd(d, d)));
    }
    let mut sum = fold4(lanes_of_256(acc));
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += w[i].max(0.0) * (d * d);
    }
    sum
}

// ------------------------------------------------------------- f32 kernels
//
// The canonical lane width stays 4 for f32 as well (one __m128), keeping
// the reduction semantics uniform across precisions.

/// Folds four `f32` lane accumulators in the canonical order.
#[inline(always)]
fn fold4_f32(acc: [f32; 4]) -> f32 {
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Extracts the four lanes of a 128-bit `f32` vector.
#[inline]
unsafe fn lanes_of_128f(v: __m128) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    // Safety: `out` has room for 4 lanes; SSE is baseline on x86_64.
    unsafe { _mm_storeu_ps(out.as_mut_ptr(), v) };
    out
}

/// f32 lane-chunked dot product (SSE; bit-identical to the scalar lanes).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    // Safety: SSE is the x86_64 baseline; loads stay in bounds (base+4<=n).
    let mut sum = unsafe {
        let mut acc = _mm_setzero_ps();
        for j in 0..blocks {
            let base = j * 4;
            let va = _mm_loadu_ps(a.as_ptr().add(base));
            let vb = _mm_loadu_ps(b.as_ptr().add(base));
            acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
        }
        fold4_f32(lanes_of_128f(acc))
    };
    for i in blocks * 4..n {
        sum += a[i] * b[i];
    }
    sum
}

/// f32 lane-chunked squared Euclidean distance.
#[inline]
pub fn sq_euclidean_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let blocks = n / 4;
    // Safety: SSE baseline; loads in bounds.
    let mut sum = unsafe {
        let mut acc = _mm_setzero_ps();
        for j in 0..blocks {
            let base = j * 4;
            let d = _mm_sub_ps(
                _mm_loadu_ps(a.as_ptr().add(base)),
                _mm_loadu_ps(b.as_ptr().add(base)),
            );
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
        }
        fold4_f32(lanes_of_128f(acc))
    };
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// f32 lane-chunked weighted squared distance `Σ max(w,0)·(a−b)²`.
#[inline]
pub fn weighted_sq_sum_f32(a: &[f32], b: &[f32], w: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let n = a.len().min(b.len()).min(w.len());
    let blocks = n / 4;
    // Safety: SSE baseline; loads in bounds.
    let mut sum = unsafe {
        let zero = _mm_setzero_ps();
        let mut acc = _mm_setzero_ps();
        for j in 0..blocks {
            let base = j * 4;
            let d = _mm_sub_ps(
                _mm_loadu_ps(a.as_ptr().add(base)),
                _mm_loadu_ps(b.as_ptr().add(base)),
            );
            let wv = _mm_max_ps(_mm_loadu_ps(w.as_ptr().add(base)), zero);
            acc = _mm_add_ps(acc, _mm_mul_ps(wv, _mm_mul_ps(d, d)));
        }
        fold4_f32(lanes_of_128f(acc))
    };
    for i in blocks * 4..n {
        let d = a[i] - b[i];
        sum += w[i].max(0.0) * (d * d);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes::scalar;

    #[test]
    fn intrinsics_match_scalar_lanes_bit_for_bit() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 65, 127] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.53).cos()).collect();
            let w: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() - 0.2).collect();
            assert_eq!(
                dot_f64(&a, &b).to_bits(),
                scalar::dot(&a, &b).to_bits(),
                "dot n={n}"
            );
            assert_eq!(
                sq_euclidean_f64(&a, &b).to_bits(),
                scalar::sq_euclidean(&a, &b).to_bits(),
                "sq n={n}"
            );
            assert_eq!(
                weighted_sq_sum_f64(&a, &b, &w).to_bits(),
                scalar::weighted_sq_sum(&a, &b, &w).to_bits(),
                "wsq n={n}"
            );

            let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let w32: Vec<f32> = w.iter().map(|&v| v as f32).collect();
            assert_eq!(
                dot_f32(&a32, &b32).to_bits(),
                scalar::dot(&a32, &b32).to_bits()
            );
            assert_eq!(
                sq_euclidean_f32(&a32, &b32).to_bits(),
                scalar::sq_euclidean(&a32, &b32).to_bits()
            );
            assert_eq!(
                weighted_sq_sum_f32(&a32, &b32, &w32).to_bits(),
                scalar::weighted_sq_sum(&a32, &b32, &w32).to_bits()
            );
        }
    }

    #[test]
    fn weight_clamp_edge_cases_match_scalar() {
        let a = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let b = [0.0f64; 5];
        let w = [f64::NAN, -0.0, -1.0, 0.5, f64::NAN];
        assert_eq!(
            weighted_sq_sum_f64(&a, &b, &w).to_bits(),
            scalar::weighted_sq_sum(&a, &b, &w).to_bits()
        );
    }
}
