//! High-level solvers built on the factorizations.

use crate::cholesky::Cholesky;
use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::qr::Qr;

/// Solves the square system `A x = b` via QR (works for any nonsingular `A`).
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::InvalidDimensions(format!(
            "solve requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    Qr::decompose(a)?.solve_least_squares(b)
}

/// Solves the least-squares problem `min ||A x - b||_2` via thin QR.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Qr::decompose(a)?.solve_least_squares(b)
}

/// Solves the ridge-regularized normal equations
/// `(A^T A + ridge * I) x = A^T b`.
///
/// With `ridge > 0` the system is always SPD, so Cholesky applies. This is the
/// estimator behind the paper's learning-to-rank linear-regression model.
pub fn ridge_solve(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "ridge solve",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    if ridge < 0.0 {
        return Err(LinalgError::InvalidDimensions(
            "ridge parameter must be non-negative".into(),
        ));
    }
    let at = a.transpose();
    let mut ata = at.matmul(a);
    for i in 0..ata.rows() {
        let d = ata.get(i, i);
        ata.set(i, i, d + ridge);
    }
    let atb = at.matvec(b)?;
    match Cholesky::decompose(&ata) {
        Ok(ch) => ch.solve(&atb),
        // Semi-definite Gram matrix with ridge = 0: fall back to QR on A.
        Err(LinalgError::Singular(_)) => least_squares(a, b),
        Err(e) => Err(e),
    }
}

/// Inverts a square nonsingular matrix via QR (column-by-column solve).
///
/// Only used in tests and small-model code paths; prefer `solve` for systems.
pub fn invert(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::InvalidDimensions(format!(
            "invert requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let qr = Qr::decompose(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let x = qr.solve_least_squares(&e)?;
        for (i, &xi) in x.iter().enumerate() {
            inv.set(i, j, xi);
        }
        e[j] = 0.0;
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_square_system() {
        let a = Matrix::from_rows(vec![vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let x = solve(&a, &[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_rejects_non_square() {
        assert!(solve(&Matrix::zeros(2, 3), &[0.0, 0.0]).is_err());
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        // One predictor, exact fit slope 2; heavy ridge shrinks the slope.
        let a = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let b = [2.0, 4.0, 6.0];
        let w0 = ridge_solve(&a, &b, 0.0).unwrap();
        let w_heavy = ridge_solve(&a, &b, 100.0).unwrap();
        assert!((w0[0] - 2.0).abs() < 1e-10);
        assert!(w_heavy[0] < w0[0]);
        assert!(w_heavy[0] > 0.0);
    }

    #[test]
    fn ridge_zero_falls_back_on_singular_gram() {
        // Duplicate columns => singular Gram matrix with ridge = 0. The QR
        // fallback may also fail (rank-deficient R); what matters is that we
        // never panic and surface a clean error or a valid LS solution.
        let a = Matrix::from_rows(vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        let b = [2.0, 4.0, 6.0];
        match ridge_solve(&a, &b, 0.0) {
            Ok(w) => {
                let pred = a.matvec(&w).unwrap();
                for (p, t) in pred.iter().zip(&b) {
                    assert!((p - t).abs() < 1e-6);
                }
            }
            Err(LinalgError::Singular(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        // With a positive ridge the same system is solvable.
        assert!(ridge_solve(&a, &b, 1e-6).is_ok());
    }

    #[test]
    fn ridge_rejects_negative_parameter() {
        let a = Matrix::identity(2);
        assert!(ridge_solve(&a, &[1.0, 1.0], -1.0).is_err());
    }

    #[test]
    fn ridge_rejects_bad_rhs() {
        let a = Matrix::identity(2);
        assert!(ridge_solve(&a, &[1.0], 0.1).is_err());
    }

    #[test]
    fn invert_known_matrix() {
        let a = Matrix::from_rows(vec![vec![4.0, 7.0], vec![2.0, 6.0]]).unwrap();
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn invert_rejects_non_square() {
        assert!(invert(&Matrix::zeros(2, 3)).is_err());
    }
}
